"""Single-writer multi-reader atomic registers.

The paper's shared-memory model (Section 4) provides single-writer
multi-reader atomic registers: exactly one designated process may write
each register -- "any other process, even if Byzantine faulty, is
prohibited from writing to it" -- and reads/writes appear to occur
sequentially.  The register file below enforces single-writer access and
keeps a full version history so tests can independently verify
atomicity (reads return the latest preceding write).
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Tuple

from repro.core.values import EMPTY

__all__ = ["RegisterFile", "RegisterHistoryEntry", "SingleWriterViolation"]


class SingleWriterViolation(RuntimeError):
    """A process attempted to write a register it does not own."""


@dataclasses.dataclass(frozen=True)
class RegisterHistoryEntry:
    """One committed write: (global operation index, value written)."""

    op_index: int
    value: Any


class RegisterFile:
    """``n`` single-writer multi-reader atomic registers.

    Register ``i`` is owned (writable) by process ``i`` only.  All
    operations are stamped with a global, monotonically increasing
    operation index, defining the sequential history that atomicity
    promises.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("need at least one register")
        self.n = n
        self._values: List[Any] = [EMPTY] * n
        self._histories: List[List[RegisterHistoryEntry]] = [[] for _ in range(n)]
        self._reads: List[List[Tuple[int, int, Any]]] = [[] for _ in range(n)]
        self._op_index = 0

    def _stamp(self) -> int:
        index = self._op_index
        self._op_index += 1
        return index

    def write(self, writer: int, owner: int, value: Any) -> int:
        """Commit a write; returns the operation index.

        Raises:
            SingleWriterViolation: when ``writer != owner``.
        """
        if writer != owner:
            raise SingleWriterViolation(
                f"p{writer} attempted to write register of p{owner}"
            )
        if not 0 <= owner < self.n:
            raise ValueError(f"no such register: {owner}")
        index = self._stamp()
        self._values[owner] = value
        self._histories[owner].append(RegisterHistoryEntry(index, value))
        return index

    def read(self, reader: int, owner: int) -> Tuple[int, Any]:
        """Atomically read register ``owner``; returns (op index, value)."""
        if not 0 <= owner < self.n:
            raise ValueError(f"no such register: {owner}")
        index = self._stamp()
        value = self._values[owner]
        self._reads[owner].append((index, reader, value))
        return index, value

    def current(self, owner: int) -> Any:
        """Peek at a register without a stamped operation (testing only)."""
        return self._values[owner]

    def current_values(self) -> Tuple[Any, ...]:
        """Snapshot of every register's current content (index = owner).

        Unstamped, like :meth:`current`; used by the exhaustive
        explorer's structural fingerprint.
        """
        return tuple(self._values)

    def history(self, owner: int) -> Tuple[RegisterHistoryEntry, ...]:
        return tuple(self._histories[owner])

    def read_log(self, owner: int) -> Tuple[Tuple[int, int, Any], ...]:
        return tuple(self._reads[owner])

    def verify_atomicity(self) -> bool:
        """Re-check that every logged read returned the latest prior write.

        This is redundant with the implementation (operations are
        executed sequentially) but gives tests an independent oracle over
        the recorded history.
        """
        for owner in range(self.n):
            writes = self._histories[owner]
            for read_index, _reader, value in self._reads[owner]:
                latest: Any = EMPTY
                for entry in writes:
                    if entry.op_index < read_index:
                        latest = entry.value
                    else:
                        break
                if value is not latest and value != latest:
                    return False
        return True
