"""Shared-memory substrate: SWMR atomic registers, kernel, schedulers."""

from repro.shm.kernel import SMContext, SMKernel, SMProgram
from repro.shm.ops import Decide, Op, Read, Write
from repro.shm.registers import RegisterFile, SingleWriterViolation
from repro.shm.schedulers import (
    FairProcessWrapper,
    PredicateProcessScheduler,
    ProcessScheduler,
    RandomProcessScheduler,
    RoundRobinScheduler,
    StagedScheduler,
)

__all__ = [
    "Decide",
    "FairProcessWrapper",
    "Op",
    "PredicateProcessScheduler",
    "ProcessScheduler",
    "RandomProcessScheduler",
    "Read",
    "RegisterFile",
    "RoundRobinScheduler",
    "SMContext",
    "SMKernel",
    "SMProgram",
    "SingleWriterViolation",
    "StagedScheduler",
    "Write",
]
