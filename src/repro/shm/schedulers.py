"""Process schedulers for the shared-memory kernel.

In the shared-memory model the asynchrony adversary chooses which
process takes its next atomic operation.  The impossibility proofs of
Section 4 construct runs like "processes in g' do not take any step
until after all processes in g decide" (Lemma 4.3); the schedulers here
express those patterns plus fair baselines.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence, Set

__all__ = [
    "FairProcessWrapper",
    "PredicateProcessScheduler",
    "ProcessScheduler",
    "RandomProcessScheduler",
    "RoundRobinScheduler",
    "StagedScheduler",
]


class ProcessScheduler:
    """Interface: pick the next process to take an operation."""

    def pick(self, kernel) -> Optional[int]:
        """Return a runnable pid, or ``None`` to refuse all."""
        raise NotImplementedError


class RoundRobinScheduler(ProcessScheduler):
    """Cycle through runnable processes in id order (the fair baseline)."""

    def __init__(self) -> None:
        self._last = -1

    def pick(self, kernel) -> Optional[int]:
        runnable = kernel.runnable_pids()
        if not runnable:
            return None
        for pid in sorted(runnable):
            if pid > self._last:
                self._last = pid
                return pid
        self._last = min(runnable)
        return self._last


class RandomProcessScheduler(ProcessScheduler):
    """Pick a runnable process uniformly at random (seeded)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pick(self, kernel) -> Optional[int]:
        runnable = kernel.runnable_pids()
        if not runnable:
            return None
        return self._rng.choice(sorted(runnable))


class PredicateProcessScheduler(ProcessScheduler):
    """Run only processes for which ``eligible(kernel, pid)`` holds.

    Among eligible runnable processes, round-robin order is used.  When
    nobody is eligible the scheduler refuses (strict, for proof
    constructions) or falls back to any runnable process
    (``release_on_stall=True``).
    """

    def __init__(
        self,
        eligible: Callable[[object, int], bool],
        release_on_stall: bool = False,
    ) -> None:
        self._eligible = eligible
        self._release_on_stall = release_on_stall
        self._last = -1

    def _rotate(self, candidates: List[int]) -> int:
        for pid in sorted(candidates):
            if pid > self._last:
                self._last = pid
                return pid
        self._last = min(candidates)
        return self._last

    def pick(self, kernel) -> Optional[int]:
        runnable = kernel.runnable_pids()
        if not runnable:
            return None
        eligible = [p for p in runnable if self._eligible(kernel, p)]
        if eligible:
            return self._rotate(eligible)
        if self._release_on_stall:
            return self._rotate(runnable)
        return None


class FairProcessWrapper(ProcessScheduler):
    """Guarantee fairness on top of an arbitrary (biased) scheduler.

    The asynchronous model requires every correct process to take
    infinitely many steps; a staged or predicate scheduler driving a
    protocol that busy-waits (e.g. PROTOCOL F's scan loop) can otherwise
    starve the rest of the system forever, which is not a legal run.
    Every ``patience`` picks, the wrapper overrides the inner scheduler
    and runs the least-recently-scheduled runnable process.
    """

    def __init__(self, inner: ProcessScheduler, patience: int = 64) -> None:
        if patience < 1:
            raise ValueError("patience must be positive")
        self._inner = inner
        self._patience = patience
        self._since_override = 0
        self._last_ran: dict = {}

    def pick(self, kernel) -> Optional[int]:
        runnable = kernel.runnable_pids()
        if not runnable:
            return None
        self._since_override += 1
        if self._since_override >= self._patience:
            self._since_override = 0
            pid = min(runnable, key=lambda p: (self._last_ran.get(p, -1), p))
        else:
            pid = self._inner.pick(kernel)
            if pid is None:
                pid = min(runnable, key=lambda p: (self._last_ran.get(p, -1), p))
        self._last_ran[pid] = kernel.tick
        return pid


class StagedScheduler(PredicateProcessScheduler):
    """Run stage after stage: each group runs once the previous decided.

    ``stages`` is an ordered partition of (a subset of) the processes.
    Processes of stage ``i`` become eligible only when every non-crashed
    member of stages ``0..i-1`` has decided; unlisted processes are
    eligible last, after all listed stages decided.  This is the
    "g' takes no steps until after all processes in g decide" pattern.
    """

    def __init__(
        self,
        stages: Sequence[Iterable[int]],
        release_on_stall: bool = False,
    ) -> None:
        self._stages: List[Set[int]] = [set(s) for s in stages]
        seen: Set[int] = set()
        for stage in self._stages:
            overlap = stage & seen
            if overlap:
                raise ValueError(f"stages must be disjoint; repeated: {sorted(overlap)}")
            seen |= stage
        self._listed = seen
        super().__init__(self._stage_eligible, release_on_stall=release_on_stall)

    def _done(self, kernel, members: Set[int]) -> bool:
        return all(
            kernel.has_decided(p) or p in kernel.crashed or not kernel.is_runnable(p)
            for p in members
        )

    def _stage_eligible(self, kernel, pid: int) -> bool:
        preceding: Set[int] = set()
        for stage in self._stages:
            if pid in stage:
                return self._done(kernel, preceding)
            preceding |= stage
        return self._done(kernel, self._listed)
