"""Discrete-event kernel for the shared-memory models.

Shared-memory protocols are generator functions (see
:mod:`repro.shm.ops`).  The kernel resumes one process at a time -- the
choice being the asynchrony adversary's, via a process scheduler from
:mod:`repro.shm.schedulers` -- and executes exactly one atomic register
operation per kernel tick.  Crash and Byzantine failures are injected
the same way as in the message-passing kernel: a crash adversary halts
processes at operation boundaries, and Byzantine processes are arbitrary
generator programs installed at faulty indices (they can corrupt only
their *own* register; the memory enforces single-writer access,
Section 4 of the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.core.problem import Outcome
from repro.core.values import Value
from repro.failures.adversary import CrashAdversary, NoCrashes
from repro.runtime.kernel import ExecutionResult, KernelLimitError, SchedulerStall
from repro.runtime.process import ProtocolError
from repro.runtime.traces import Trace, TraceMode
from repro.shm.ops import Decide, Op, Read, Write
from repro.shm.registers import RegisterFile

__all__ = ["SMContext", "SMKernel", "SMProgram", "SMSnapshot"]


class SMContext:
    """Read-only per-process information handed to a program."""

    def __init__(self, pid: int, n: int, t: int, input_value: Value) -> None:
        self.pid = pid
        self.n = n
        self.t = t
        self.input = input_value

    def others(self):
        """All process ids except this one's."""
        return (p for p in range(self.n) if p != self.pid)


#: A shared-memory protocol: builds the op generator for one process.
SMProgram = Callable[[SMContext], Generator[Op, Any, None]]


class _ProcessState:
    __slots__ = (
        "generator", "pending_result", "finished", "ops_taken",
        "decision", "decided", "results_log",
    )

    def __init__(self) -> None:
        self.generator: Optional[Generator[Op, Any, None]] = None
        self.pending_result: Any = None
        self.finished = False
        self.ops_taken = 0
        self.decision: Optional[Value] = None
        self.decided = False
        #: Every operation result fed (or about to be fed) into the
        #: generator, in order.  A deterministic generator's internal
        #: state is a pure function of this sequence, which is what
        #: makes shared-memory states fingerprintable without copying
        #: generator frames.
        self.results_log: List[Any] = []


@dataclasses.dataclass(frozen=True)
class SMSnapshot:
    """Replay-based capture of an :class:`SMKernel` execution state.

    Generator frames cannot be copied, so an SM snapshot records the
    *choice sequence* that produced the state instead of the state
    itself; :meth:`SMKernel.restore` re-executes the sequence against
    fresh generators.  Deterministic programs plus a deterministic
    crash adversary make the replay reproduce the state exactly.
    """

    choices: Tuple[int, ...]


class SMKernel:
    """Simulates one execution of a shared-memory protocol.

    Args:
        programs: one generator function per process ``0..n-1``;
            Byzantine behaviours are arbitrary programs at faulty
            indices, listed in ``byzantine``.
        inputs: nominal input value per process.
        t: failure budget of the problem instance.
        scheduler: picks which runnable process takes its next operation;
            see :mod:`repro.shm.schedulers`.
        crash_adversary: halts processes at operation boundaries.
        stop_when_decided: stop once every correct process decided.
        max_ticks: safety valve against non-terminating runs.
        trace_mode: how much the trace retains; ``COUNTERS`` skips all
            :class:`~repro.runtime.traces.TraceRecord` allocation (the
            Monte-Carlo fast path), ``OFF`` records nothing.
    """

    def __init__(
        self,
        programs: Sequence[SMProgram],
        inputs: Sequence[Value],
        t: int,
        scheduler,
        crash_adversary: Optional[CrashAdversary] = None,
        byzantine: Sequence[int] = (),
        stop_when_decided: bool = True,
        max_ticks: int = 1_000_000,
        enforce_budget: bool = True,
        trace_mode: TraceMode = TraceMode.FULL,
    ) -> None:
        if len(programs) != len(inputs):
            raise ValueError("programs and inputs must have equal length")
        self.n = len(programs)
        self.t = t
        self._programs = list(programs)
        self._inputs = list(inputs)
        self._scheduler = scheduler
        self._crash_adversary = crash_adversary or NoCrashes()
        self._byzantine: Set[int] = set(byzantine)
        self._stop_when_decided = stop_when_decided
        self._max_ticks = max_ticks

        bad = self._byzantine - set(range(self.n))
        if bad:
            raise ValueError(f"byzantine ids out of range: {sorted(bad)}")
        if enforce_budget:
            budget_users = self._byzantine | set(
                self._crash_adversary.potentially_faulty()
            )
            if len(budget_users) > t:
                raise ValueError(
                    f"{len(budget_users)} potentially faulty processes exceed "
                    f"the failure budget t={t}"
                )

        self.registers = RegisterFile(self.n)
        self._trace_mode = trace_mode
        self.trace = Trace(trace_mode)
        self.tick = 0
        self._crashed: Set[int] = set()
        self._states = [_ProcessState() for _ in range(self.n)]
        self._choices: List[int] = []
        self._contexts = [
            SMContext(pid, self.n, t, self._inputs[pid]) for pid in range(self.n)
        ]

    # -- introspection ------------------------------------------------------

    @property
    def crashed(self) -> frozenset:
        return frozenset(self._crashed)

    @property
    def byzantine(self) -> frozenset:
        return frozenset(self._byzantine)

    @property
    def faulty(self) -> frozenset:
        return frozenset(self._crashed | self._byzantine)

    @property
    def correct(self) -> frozenset:
        return frozenset(range(self.n)) - self.faulty

    def has_decided(self, pid: int) -> bool:
        return self._states[pid].decided

    def decision_of(self, pid: int) -> Optional[Value]:
        return self._states[pid].decision

    def decided_pids(self) -> frozenset:
        return frozenset(p for p in range(self.n) if self._states[p].decided)

    def all_correct_decided(self) -> bool:
        return all(self._states[p].decided for p in self.correct)

    def is_runnable(self, pid: int) -> bool:
        state = self._states[pid]
        return pid not in self._crashed and not state.finished

    def runnable_pids(self):
        return [p for p in range(self.n) if self.is_runnable(p)]

    @property
    def choices(self) -> Tuple[int, ...]:
        """The scheduling choices executed so far, in order."""
        return tuple(self._choices)

    # -- execution ------------------------------------------------------------

    def _crash(self, pid: int) -> None:
        if pid not in self._crashed:
            self._crashed.add(pid)
            self.trace.record(self.tick, "crash", pid)

    def _apply_dynamic_crashes(self) -> None:
        for pid in self._crash_adversary.dynamic_crashes(self):
            if pid in self._byzantine:
                continue
            self._crash(pid)

    def _execute_op(self, pid: int, op: Op) -> Any:
        if isinstance(op, Read):
            _, value = self.registers.read(pid, op.owner)
            self.trace.record(self.tick, "read", pid, op.owner, value)
            return value
        if isinstance(op, Write):
            self.registers.write(pid, pid, op.value)
            self.trace.record(self.tick, "write", pid, pid, op.value)
            return None
        if isinstance(op, Decide):
            state = self._states[pid]
            if state.decided:
                raise ProtocolError(f"p{pid} attempted to decide twice")
            state.decided = True
            state.decision = op.value
            self.trace.record(self.tick, "decide", pid, payload=op.value)
            return None
        raise ProtocolError(f"p{pid} yielded a non-operation: {op!r}")

    def _step(self, pid: int) -> None:
        self._choices.append(pid)
        state = self._states[pid]
        if pid not in self._byzantine and self._crash_adversary.crashes_before_step(
            pid, state.ops_taken
        ):
            self._crash(pid)
            return
        if state.generator is None:
            state.generator = self._programs[pid](self._contexts[pid])
            self.trace.record(self.tick, "start", pid)
        try:
            op = state.generator.send(state.pending_result)
        except StopIteration:
            state.finished = True
            self.trace.record(self.tick, "halt", pid)
            return
        state.pending_result = self._execute_op(pid, op)
        state.results_log.append(state.pending_result)
        state.ops_taken += 1

    # -- snapshot / restore --------------------------------------------------

    def step_pid(self, pid: int) -> None:
        """Execute one step of ``pid`` -- one iteration of :meth:`run`'s loop.

        The single-step entry point for explorers driving the kernel
        without a scheduler.
        """
        if not self.is_runnable(pid):
            raise ProtocolError(f"stepped non-runnable p{pid}")
        self._step(pid)
        self._apply_dynamic_crashes()
        self.tick += 1

    def snapshot(self) -> SMSnapshot:
        """Capture the state as the choice sequence that produced it."""
        return SMSnapshot(choices=tuple(self._choices))

    def restore(self, snapshot: SMSnapshot) -> None:
        """Rebuild the snapshot state by replaying its choice sequence.

        Resets registers, generators, crash state, and the trace, then
        re-executes every recorded choice.  Cost is linear in the prefix
        length; the exhaustive explorer amortizes this by extending one
        live kernel along depth-first descents and replaying only on
        backtracks (see :mod:`repro.harness.exhaustive`).
        """
        self.registers = RegisterFile(self.n)
        self.trace = Trace(self._trace_mode)
        self.tick = 0
        self._crashed = set()
        self._states = [_ProcessState() for _ in range(self.n)]
        choices = snapshot.choices
        self._choices = []
        self._apply_dynamic_crashes()
        for pid in choices:
            self._step(pid)
            self._apply_dynamic_crashes()
            self.tick += 1

    def run(self) -> ExecutionResult:
        """Execute until a stop state and return the result.

        Stop states: all correct processes decided (when
        ``stop_when_decided``), or no process is runnable.

        Raises:
            KernelLimitError: the tick budget was exhausted first.
            SchedulerStall: the scheduler starved every runnable process
                while some correct process was still undecided.
        """
        self._apply_dynamic_crashes()
        while self.runnable_pids():
            if self._stop_when_decided and self.all_correct_decided():
                break
            if self.tick >= self._max_ticks:
                raise KernelLimitError(
                    f"exceeded {self._max_ticks} ticks; runnable: "
                    f"{self.runnable_pids()}"
                )
            pid = self._scheduler.pick(self)
            if pid is None:
                if self.all_correct_decided():
                    break
                raise SchedulerStall(
                    "scheduler starved all runnable processes but "
                    f"{sorted(self.correct - self.decided_pids())} "
                    "have not decided"
                )
            if not self.is_runnable(pid):
                raise ProtocolError(f"scheduler picked non-runnable p{pid}")
            self._step(pid)
            self._apply_dynamic_crashes()
            self.tick += 1
        return self._result()

    def _result(self) -> ExecutionResult:
        decisions = {
            pid: state.decision
            for pid, state in enumerate(self._states)
            if state.decided
        }
        outcome = Outcome(
            n=self.n,
            inputs={pid: v for pid, v in enumerate(self._inputs)},
            decisions=decisions,
            faulty=frozenset(self._crashed | self._byzantine),
        )
        return ExecutionResult(
            outcome=outcome,
            trace=self.trace,
            ticks=self.tick,
            quiescent=not self.runnable_pids(),
        )
