"""Operations a shared-memory process can perform.

Shared-memory protocols are written as Python *generator functions*: the
program yields one operation at a time, and the kernel resumes it with
the operation's result.  Each yielded operation executes atomically at a
kernel-chosen instant, which models single-writer multi-reader atomic
registers exactly (Lamport [22] in the paper's references): the
adversary controls interleaving between operations, but each operation
is indivisible.

Example (the body of PROTOCOL E)::

    def program(ctx):
        yield Write(ctx.input)
        seen = []
        for owner in range(ctx.n):
            value = yield Read(owner)
            if not is_empty(value):
                seen.append(value)
        yield Decide(seen[0] if len(set(seen)) == 1 else DEFAULT)
"""

from __future__ import annotations

import dataclasses
from typing import Any

__all__ = ["Decide", "Op", "Read", "Write"]


@dataclasses.dataclass(frozen=True)
class Op:
    """Base class for shared-memory operations."""


@dataclasses.dataclass(frozen=True)
class Read(Op):
    """Atomically read the register owned by process ``owner``.

    Yields back the register's current value, or
    :data:`repro.core.values.EMPTY` if it was never written.
    """

    owner: int


@dataclasses.dataclass(frozen=True)
class Write(Op):
    """Atomically write ``value`` to the caller's *own* register.

    Registers are single-writer: the kernel rejects any attempt to write
    another process's register, even by Byzantine processes -- the paper
    assumes the memory itself preserves its access restrictions
    (Section 4).
    """

    value: Any


@dataclasses.dataclass(frozen=True)
class Decide(Op):
    """Irrevocably decide ``value``.  Yields back ``None``."""

    value: Any
