"""Whole-program model for the flow analysis: modules, functions, calls.

The per-file rules in :mod:`repro.staticcheck.rules_det` et al. see one
:class:`~repro.staticcheck.engine.FileContext` at a time, which is
exactly the blind spot an interprocedural check needs to close: a
wall-clock read laundered through one helper function is invisible to a
single-file pass.  This module builds the shared substrate the flow
rules (:mod:`repro.staticcheck.rules_flow`) reason over:

* :class:`Program` -- every ``*.py`` file under the checked paths,
  parsed once, with dotted module names recovered from the directory
  layout (``src/repro/jobs/store.py`` -> ``repro.jobs.store``);
* :class:`FunctionInfo` -- one function or method, addressable by
  qualified name (``repro.jobs.store.JobStore.lease``);
* :meth:`Program.resolve_call` -- best-effort static resolution of a
  call expression to the :class:`FunctionInfo` it invokes, following
  import aliases (via :class:`~repro.staticcheck.engine.ImportMap`),
  package re-exports (``from repro.runtime import Process``), local
  helpers, and ``self.method()`` dispatch through the defining class
  and its statically-resolvable bases.

Resolution is deliberately *under*-approximate: dynamic dispatch
through variables, ``getattr``, decorators that replace functions, and
monkey-patching all resolve to ``None`` and simply end the analysis at
that edge.  The flow rules inherit this soundness limit (documented in
DESIGN.md); the contract is "no false alarms from guessed edges", not
"every laundering path is found".
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.staticcheck.engine import (
    FileContext,
    ImportMap,
    iter_python_files,
)

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "module_name_for",
]

#: Re-export chains longer than this are abandoned (cycle guard).
_REEXPORT_DEPTH = 8


def module_name_for(path: str) -> str:
    """Dotted module name recovered from a repo-relative file path.

    A leading ``src/`` component (the conventional layout root) is
    dropped; ``__init__.py`` names the package itself.  Paths that do
    not look like package members still get a stable dotted name, so
    test fixtures under ``tmp_path`` work the same way.
    """
    parts = path.replace(os.sep, "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        last = parts[-1][: -len(".py")]
        parts = parts[:-1] if last == "__init__" else parts[:-1] + [last]
    return ".".join(part for part in parts if part)


@dataclasses.dataclass
class FunctionInfo:
    """One function or method in the program."""

    qualname: str  # e.g. "repro.jobs.store.JobStore.lease"
    name: str  # bare name, e.g. "lease"
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def param_names(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname})"


@dataclasses.dataclass
class ClassInfo:
    """One class: its methods and the dotted names of its bases."""

    qualname: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = dataclasses.field(
        default_factory=dict
    )
    base_names: Tuple[str, ...] = ()


class ModuleInfo:
    """One parsed module and its local name tables."""

    def __init__(self, name: str, ctx: FileContext) -> None:
        self.name = name
        self.ctx = ctx
        self.path = ctx.path
        self.tree = ctx.tree
        self.functions: Dict[str, FunctionInfo] = {}  # module-level defs
        self.classes: Dict[str, ClassInfo] = {}
        self._index()

    @property
    def imports(self) -> ImportMap:
        return self.ctx.imports

    def _index(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(
                    qualname=f"{self.name}.{node.name}",
                    name=node.name,
                    module=self,
                    node=node,
                )
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    qualname=f"{self.name}.{node.name}",
                    name=node.name,
                    module=self,
                    node=node,
                    base_names=tuple(
                        name
                        for base in node.bases
                        if (name := self.imports.resolve(base)) is not None
                    ),
                )
                for child in node.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info.methods[child.name] = FunctionInfo(
                            qualname=(
                                f"{self.name}.{node.name}.{child.name}"
                            ),
                            name=child.name,
                            module=self,
                            node=child,
                            class_name=node.name,
                        )
                self.classes[node.name] = info

    def all_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()
        for cls in self.classes.values():
            yield from cls.methods.values()


class Program:
    """All modules under the checked paths, plus call resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # dotted name -> info
        self.by_path: Dict[str, ModuleInfo] = {}

    @classmethod
    def load(
        cls, paths: Sequence[str], root: Optional[str] = None
    ) -> "Program":
        """Parse every ``*.py`` under ``paths`` (skipping syntax errors).

        Paths in the program are ``root``-relative with ``/``
        separators, matching the per-file engine so findings and
        baseline entries agree on identity.
        """
        base = root or os.getcwd()
        program = cls()
        for file_path in iter_python_files(paths):
            try:
                with open(file_path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source)
            except (OSError, SyntaxError):
                continue  # the per-file pass reports PARSE001
            rel = os.path.relpath(os.path.abspath(file_path), base)
            if rel.startswith(".."):
                rel = os.path.abspath(file_path)
            rel = rel.replace(os.sep, "/")
            program.add_module(rel, FileContext(rel, source, tree))
        return program

    def add_module(self, path: str, ctx: FileContext) -> ModuleInfo:
        info = ModuleInfo(module_name_for(path), ctx)
        self.modules[info.name] = info
        self.by_path[info.path] = info
        return info

    def all_functions(self) -> Iterator[FunctionInfo]:
        for module in self.modules.values():
            yield from module.all_functions()

    # -- lookup --------------------------------------------------------

    def lookup(self, dotted: str) -> Optional[FunctionInfo]:
        """Function/method for a dotted name, chasing re-exports.

        Handles ``pkg.mod.func``, ``pkg.mod.Class.method``, and names
        that pass through package ``__init__`` re-exports
        (``repro.runtime.Process.on_start`` resolves into
        ``repro.runtime.process``).
        """
        return self._lookup(dotted, depth=0)

    def _lookup(self, dotted: str, depth: int) -> Optional[FunctionInfo]:
        if depth > _REEXPORT_DEPTH:
            return None
        # Longest module prefix wins: "a.b.c.d" tries module "a.b.c"
        # with member "d" before module "a.b" with member "c.d".
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is None:
                continue
            member = parts[cut:]
            found = self._member(module, member)
            if found is not None:
                return found
            # Re-export: the module imports the name from elsewhere.
            head = member[0]
            target = module.imports.from_imports.get(head)
            if target is None:
                alias = module.imports.module_aliases.get(head)
                target = alias if alias != head else None
            if target is not None:
                rest = ".".join(member[1:])
                chased = f"{target}.{rest}" if rest else target
                return self._lookup(chased, depth + 1)
        return None

    def _member(
        self, module: ModuleInfo, member: List[str]
    ) -> Optional[FunctionInfo]:
        if len(member) == 1:
            return module.functions.get(member[0])
        if len(member) == 2:
            cls = module.classes.get(member[0])
            if cls is not None:
                return self.method_on(cls, member[1])
        return None

    def class_for(self, dotted: str) -> Optional[ClassInfo]:
        """ClassInfo for a dotted name, chasing re-exports."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is None:
                continue
            member = parts[cut:]
            if len(member) == 1:
                if member[0] in module.classes:
                    return module.classes[member[0]]
                target = module.imports.from_imports.get(member[0])
                if target is not None:
                    return self.class_for(target)
        return None

    def method_on(
        self, cls: ClassInfo, name: str, depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Method lookup on a class, walking statically-known bases."""
        if depth > _REEXPORT_DEPTH:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base_name in cls.base_names:
            base = self.class_for(base_name)
            if base is not None:
                found = self.method_on(base, name, depth + 1)
                if found is not None:
                    return found
        return None

    # -- call resolution -----------------------------------------------

    def resolve_call(
        self, caller: FunctionInfo, node: ast.Call
    ) -> Optional[FunctionInfo]:
        """The function a call statically invokes, or ``None``.

        ``None`` means "unknown" (dynamic dispatch, a builtin, or a
        callee outside the program); callers must treat that edge as
        opaque.
        """
        func = node.func
        module = caller.module
        if isinstance(func, ast.Name):
            # Local helper in the same module shadows any import.
            local = module.functions.get(func.id)
            if local is not None:
                return local
            resolved = module.imports.resolve(func)
            if resolved is not None and resolved != func.id:
                return self.lookup(resolved)
            return None
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id in ("self", "cls")
                and caller.class_name is not None
            ):
                cls = module.classes.get(caller.class_name)
                if cls is not None:
                    return self.method_on(cls, func.attr)
                return None
            resolved = module.imports.resolve(func)
            if resolved is not None:
                return self.lookup(resolved)
        return None
