"""High-level entry point shared by the CLI and the test suite.

:func:`run_check` walks the requested paths, applies the baseline, and
returns a :class:`CheckReport` with the exit code the CLI should use:

* ``0`` -- no new findings (clean, or everything baselined);
* ``1`` -- new findings (only ``error``-severity ones count unless
  ``strict`` is set, which also promotes warnings);
* ``2`` -- usage errors (unreadable baseline, no such path), raised as
  :class:`UsageError` for the CLI to present.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence

from repro.staticcheck import baseline as baseline_mod
from repro.staticcheck.baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
)
from repro.staticcheck.engine import CheckResult, Finding, check_paths
from repro.staticcheck.sarif import render_sarif

__all__ = [
    "CheckReport",
    "UsageError",
    "explain",
    "render",
    "render_text",
    "run_check",
    "write_baseline",
]


class UsageError(ValueError):
    """Bad invocation (missing path, unreadable baseline)."""


@dataclasses.dataclass
class CheckReport:
    """Everything one linter run produced."""

    result: CheckResult
    new: List[Finding]
    accepted: List[Finding]
    stale: List[BaselineEntry]
    strict: bool
    baseline_path: Optional[str]

    @property
    def gating(self) -> List[Finding]:
        """The new findings that decide the exit code."""
        if self.strict:
            return self.new
        return [f for f in self.new if f.severity == "error"]

    @property
    def exit_code(self) -> int:
        return 1 if self.gating else 0

    def to_json(self) -> Dict:
        return {
            "files_checked": self.result.files_checked,
            "new": [dataclasses.asdict(f) for f in self.new],
            "accepted": [dataclasses.asdict(f) for f in self.accepted],
            "stale_baseline_entries": [
                e.to_json() for e in self.stale
            ],
            "exit_code": self.exit_code,
        }


def _resolve_baseline(
    baseline_path: Optional[str], explicit: bool
) -> Optional[Baseline]:
    if baseline_path is None:
        return None
    if not os.path.exists(baseline_path):
        if explicit:
            raise UsageError(f"baseline file not found: {baseline_path}")
        return None
    try:
        return baseline_mod.load_baseline(baseline_path)
    except (OSError, ValueError, KeyError) as err:
        raise UsageError(f"cannot load baseline: {err}") from err


def run_check(
    paths: Sequence[str],
    baseline_path: Optional[str] = DEFAULT_BASELINE_NAME,
    explicit_baseline: bool = False,
    strict: bool = False,
    root: Optional[str] = None,
    flow: bool = False,
) -> CheckReport:
    """Lint ``paths`` and apply the baseline.

    ``baseline_path=None`` disables baselining.  When the default
    baseline name is used and the file does not exist, the run simply
    proceeds without one; an explicitly passed missing path is a
    :class:`UsageError`.  ``flow=True`` additionally runs the
    whole-program FLOW rules (:mod:`repro.staticcheck.rules_flow`) and
    merges their findings into the same baseline gate.
    """
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        raise UsageError(f"no such path: {', '.join(missing)}")
    baseline = _resolve_baseline(baseline_path, explicit_baseline)
    result = check_paths(paths, root=root)
    if flow:
        from repro.staticcheck.rules_flow import check_program

        result.findings.extend(check_program(paths, root=root))
        result.findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.rule_id)
        )
    new, accepted, stale = baseline_mod.partition(result.findings, baseline)
    return CheckReport(
        result=result,
        new=new,
        accepted=accepted,
        stale=stale,
        strict=strict,
        baseline_path=baseline_path if baseline is not None else None,
    )


def explain(rule_id: str) -> str:
    """One-paragraph description of a rule, for ``--explain``."""
    from repro.staticcheck.engine import rule_index

    index = rule_index()
    rule = index.get(rule_id.upper())
    if rule is None:
        known = ", ".join(sorted(index))
        raise UsageError(
            f"unknown rule id {rule_id!r}; known rules: {known}"
        )
    doc = (type(rule).__doc__ or "").strip()
    lines = [
        f"{rule.rule_id} [{rule.severity}]",
        f"  {rule.summary}",
    ]
    if doc:
        lines.append(f"  {doc}")
    if rule.scopes:
        lines.append(f"  scope: {', '.join(rule.scopes)}")
    else:
        lines.append("  scope: all checked files")
    lines.append(
        f"  suppress with: # repro: noqa[{rule.rule_id}] on the "
        f"flagged line, or baseline it with a reason"
    )
    return "\n".join(lines)


def write_baseline(
    report: CheckReport,
    path: str,
    reasons: Optional[Dict[str, str]] = None,
) -> Baseline:
    """Accept every current finding into ``path``, keeping old reasons."""
    merged: Dict[str, str] = {}
    if report.baseline_path and os.path.exists(report.baseline_path):
        for entry in baseline_mod.load_baseline(
            report.baseline_path
        ).entries:
            if entry.reason:
                merged[entry.fingerprint] = entry.reason
    merged.update(reasons or {})
    new_baseline = Baseline.from_findings(
        report.result.findings, reasons=merged
    )
    baseline_mod.save_baseline(new_baseline, path)
    return new_baseline


def render_text(report: CheckReport, verbose: bool = False) -> str:
    """Human-readable summary (the CLI's default format)."""
    lines: List[str] = []
    for finding in report.new:
        lines.append(finding.render())
    if verbose:
        for finding in report.accepted:
            lines.append(f"{finding.render()}  [baselined]")
    for entry in report.stale:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} "
            f"({entry.fingerprint}) -- finding no longer produced; "
            f"prune it"
        )
    errors = sum(1 for f in report.new if f.severity == "error")
    warnings = len(report.new) - errors
    lines.append(
        f"checked {report.result.files_checked} files: "
        f"{errors} new errors, {warnings} new warnings, "
        f"{len(report.accepted)} baselined, {len(report.stale)} stale "
        f"baseline entries"
    )
    return "\n".join(lines)


def render(report: CheckReport, fmt: str) -> str:
    """Render a report as ``text``, ``json`` or ``sarif``."""
    if fmt == "text":
        return render_text(report)
    if fmt == "json":
        import json

        return json.dumps(report.to_json(), indent=2)
    if fmt == "sarif":
        return render_sarif(report.new)
    raise UsageError(f"unknown format: {fmt!r}")
