"""Core of the ``repro.staticcheck`` linter: findings, rules, the walker.

The linter is a plain :mod:`ast` pass -- no third-party dependencies --
that enforces the *static* half of the determinism contract the dynamic
:mod:`repro.verify` layer checks at run time: replay (and the parallel
sweep engine's bit-for-bit guarantee) only holds if no protocol or
kernel code consults wall-clock time, the process-global RNG, or the
iteration order of an unordered collection on a decision path.

Concepts
--------

* :class:`Rule` -- one named check (``DET001``, ``PROTO002``, ...) with
  a severity and a path scope; rules register themselves in a module
  registry via :func:`register_rule`.
* :class:`Finding` -- one diagnostic, pointing at a file/line/column.
* ``# repro: noqa`` / ``# repro: noqa[DET003]`` -- inline escape hatch
  suppressing all (or the named) rules on that physical line.
* :func:`check_paths` -- walk files/directories, parse, run every
  applicable rule, and return a :class:`CheckResult`.

Findings that are expected (grandfathered or deliberate) live in a
committed baseline file; see :mod:`repro.staticcheck.baseline`.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "CheckResult",
    "FileContext",
    "Finding",
    "ImportMap",
    "NOQA_RULE_ID",
    "PARSE_RULE_ID",
    "Rule",
    "TraceStep",
    "all_rules",
    "check_paths",
    "check_source",
    "dotted_name",
    "register_rule",
]

SEVERITIES = ("error", "warning")

#: Pseudo-rule id used for files that do not parse.
PARSE_RULE_ID = "PARSE001"

#: Pseudo-rule id for malformed ``# repro: noqa`` comments (unknown ids).
NOQA_RULE_ID = "NOQA001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


@dataclasses.dataclass(frozen=True)
class TraceStep:
    """One hop of a flow finding's source-to-sink path."""

    path: str
    line: int
    col: int
    note: str


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    ``occurrence`` disambiguates findings whose (rule, path, source
    line text) coincide, so baseline fingerprints stay stable under
    pure line-number drift but still count duplicates.  ``end_line``
    is the last physical line of the flagged expression (== ``line``
    for single-line constructs); ``trace`` carries the source-to-sink
    call chain of interprocedural (FLOW) findings and is rendered as a
    SARIF ``codeFlow``.
    """

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""
    occurrence: int = 0
    end_line: int = 0
    trace: Tuple[TraceStep, ...] = ()

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        text = (
            f"{self.location()}: {self.rule_id} [{self.severity}] "
            f"{self.message}"
        )
        for index, step in enumerate(self.trace):
            text += (
                f"\n    [{index + 1}] {step.path}:{step.line}:{step.col} "
                f"{step.note}"
            )
        return text


class Rule:
    """Base class for one lint rule.

    Class attributes:
        rule_id: unique id, e.g. ``"DET001"``.
        severity: ``"error"`` or ``"warning"``.
        summary: one-line description (shown in SARIF rule metadata).
        scopes: path components the rule applies to (``None`` = every
            file).  A file is in scope when any of its path components
            matches one of the scope names, so ``("protocols",)``
            matches both ``src/repro/protocols/x.py`` and a test
            fixture under ``fixtures/protocols/``.
    """

    rule_id: str = ""
    severity: str = "error"
    summary: str = ""
    scopes: Optional[Tuple[str, ...]] = None

    def applies_to(self, path: str) -> bool:
        if self.scopes is None:
            return True
        parts = _normpath(path).split("/")
        return any(scope in parts for scope in self.scopes)

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: "FileContext",
        node: ast.AST,
        message: str,
        trace: Tuple[TraceStep, ...] = (),
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            line_text=ctx.line_text(line),
            end_line=_expression_end_line(node, line),
            trace=trace,
        )


def _expression_end_line(node: ast.AST, line: int) -> int:
    """Last physical line a ``# repro: noqa`` may sit on for ``node``.

    Expressions and simple statements span to their ``end_lineno`` (a
    noqa on the closing line of a multi-line call counts); compound
    statements (defs, classes, loops) would swallow their whole body,
    so they stay anchored to the header line.
    """
    if hasattr(node, "body") and isinstance(node, ast.stmt):
        return line
    return getattr(node, "end_lineno", None) or line


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"{rule.rule_id}: bad severity {rule.severity!r}")
    existing = _REGISTRY.get(rule.rule_id)
    if existing is not None and type(existing) is not cls:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, importing the rule modules on first use."""
    from repro.staticcheck import (  # noqa: F401
        rules_batch,
        rules_det,
        rules_flow,
        rules_proto,
        rules_rob,
        rules_sm,
        rules_snapshot,
        rules_sym,
    )

    return tuple(sorted(_REGISTRY.values(), key=lambda r: r.rule_id))


def rule_index() -> Dict[str, Rule]:
    all_rules()
    return dict(_REGISTRY)


class ImportMap:
    """Resolves names in one module back to dotted import paths.

    Tracks ``import x [as y]`` and ``from x import y [as z]`` so rules
    can ask "is this call ``time.time``?" regardless of aliasing.
    Simple assignment aliases (``clock = time.time``, ``_t = time``)
    are tracked too, so rebinding an import to a new name does not
    launder it past the DET rules; a name bound inconsistently (two
    assignments with different resolutions, or one that is not an
    import chain) is dropped as unknown rather than guessed at.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.module_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, str] = {}
        self.value_aliases: Dict[str, Optional[str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are first-party
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{node.module}.{alias.name}"
        # Second pass so forward references (``clock = time.time`` above
        # a late ``import time`` in document order) still resolve.
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                resolved = self._resolve_alias_value(node.value)
                if name in self.value_aliases:
                    if self.value_aliases[name] != resolved:
                        self.value_aliases[name] = None  # conflicting
                else:
                    self.value_aliases[name] = resolved

    def _resolve_alias_value(self, node: ast.AST) -> Optional[str]:
        """Dotted import target of an assignment RHS, if it is one."""
        raw = dotted_name(node)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        if head in self.module_aliases:
            base = self.module_aliases[head]
        elif head in self.from_imports:
            base = self.from_imports[head]
        elif self.value_aliases.get(head):
            base = self.value_aliases[head]  # one more alias hop
        else:
            return None
        return f"{base}.{rest}" if rest else base

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of an expression, e.g. ``datetime.datetime.now``."""
        raw = dotted_name(node)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        if head in self.module_aliases:
            base = self.module_aliases[head]
        elif head in self.from_imports:
            base = self.from_imports[head]
        elif self.value_aliases.get(head):
            base = self.value_aliases[head]
        else:
            return raw
        return f"{base}.{rest}" if rest else base


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class FileContext:
    """Everything a rule needs to check one file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = _normpath(path)
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._imports: Optional[ImportMap] = None
        self._noqa: Optional[Dict[int, Optional[frozenset]]] = None

    @property
    def imports(self) -> ImportMap:
        if self._imports is None:
            self._imports = ImportMap(self.tree)
        return self._imports

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    @property
    def noqa_table(self) -> Dict[int, Optional[frozenset]]:
        """Line -> suppressed rule-id set (``None`` = blanket noqa)."""
        if self._noqa is None:
            table: Dict[int, Optional[frozenset]] = {}
            for num, text in enumerate(self.lines, 1):
                match = _NOQA_RE.search(text)
                if not match:
                    continue
                names = match.group("rules")
                if names is None:
                    table[num] = None  # blanket suppression
                else:
                    table[num] = frozenset(
                        part.strip().upper()
                        for part in names.split(",")
                        if part.strip()
                    )
            self._noqa = table
        return self._noqa

    def suppressed(
        self, rule_id: str, line: int, end_line: int = 0
    ) -> bool:
        """Whether a ``# repro: noqa`` silences ``rule_id``.

        A noqa counts when it sits on the finding's first line or --
        for multi-line expressions -- on the flagged node's last
        physical line (``end_line``), where a trailing comment
        naturally lands after a continuation.
        """
        lines = {line}
        if end_line:
            lines.add(end_line)
        for num in lines:
            entry = self.noqa_table.get(num, _MISSING)
            if entry is _MISSING:
                continue
            if entry is None or rule_id.upper() in entry:
                return True
        return False


_MISSING: frozenset = frozenset({"\0missing"})


@dataclasses.dataclass
class CheckResult:
    """Outcome of one linter invocation (before baseline filtering)."""

    findings: List[Finding]
    files_checked: int

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]


def check_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string as if it lived at ``path``."""
    chosen = tuple(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return [
            Finding(
                rule_id=PARSE_RULE_ID,
                severity="error",
                path=_normpath(path),
                line=err.lineno or 1,
                col=(err.offset or 0) or 1,
                message=f"file does not parse: {err.msg}",
            )
        ]
    ctx = FileContext(path, source, tree)
    found: List[Finding] = []
    for rule in chosen:
        if not rule.applies_to(ctx.path):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(
                finding.rule_id, finding.line, finding.end_line
            ):
                found.append(finding)
    found.extend(_noqa_hygiene(ctx))
    found.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return _number_occurrences(found)


def _noqa_hygiene(ctx: FileContext) -> Iterator[Finding]:
    """NOQA001: unknown rule ids in a noqa list are a warning.

    A typo'd rule id (DET01 for DET001, say) otherwise suppresses
    nothing and tells nobody -- the comment looks like an accepted
    exception while the finding it meant to justify still gates.
    """
    known = set(rule_index()) | {PARSE_RULE_ID, NOQA_RULE_ID}
    for num in sorted(ctx.noqa_table):
        names = ctx.noqa_table[num]
        if names is None:
            continue
        for name in sorted(names - known):
            finding = Finding(
                rule_id=NOQA_RULE_ID,
                severity="warning",
                path=ctx.path,
                line=num,
                col=1,
                message=(
                    f"unknown rule id {name!r} in noqa comment; it "
                    f"suppresses nothing (known ids: see `repro "
                    f"staticcheck --explain`)"
                ),
                line_text=ctx.line_text(num),
            )
            if not ctx.suppressed(NOQA_RULE_ID, num):
                yield finding


def _number_occurrences(findings: List[Finding]) -> List[Finding]:
    """Assign occurrence indices among identical (rule, path, text)."""
    counts: Dict[Tuple[str, str, str], int] = {}
    numbered = []
    for finding in findings:
        key = (finding.rule_id, finding.path, finding.line_text)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        numbered.append(dataclasses.replace(finding, occurrence=occurrence))
    return numbered


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``*.py`` paths."""
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        full = os.path.join(dirpath, name)
                        if full not in seen:
                            seen.add(full)
                            yield full
        elif path.endswith(".py") or os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path


def check_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[str] = None,
) -> CheckResult:
    """Lint files and directories; paths in findings are ``root``-relative."""
    base = root or os.getcwd()
    findings: List[Finding] = []
    files = 0
    for file_path in iter_python_files(paths):
        files += 1
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as err:
            findings.append(
                Finding(
                    rule_id=PARSE_RULE_ID,
                    severity="error",
                    path=_relpath(file_path, base),
                    line=1,
                    col=1,
                    message=f"cannot read file: {err}",
                )
            )
            continue
        findings.extend(
            check_source(source, _relpath(file_path, base), rules=rules)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return CheckResult(findings=findings, files_checked=files)


def _relpath(path: str, base: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), base)
    if rel.startswith(".."):
        rel = os.path.abspath(path)
    return _normpath(rel)


def _normpath(path: str) -> str:
    return path.replace(os.sep, "/")


def walk_statements(node: ast.AST) -> Iterable[ast.stmt]:
    """All statements inside ``node``, in document order."""
    for child in ast.walk(node):
        if isinstance(child, ast.stmt):
            yield child
