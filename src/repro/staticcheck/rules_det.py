"""DET rules: sources of replay-breaking nondeterminism.

The deterministic kernels (:mod:`repro.runtime.kernel`,
:mod:`repro.shm.kernel`) route *all* nondeterminism through seeded
schedulers, which is what makes witness replay, ddmin shrinking, and
the parallel sweep engine's serial-equality guarantee sound.  These
rules reject the three ways code smuggles nondeterminism past that
funnel:

* DET001 -- wall-clock reads (``time.time``, ``datetime.now``, ...);
* DET002 -- the process-global RNG (``random.random()`` et al.; a
  seeded ``random.Random(seed)`` instance is the sanctioned pattern);
* DET003 -- order-sensitive picks (``min``/``max`` without a key,
  ``next(iter(...))``, ``.pop()``, multi-target unpacking) over
  unordered collections (sets, ``dict.values()``/``keys()``/
  ``items()`` views);
* DET004 -- mutable class-level state, which is shared across the
  process *instances* that the harness deliberately isolates.

All four are scoped to the packages on the replay path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.staticcheck.engine import (
    FileContext,
    Finding,
    Rule,
    register_rule,
)

__all__ = [
    "NoGlobalRandomRule",
    "NoMutableClassStateRule",
    "NoUnorderedPickRule",
    "NoWallClockRule",
]

#: Packages whose code sits on the deterministic-replay path.
REPLAY_SCOPES: Tuple[str, ...] = (
    "runtime", "shm", "net", "protocols", "staticcheck",
)

_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

# Only random.Random(seed) is sanctioned.  SystemRandom deliberately is
# NOT: it draws from os.urandom and cannot be seeded, so it is exactly
# the nondeterminism the replay contract bans, wearing an RNG-class
# coat.
_SEEDED_RNG_FACTORIES = frozenset({"Random"})


@register_rule
class NoWallClockRule(Rule):
    """DET001: no wall-clock reads on the replay path."""

    rule_id = "DET001"
    severity = "error"
    summary = (
        "wall-clock reads (time.time, datetime.now, ...) break "
        "deterministic replay; derive logical time from the kernel"
    )
    scopes = REPLAY_SCOPES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved in _CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"call to {resolved} reads the wall clock; replay "
                    f"requires logical time from the kernel",
                )


@register_rule
class NoGlobalRandomRule(Rule):
    """DET002: no process-global RNG; inject a seeded ``random.Random``."""

    rule_id = "DET002"
    severity = "error"
    summary = (
        "module-level random.* calls use the process-global RNG; "
        "inject a seeded random.Random instance instead"
    )
    scopes = REPLAY_SCOPES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                resolved = ctx.imports.resolve(node.func)
                if (
                    resolved
                    and resolved.startswith("random.")
                    and resolved.split(".")[1] not in _SEEDED_RNG_FACTORIES
                ):
                    if "SystemRandom" in resolved:
                        detail = (
                            "draws from os.urandom and cannot be seeded"
                        )
                    else:
                        detail = "uses the process-global RNG"
                    yield self.finding(
                        ctx, node,
                        f"{resolved}() {detail}; inject a seeded "
                        f"random.Random instead",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module != "random" or node.level:
                    continue
                for alias in node.names:
                    if alias.name not in _SEEDED_RNG_FACTORIES:
                        yield self.finding(
                            ctx, node,
                            f"'from random import {alias.name}' exposes "
                            f"the process-global RNG; import random.Random "
                            f"and seed it explicitly",
                        )


class _UnorderedTracker:
    """Local names bound to unordered collections within one scope."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def scan_assignments(self, scope_body: list) -> None:
        for stmt in _walk_scope(scope_body):
            if isinstance(stmt, ast.Assign):
                value_unordered = self.is_unordered(stmt.value)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if value_unordered:
                            self.names.add(target.id)
                        else:
                            self.names.discard(target.id)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    if self.is_unordered(stmt.value):
                        self.names.add(stmt.target.id)

    def is_unordered(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                "set", "frozenset",
            ):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "values", "keys", "items",
            ) and not node.args and not node.keywords:
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_unordered(node.left) or self.is_unordered(
                node.right
            )
        return False


def _walk_scope(body: list) -> Iterator[ast.stmt]:
    """Statements of one function/module scope, skipping nested defs."""
    for stmt in body:
        yield stmt
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for field in stmt._fields:
            value = getattr(stmt, field, None)
            if isinstance(value, list):
                yield from _walk_scope(
                    [s for s in value if isinstance(s, ast.stmt)]
                )


def _iter_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expression subtrees of one statement, not entering nested stmts."""
    stack: list = []
    for field in stmt._fields:
        value = getattr(stmt, field, None)
        if isinstance(value, ast.AST) and not isinstance(value, ast.stmt):
            stack.append(value)
        elif isinstance(value, list):
            stack.extend(
                v for v in value
                if isinstance(v, ast.AST) and not isinstance(v, ast.stmt)
            )
    while stack:
        node = stack.pop()
        yield node
        stack.extend(
            child for child in ast.iter_child_nodes(node)
            if not isinstance(child, ast.stmt)
        )


@register_rule
class NoUnorderedPickRule(Rule):
    """DET003: order-sensitive picks over unordered collections."""

    rule_id = "DET003"
    severity = "error"
    summary = (
        "an order-sensitive pick (min/max without key, next(iter(..)), "
        ".pop(), multi-unpack) over a set or dict view depends on hash "
        "or insertion order; use sorted() or an explicit order key"
    )
    scopes = REPLAY_SCOPES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_scope(ctx, ctx.tree.body)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node.body)

    def _check_scope(
        self, ctx: FileContext, body: list
    ) -> Iterator[Finding]:
        tracker = _UnorderedTracker()
        tracker.scan_assignments(body)
        for stmt in _walk_scope(body):
            for node in _iter_exprs(stmt):
                finding = self._check_node(ctx, node, tracker)
                if finding is not None:
                    yield finding
            if isinstance(stmt, ast.Assign):
                yield from self._check_unpack(ctx, stmt, tracker)

    def _check_node(
        self, ctx: FileContext, node: ast.AST, tracker: _UnorderedTracker
    ) -> Optional[Finding]:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("min", "max"):
            if (
                len(node.args) == 1
                and tracker.is_unordered(node.args[0])
                and not any(kw.arg == "key" for kw in node.keywords)
            ):
                return self.finding(
                    ctx, node,
                    f"{func.id}() over an unordered collection without "
                    f"key=; pass an explicit total order "
                    f"(e.g. repro.core.values.order_key)",
                )
        if isinstance(func, ast.Name) and func.id == "next":
            if node.args and isinstance(node.args[0], ast.Call):
                inner = node.args[0]
                if (
                    isinstance(inner.func, ast.Name)
                    and inner.func.id == "iter"
                    and inner.args
                    and tracker.is_unordered(inner.args[0])
                ):
                    return self.finding(
                        ctx, node,
                        "next(iter(..)) picks an arbitrary element of an "
                        "unordered collection; use min/sorted with an "
                        "order key (or unpack a known singleton)",
                    )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and isinstance(func.value, ast.Name)
            and func.value.id in tracker.names
        ):
            return self.finding(
                ctx, node,
                f"{func.value.id}.pop() removes an arbitrary element of "
                f"an unordered collection",
            )
        return None

    def _check_unpack(
        self, ctx: FileContext, stmt: ast.Assign, tracker: _UnorderedTracker
    ) -> Iterator[Finding]:
        if not tracker.is_unordered(stmt.value):
            return
        for target in stmt.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                if len(target.elts) > 1:
                    yield self.finding(
                        ctx, stmt,
                        "unpacking several elements from an unordered "
                        "collection fixes an arbitrary order; sort first",
                    )


_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
})


@register_rule
class NoMutableClassStateRule(Rule):
    """DET004: no mutable class-level state shared across instances."""

    rule_id = "DET004"
    severity = "warning"
    summary = (
        "mutable class-level defaults are shared by every process "
        "instance in a run (and across runs); initialise per-instance "
        "state in __init__"
    )
    scopes = ("runtime", "shm", "net", "protocols")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                yield from self._check_class_stmt(ctx, node, stmt)

    def _check_class_stmt(
        self, ctx: FileContext, cls: ast.ClassDef, stmt: ast.stmt
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Assign):
            targets = [
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            ]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = (
                [stmt.target.id]
                if isinstance(stmt.target, ast.Name) else []
            )
            value = stmt.value
        else:
            return
        if not _is_mutable_literal(value):
            return
        for name in targets:
            if name.isupper() or name.startswith("__"):
                continue
            yield self.finding(
                ctx, stmt,
                f"class-level attribute {cls.name}.{name} holds a "
                f"mutable default shared across process instances",
            )


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
         ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES
    return False
