"""Committed baseline of accepted findings.

Two kinds of entries live here: *grandfathered* findings (real debt,
kept visible until fixed) and *deliberate* exceptions (e.g. the
ablation protocols exist precisely to exhibit the defect a rule
catches).  Every entry carries a one-line ``reason``.

Entries are matched by fingerprint -- a hash of the rule id, the
file path, the stripped source line text, and an occurrence index --
so they survive pure line-number drift but go stale when the flagged
code actually changes.  Stale entries are reported (and should be
pruned) but never mask new findings.

Fingerprint format history:

* **v1** (``repro-staticcheck-baseline/1``) hashed
  ``rule/path/line-text/occurrence``.
* **v2** (``repro-staticcheck-baseline/2``) prefixes a version tag and
  appends the deduplicated file paths of the finding's trace chain, so
  an interprocedural FLOW finding goes stale when its laundering route
  moves to different files -- exactly the change a reviewer should
  re-justify -- while per-file findings keep their v1 stability
  semantics.

Migration is automatic and lossless: :func:`partition` matches a
finding against a v1 *or* v2 entry, and ``--write-baseline``
re-emits the file in v2 format, carrying every ``reason`` across
(:meth:`Baseline.from_findings` looks reasons up under both prints).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.staticcheck.engine import Finding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "FORMAT",
    "FORMAT_V1",
    "fingerprint",
    "fingerprint_v1",
    "load_baseline",
    "partition",
    "save_baseline",
]

DEFAULT_BASELINE_NAME = "staticcheck-baseline.json"
FORMAT = "repro-staticcheck-baseline/2"
FORMAT_V1 = "repro-staticcheck-baseline/1"
_FORMATS = (FORMAT, FORMAT_V1)


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding under line-number drift (v2)."""
    trace_paths = ";".join(
        dict.fromkeys(step.path for step in finding.trace)
    )
    payload = "\x1f".join(
        (
            "2",
            finding.rule_id,
            finding.path,
            finding.line_text,
            str(finding.occurrence),
            trace_paths,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprint_v1(finding: Finding) -> str:
    """The pre-migration fingerprint, still accepted when matching."""
    payload = "\x1f".join(
        (
            finding.rule_id,
            finding.path,
            finding.line_text,
            str(finding.occurrence),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    rule: str
    path: str
    fingerprint: str
    reason: str = ""

    def to_json(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "reason": self.reason,
        }


@dataclasses.dataclass
class Baseline:
    """The committed set of accepted findings."""

    entries: List[BaselineEntry] = dataclasses.field(default_factory=list)
    #: format the entries were loaded from (always saved as v2)
    format_version: int = 2

    def fingerprints(self) -> Dict[str, BaselineEntry]:
        return {entry.fingerprint: entry for entry in self.entries}

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        reasons: Optional[Dict[str, str]] = None,
    ) -> "Baseline":
        """Build a v2 baseline accepting ``findings``.

        ``reasons`` maps fingerprints to justification strings; both
        v2 and legacy v1 prints are honoured, which is what migrates
        an existing file's reasons across a rewrite.
        """
        reasons = reasons or {}
        entries = []
        for finding in findings:
            print_ = fingerprint(finding)
            reason = reasons.get(print_) or reasons.get(
                fingerprint_v1(finding), ""
            )
            entries.append(
                BaselineEntry(
                    rule=finding.rule_id,
                    path=finding.path,
                    fingerprint=print_,
                    reason=reason,
                )
            )
        entries.sort(key=lambda e: (e.path, e.rule, e.fingerprint))
        return cls(entries=entries)


def load_baseline(path: str) -> Baseline:
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict) or raw.get("format") not in _FORMATS:
        raise ValueError(
            f"{path}: not a {FORMAT} file "
            f"(format={raw.get('format')!r})"
            if isinstance(raw, dict)
            else f"{path}: not a baseline object"
        )
    entries = []
    for item in raw.get("entries", []):
        entries.append(
            BaselineEntry(
                rule=str(item["rule"]),
                path=str(item["path"]),
                fingerprint=str(item["fingerprint"]),
                reason=str(item.get("reason", "")),
            )
        )
    version = 1 if raw.get("format") == FORMAT_V1 else 2
    return Baseline(entries=entries, format_version=version)


def save_baseline(baseline: Baseline, path: str) -> None:
    payload = {
        "format": FORMAT,
        "entries": [entry.to_json() for entry in baseline.entries],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    os.replace(tmp, path)


def partition(
    findings: Sequence[Finding],
    baseline: Optional[Baseline],
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into (new, accepted) and list stale entries.

    A baseline entry absorbs at most one finding (fingerprints already
    carry an occurrence index, so duplicates need duplicate entries).
    Matching tries the v2 print first, then the legacy v1 print, so a
    v1 file keeps gating correctly until ``--write-baseline`` migrates
    it.
    """
    if baseline is None:
        return list(findings), [], []
    table = baseline.fingerprints()
    unused = dict(table)
    new: List[Finding] = []
    accepted: List[Finding] = []
    for finding in findings:
        for print_ in (fingerprint(finding), fingerprint_v1(finding)):
            if print_ in unused:
                del unused[print_]
                accepted.append(finding)
                break
        else:
            new.append(finding)
    stale = sorted(
        unused.values(), key=lambda e: (e.path, e.rule, e.fingerprint)
    )
    return new, accepted, stale
