"""Committed baseline of accepted findings.

Two kinds of entries live here: *grandfathered* findings (real debt,
kept visible until fixed) and *deliberate* exceptions (e.g. the
ablation protocols exist precisely to exhibit the defect a rule
catches).  Every entry carries a one-line ``reason``.

Entries are matched by fingerprint -- a hash of the rule id, the
file path, the stripped source line text, and an occurrence index --
so they survive pure line-number drift but go stale when the flagged
code actually changes.  Stale entries are reported (and should be
pruned) but never mask new findings.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.staticcheck.engine import Finding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "fingerprint",
    "load_baseline",
    "partition",
    "save_baseline",
]

DEFAULT_BASELINE_NAME = "staticcheck-baseline.json"
_FORMAT = "repro-staticcheck-baseline/1"


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding under line-number drift."""
    payload = "\x1f".join(
        (
            finding.rule_id,
            finding.path,
            finding.line_text,
            str(finding.occurrence),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    rule: str
    path: str
    fingerprint: str
    reason: str = ""

    def to_json(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "reason": self.reason,
        }


@dataclasses.dataclass
class Baseline:
    """The committed set of accepted findings."""

    entries: List[BaselineEntry] = dataclasses.field(default_factory=list)

    def fingerprints(self) -> Dict[str, BaselineEntry]:
        return {entry.fingerprint: entry for entry in self.entries}

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        reasons: Optional[Dict[str, str]] = None,
    ) -> "Baseline":
        """Build a baseline accepting ``findings``.

        ``reasons`` maps fingerprints to justification strings;
        existing reasons are preserved by callers that merge.
        """
        reasons = reasons or {}
        entries = []
        for finding in findings:
            print_ = fingerprint(finding)
            entries.append(
                BaselineEntry(
                    rule=finding.rule_id,
                    path=finding.path,
                    fingerprint=print_,
                    reason=reasons.get(print_, ""),
                )
            )
        entries.sort(key=lambda e: (e.path, e.rule, e.fingerprint))
        return cls(entries=entries)


def load_baseline(path: str) -> Baseline:
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict) or raw.get("format") != _FORMAT:
        raise ValueError(
            f"{path}: not a {_FORMAT} file "
            f"(format={raw.get('format')!r})"
            if isinstance(raw, dict)
            else f"{path}: not a baseline object"
        )
    entries = []
    for item in raw.get("entries", []):
        entries.append(
            BaselineEntry(
                rule=str(item["rule"]),
                path=str(item["path"]),
                fingerprint=str(item["fingerprint"]),
                reason=str(item.get("reason", "")),
            )
        )
    return Baseline(entries=entries)


def save_baseline(baseline: Baseline, path: str) -> None:
    payload = {
        "format": _FORMAT,
        "entries": [entry.to_json() for entry in baseline.entries],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    os.replace(tmp, path)


def partition(
    findings: Sequence[Finding],
    baseline: Optional[Baseline],
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into (new, accepted) and list stale entries.

    A baseline entry absorbs at most one finding (fingerprints already
    carry an occurrence index, so duplicates need duplicate entries).
    """
    if baseline is None:
        return list(findings), [], []
    table = baseline.fingerprints()
    unused = dict(table)
    new: List[Finding] = []
    accepted: List[Finding] = []
    for finding in findings:
        print_ = fingerprint(finding)
        if print_ in unused:
            del unused[print_]
            accepted.append(finding)
        else:
            new.append(finding)
    stale = sorted(
        unused.values(), key=lambda e: (e.path, e.rule, e.fingerprint)
    )
    return new, accepted, stale
