"""SNAP rules: snapshot-protocol conformance.

The exhaustive explorer forks execution by copying process state with
``repro.runtime.snapshot.copy_plain`` -- a recursive plain-data copy
over dicts/lists/sets/tuples/dataclasses that treats everything else
as an atom and *shares* it between the original and the restored run.
That is sound only when every attribute a :class:`Process` subclass
stores on ``self`` is plain data.  An open file, a generator, a lock,
a socket, or a stateful RNG held on ``self`` would be shared across
forked branches: mutating it in one branch silently corrupts every
other branch (and none of these objects pickle, so ``--jobs`` breaks
too).

* SNAP001 -- inside a ``Process`` subclass, flag ``self.attr = ...``
  whose right-hand side constructs a non-plain-data value: ``open()``
  and friends, bare iterators (``iter``/``map``/``filter``/``zip``/
  ``enumerate``/``reversed``), generator expressions, ``threading``
  primitives, sockets, subprocesses, or ``random.Random`` instances.
  Wrap iterators in ``list(...)`` / ``sorted(...)`` at the assignment,
  keep RNG state out of processes (adversaries pre-draw their plans),
  and keep handles off ``self`` entirely.  Deliberate exceptions go in
  the committed baseline with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.engine import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register_rule,
)

__all__ = ["NonPlainProcessStateRule"]

#: Builtin calls whose result is an exhaustible iterator or OS handle.
_BAD_BUILTINS = frozenset({
    "open": "an open file handle",
    "iter": "a bare iterator",
    "map": "a bare iterator",
    "filter": "a bare iterator",
    "zip": "a bare iterator",
    "enumerate": "a bare iterator",
    "reversed": "a bare iterator",
    "memoryview": "a memoryview over shared storage",
}.items())

#: Dotted constructors (resolved through the file's imports) whose
#: result holds OS or interpreter state that copy_plain cannot fork.
_BAD_DOTTED = frozenset({
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "threading.Event": "a threading event",
    "threading.Barrier": "a thread barrier",
    "threading.Thread": "a thread",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "subprocess.Popen": "a subprocess handle",
    "random.Random": "a stateful RNG",
    "random.SystemRandom": "a stateful RNG",
    "io.open": "an open file handle",
    "io.BytesIO": "a mutable stream buffer",
    "io.StringIO": "a mutable stream buffer",
    "os.fdopen": "an open file handle",
    "tempfile.TemporaryFile": "an open file handle",
    "tempfile.NamedTemporaryFile": "an open file handle",
}.items())

_BAD_BUILTIN_NAMES = dict(_BAD_BUILTINS)
_BAD_DOTTED_NAMES = dict(_BAD_DOTTED)


def _offending_value(
    value: ast.expr, ctx: FileContext
) -> Optional[str]:
    """Why ``value`` is not plain data, or ``None`` if it looks fine."""
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression (exhaustible, not copyable)"
    if not isinstance(value, ast.Call):
        return None
    resolved = ctx.imports.resolve(value.func)
    if resolved is None:
        return None
    if resolved in _BAD_DOTTED_NAMES:
        return f"{_BAD_DOTTED_NAMES[resolved]} ({resolved})"
    # A bare name that did not resolve through an import is a builtin
    # (or a local shadow -- close enough for a lint).
    if "." not in resolved and resolved in _BAD_BUILTIN_NAMES:
        return f"{_BAD_BUILTIN_NAMES[resolved]} ({resolved}(...))"
    return None


def _self_attr(target: ast.expr) -> Optional[str]:
    """Attribute name for a ``self.x`` target, else ``None``."""
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _is_process_class(node: ast.ClassDef) -> bool:
    return any(
        (base_name := dotted_name(base))
        and base_name.split(".")[-1] == "Process"
        for base in node.bases
    )


@register_rule
class NonPlainProcessStateRule(Rule):
    """SNAP001: Process state must survive snapshot()/restore()."""

    rule_id = "SNAP001"
    severity = "error"
    summary = (
        "a Process subclass stores non-plain data (open files, "
        "iterators, locks, RNGs) on self; copy_plain shares such "
        "objects across forked branches, breaking snapshot/restore "
        "and --jobs pickling"
    )
    scopes = ("protocols", "failures", "runtime")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_process_class(node):
                continue
            yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in ast.walk(node):
            targets: list = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            elif isinstance(stmt, ast.AugAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            attrs = [
                attr for target in targets
                if (attr := _self_attr(target)) is not None
            ]
            if not attrs:
                continue
            reason = _offending_value(value, ctx)
            if reason is None:
                continue
            yield self.finding(
                ctx, stmt,
                f"{node.name}.{attrs[0]} holds {reason}; snapshot() "
                f"would share it across forked branches -- store plain "
                f"data instead (e.g. materialise iterators with list())",
            )
