"""FLOW rules: whole-program checks over the call graph.

Unlike the per-file rules, these see the entire program
(:class:`~repro.staticcheck.callgraph.Program`) and the fixpoint taint
facts (:class:`~repro.staticcheck.flow.FlowAnalysis`):

* FLOW001 -- interprocedural nondeterminism taint: a source (wall
  clock, global RNG, OS entropy, ``id()``, unordered iteration order)
  whose value crosses at least one call boundary before reaching a
  replay-path sink (decision site, message payload, scheduler pick,
  batch-plan builder).  Purely intra-function flows are left to
  DET001-003; FLOW001 exists for exactly the laundering those rules
  cannot see.  The finding carries the full source-to-sink chain.
* FLOW002 -- decide-once across helper calls: PROTO001's path
  analysis, re-run with "calls a helper that may decide" as an
  additional decide event.  Only paths involving at least one helper
  call are reported here (the intra-function case is PROTO001's).
  Helpers whose every decide is flag-latched are *guarded* and do not
  count as events -- calling them twice is safe.
* FLOW003 -- the :mod:`repro.jobs` lease automaton: every store
  transition call site must statically conform to
  pending --lease--> leased --complete--> done / --fail--> failed.
  Completing a shard that was never leased, transitioning the same
  shard handle twice, or discarding the result of ``lease()`` are the
  static shadows of the races chaos testing only catches
  probabilistically.

The rules register in the ordinary rule registry (so ``--explain``,
SARIF metadata and noqa hygiene know them) but their per-file
``check`` is a no-op; :func:`check_program` is the entry point the
runner calls when ``--flow`` is on.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.staticcheck.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Program,
)
from repro.staticcheck.engine import (
    FileContext,
    Finding,
    Rule,
    TraceStep,
    _number_occurrences,
    dotted_name,
    register_rule,
)
from repro.staticcheck.flow import SOURCE_KINDS, FlowAnalysis, Taint
from repro.staticcheck.rules_proto import (
    DecideEvent,
    DecidePathScanner,
    _flag_guarded,
    decide_calls,
)

__all__ = [
    "FlowRule",
    "InterproceduralDecideOnceRule",
    "InterproceduralTaintRule",
    "LeaseAutomatonRule",
    "check_program",
    "flow_rules",
]


class FlowRule(Rule):
    """A program-level rule; the per-file pass never runs it."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_program(
        self, program: Program, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        raise NotImplementedError


def flow_rules() -> Tuple[FlowRule, ...]:
    """Every registered program-level rule."""
    from repro.staticcheck.engine import all_rules

    return tuple(r for r in all_rules() if isinstance(r, FlowRule))


def check_program(
    paths,
    root: Optional[str] = None,
    program: Optional[Program] = None,
) -> List[Finding]:
    """Run every FLOW rule over the whole program under ``paths``.

    Findings honour ``# repro: noqa`` on the sink line exactly like
    per-file findings, and get occurrence numbers so baseline
    fingerprints stay stable.  FLOW rule ids never fire in the
    per-file pass, so the two result sets merge without collisions.
    """
    if program is None:
        program = Program.load(paths, root)
    analysis = FlowAnalysis(program).run()
    findings: List[Finding] = []
    for rule in flow_rules():
        findings.extend(rule.check_program(program, analysis))
    kept: List[Finding] = []
    for finding in findings:
        module = program.by_path.get(finding.path)
        if module is not None and module.ctx.suppressed(
            finding.rule_id, finding.line, finding.end_line
        ):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return _number_occurrences(kept)


# ---------------------------------------------------------------------------
# FLOW001


@register_rule
class InterproceduralTaintRule(FlowRule):
    """FLOW001: nondeterminism laundered through calls into a sink."""

    rule_id = "FLOW001"
    severity = "error"
    summary = (
        "a nondeterminism source (wall clock, global RNG, OS entropy, "
        "id(), unordered iteration order) flows through one or more "
        "calls into a decision site, message payload, scheduler pick "
        "or batch-plan builder; route it through a seeded scheduler "
        "(the finding lists the full source-to-sink chain)"
    )

    def check_program(
        self, program: Program, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        found: List[Finding] = []

        def report(
            fn: FunctionInfo, node: ast.AST, sink: str, taint: Taint
        ) -> None:
            # Chains of length 1 never crossed a function boundary;
            # the DET rules own those.
            if len(taint.chain) < 2:
                return
            sink_step = TraceStep(
                path=fn.module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                note=f"reaches {sink}",
            )
            found.append(
                self.finding(
                    fn.module.ctx,
                    node,
                    self._message(taint, sink),
                    trace=taint.chain + (sink_step,),
                )
            )

        analysis.scan_sinks(report)
        found.extend(self._pick_returns(program, analysis))
        yield from found

    def _message(self, taint: Taint, sink: str) -> str:
        hops = len(taint.chain) - 1
        return (
            f"{SOURCE_KINDS[taint.kind]} reaches {sink} through "
            f"{hops} call hop{'s' if hops != 1 else ''}; replay "
            f"requires all nondeterminism to come from the seeded "
            f"scheduler"
        )

    def _pick_returns(
        self, program: Program, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        """A scheduler ``pick`` whose return value is tainted."""
        for fn in program.all_functions():
            if fn.name != "pick" or not fn.is_method:
                continue
            summary = analysis.summary(fn)
            taint = summary.returns
            if taint is None or len(taint.chain) < 2:
                continue
            sink_step = TraceStep(
                path=fn.module.path,
                line=getattr(fn.node, "lineno", 1),
                col=getattr(fn.node, "col_offset", 0) + 1,
                note=f"returned from scheduler {fn.qualname}()",
            )
            yield self.finding(
                fn.module.ctx,
                fn.node,
                self._message(taint, "a scheduler pick"),
                trace=taint.chain + (sink_step,),
            )


# ---------------------------------------------------------------------------
# FLOW002

_MAY = "may"
_GUARDED = "guarded"
_NONE = "none"


class _DecideStatus:
    """Per-function decide facts for the interprocedural closure."""

    def __init__(
        self, status: str, site: Tuple[TraceStep, ...] = ()
    ) -> None:
        self.status = status
        self.site = site  # chain from function entry to a decide call


@register_rule
class InterproceduralDecideOnceRule(FlowRule):
    """FLOW002: decide-once proven across helper calls."""

    rule_id = "FLOW002"
    severity = "error"
    summary = (
        "a path through a handler can decide twice once helper calls "
        "are followed; PROTO001 sees only literal decide calls, this "
        "rule also counts calls into helpers that may decide "
        "(flag-latched helpers are safe and do not count)"
    )
    scopes = ("protocols",)

    _MESSAGES = {
        "path": (
            "this {what} is reachable after an earlier decide on the "
            "same path (decide-once violated across helper calls)"
        ),
        "loop": (
            "a {what} inside this loop can execute on more than one "
            "iteration; decide then return/break"
        ),
    }

    def check_program(
        self, program: Program, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        status = self._decide_closure(program)
        for module in program.modules.values():
            if not self.applies_to(module.path):
                continue
            for fn in module.all_functions():
                yield from self._scan_function(program, fn, status)

    # -- closure -------------------------------------------------------

    def _decide_closure(
        self, program: Program
    ) -> Dict[str, _DecideStatus]:
        """may/guarded/none decide status, closed over the call graph."""
        status: Dict[str, _DecideStatus] = {}
        for fn in program.all_functions():
            status[fn.qualname] = self._direct_status(fn)
        for _ in range(len(status) + 1):
            changed = False
            for fn in program.all_functions():
                mine = status[fn.qualname]
                if mine.status == _MAY:
                    continue
                for call in _scope_calls(fn.node):
                    if _is_literal_decide(call):
                        continue
                    target = program.resolve_call(fn, call)
                    if target is None:
                        continue
                    theirs = status.get(target.qualname)
                    if theirs is None or theirs.status != _MAY:
                        continue
                    step = _call_step(fn.module, call, target)
                    status[fn.qualname] = _DecideStatus(
                        _MAY, (step,) + theirs.site
                    )
                    changed = True
                    break
            if not changed:
                break
        return status

    def _direct_status(self, fn: FunctionInfo) -> _DecideStatus:
        """Decide status from literal decide calls in one body."""
        found = {"status": _NONE, "site": ()}

        def visit(stmt: ast.stmt, guarded: bool) -> None:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return
            if isinstance(stmt, ast.If):
                here = guarded or _flag_guarded(stmt)
                for call in decide_calls(stmt.test):
                    record(call, guarded)
                for child in stmt.body:
                    visit(child, here)
                for child in stmt.orelse:
                    visit(child, guarded)
                return
            for field in stmt._fields:
                value = getattr(stmt, field, None)
                nodes = value if isinstance(value, list) else [value]
                for node in nodes:
                    if isinstance(node, ast.stmt):
                        visit(node, guarded)
                    elif isinstance(node, ast.excepthandler):
                        for child in node.body:
                            visit(child, guarded)
                    elif isinstance(node, ast.AST):
                        for call in decide_calls(node):
                            record(call, guarded)

        def record(call: ast.Call, guarded: bool) -> None:
            if not guarded:
                found["status"] = _MAY
            elif found["status"] == _NONE:
                found["status"] = _GUARDED
            if not found["site"]:
                found["site"] = (
                    TraceStep(
                        path=fn.module.path,
                        line=getattr(call, "lineno", 1),
                        col=getattr(call, "col_offset", 0) + 1,
                        note=f"decides here, in {fn.qualname}()",
                    ),
                )

        for stmt in fn.node.body:
            visit(stmt, guarded=False)
        return _DecideStatus(found["status"], tuple(found["site"]))

    # -- per-function scan ---------------------------------------------

    def _scan_function(
        self,
        program: Program,
        fn: FunctionInfo,
        status: Dict[str, _DecideStatus],
    ) -> Iterator[Finding]:
        found: List[Finding] = []

        def events_of(node: ast.AST) -> List[DecideEvent]:
            events: List[DecideEvent] = []
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                if _is_literal_decide(call):
                    events.append(DecideEvent(call))
                    continue
                target = program.resolve_call(fn, call)
                if target is None:
                    continue
                theirs = status.get(target.qualname)
                if theirs is not None and theirs.status == _MAY:
                    events.append(DecideEvent(call, (target, theirs.site)))
            return events

        def report(
            kind: str,
            earlier: Optional[DecideEvent],
            event: Optional[DecideEvent],
        ) -> None:
            if event is None:
                return
            involved = [
                e for e in (earlier, event)
                if e is not None and e.payload is not None
            ]
            if not involved:
                return  # purely literal decides: PROTO001's case
            target, site = event.payload if event.payload else (None, ())
            what = (
                f"call into {target.qualname}(), which may decide,"
                if target is not None
                else "decide"
            )
            trace: List[TraceStep] = []
            if earlier is not None and earlier is not event:
                trace.append(_event_step(fn.module, earlier, "first"))
            trace.append(_event_step(fn.module, event, "second"))
            if event.payload is not None:
                trace.extend(event.payload[1])
            elif earlier is not None and earlier.payload is not None:
                trace.extend(earlier.payload[1])
            found.append(
                self.finding(
                    fn.module.ctx,
                    event.node,
                    self._MESSAGES[kind].format(what=what),
                    trace=tuple(trace),
                )
            )

        DecidePathScanner(events_of, report).scan_function(fn.node)
        yield from found


def _is_literal_decide(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "decide":
        return True
    return isinstance(func, ast.Name) and func.id == "Decide"


def _scope_calls(fn_node: ast.AST) -> Iterator[ast.Call]:
    """Call expressions in one function body, skipping nested defs."""

    def from_stmt(stmt: ast.stmt) -> Iterator[ast.Call]:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        for field in stmt._fields:
            value = getattr(stmt, field, None)
            nodes = value if isinstance(value, list) else [value]
            for node in nodes:
                if isinstance(node, ast.stmt):
                    yield from from_stmt(node)
                elif isinstance(node, ast.excepthandler):
                    for child in node.body:
                        yield from from_stmt(child)
                elif isinstance(node, ast.AST):
                    for call in ast.walk(node):
                        if isinstance(call, ast.Call):
                            yield call

    for stmt in fn_node.body:
        yield from from_stmt(stmt)


def _call_step(
    module: ModuleInfo, call: ast.Call, target: FunctionInfo
) -> TraceStep:
    return TraceStep(
        path=module.path,
        line=getattr(call, "lineno", 1),
        col=getattr(call, "col_offset", 0) + 1,
        note=f"calls {target.qualname}(), which may decide",
    )


def _event_step(
    module: ModuleInfo, event: DecideEvent, ordinal: str
) -> TraceStep:
    if event.payload is not None:
        target = event.payload[0]
        note = f"{ordinal} decide event: call into {target.qualname}()"
    else:
        note = f"{ordinal} decide event: literal decide"
    return TraceStep(
        path=module.path,
        line=getattr(event.node, "lineno", 1),
        col=getattr(event.node, "col_offset", 0) + 1,
        note=note,
    )


# ---------------------------------------------------------------------------
# FLOW003

#: store method -> state its result list's elements are in
_PRODUCERS = {"lease": "leased", "release_expired": "pending"}
#: store method -> state a shard is in after the call succeeds
_TERMINAL = {"complete": "done", "fail": "failed"}
_STATES = ("pending", "leased", "done", "failed")


@register_rule
class LeaseAutomatonRule(FlowRule):
    """FLOW003: store transitions follow pending->leased->done/failed."""

    rule_id = "FLOW003"
    severity = "error"
    summary = (
        "every repro.jobs store transition call site must conform to "
        "the lease automaton pending->leased->done/failed: no "
        "complete()/fail() on a shard that was not leased in this "
        "scope, no second terminal transition on the same handle, no "
        "discarded lease() result"
    )

    def check_program(
        self, program: Program, analysis: FlowAnalysis
    ) -> Iterator[Finding]:
        for module in program.modules.values():
            if not self._in_scope(module):
                continue
            for node in ast.walk(module.tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield from self._scan(module, node)

    def _in_scope(self, module: ModuleInfo) -> bool:
        if "jobs" in module.path.split("/"):
            return True
        imported = list(module.imports.module_aliases.values()) + list(
            module.imports.from_imports.values()
        )
        return any(
            name == "repro.jobs" or name.startswith("repro.jobs.")
            for name in imported
        )

    # -- abstract interpretation over one function ---------------------

    def _scan(
        self, module: ModuleInfo, fn_node: ast.AST
    ) -> Iterator[Finding]:
        found: List[Finding] = []
        env: Dict[str, Tuple[str, TraceStep]] = {}
        self._scan_suite(module, fn_node.body, env, found)
        yield from found

    def _scan_suite(
        self,
        module: ModuleInfo,
        stmts: List[ast.stmt],
        env: Dict[str, Tuple[str, TraceStep]],
        found: List[Finding],
    ) -> None:
        for stmt in stmts:
            self._scan_stmt(module, stmt, env, found)

    def _scan_stmt(
        self,
        module: ModuleInfo,
        stmt: ast.stmt,
        env: Dict[str, Tuple[str, TraceStep]],
        found: List[Finding],
    ) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested defs scanned separately
        if isinstance(stmt, ast.Expr):
            if self._store_method(stmt.value) == "lease":
                found.append(
                    self.finding(
                        module.ctx,
                        stmt.value,
                        "the result of lease() is discarded; the "
                        "leased shards can never be completed or "
                        "failed by this caller and must wait out the "
                        "lease timeout",
                    )
                )
                return
            self._transition_in(module, stmt.value, env, found)
            return
        if isinstance(stmt, ast.Assign):
            state = self._produced_state(stmt.value)
            self._transition_in(module, stmt.value, env, found)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if state is not None:
                        env[target.id] = (
                            state,
                            self._step(
                                module,
                                stmt.value,
                                f"shards in state "
                                f"'{state.split('-')[0]}' originate "
                                f"here",
                            ),
                        )
                    else:
                        env.pop(target.id, None)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._transition_in(module, stmt.iter, env, found)
            element = self._element_state(module, stmt.iter, env)
            body_env = dict(env)
            if element is not None and isinstance(stmt.target, ast.Name):
                body_env[stmt.target.id] = element
            elif isinstance(stmt.target, ast.Name):
                body_env.pop(stmt.target.id, None)
            self._scan_suite(module, stmt.body, body_env, found)
            self._scan_suite(module, stmt.orelse, env, found)
            self._merge(env, [body_env])
            return
        if isinstance(stmt, ast.If):
            self._transition_in(module, stmt.test, env, found)
            body_env = dict(env)
            else_env = dict(env)
            self._scan_suite(module, stmt.body, body_env, found)
            self._scan_suite(module, stmt.orelse, else_env, found)
            env.clear()
            merged = self._merged([body_env, else_env])
            env.update(merged)
            return
        if isinstance(stmt, ast.While):
            self._transition_in(module, stmt.test, env, found)
            body_env = dict(env)
            self._scan_suite(module, stmt.body, body_env, found)
            self._scan_suite(module, stmt.orelse, env, found)
            self._merge(env, [body_env])
            return
        if isinstance(stmt, ast.Try):
            branch_envs = []
            body_env = dict(env)
            self._scan_suite(module, stmt.body, body_env, found)
            branch_envs.append(body_env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._scan_suite(module, handler.body, handler_env, found)
                branch_envs.append(handler_env)
            env.clear()
            env.update(self._merged(branch_envs))
            self._scan_suite(module, stmt.orelse, env, found)
            self._scan_suite(module, stmt.finalbody, env, found)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._transition_in(
                    module, item.context_expr, env, found
                )
            self._scan_suite(module, stmt.body, env, found)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._transition_in(module, stmt.value, env, found)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._transition_in(module, child, env, found)

    # -- store-call recognition ----------------------------------------

    def _store_method(self, node: ast.AST) -> Optional[str]:
        """Store method name if ``node`` is a store call, else None."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver = dotted_name(func.value)
        if receiver is None:
            return None
        last = receiver.split(".")[-1].lower()
        if "store" not in last:
            return None
        return func.attr

    def _produced_state(self, node: ast.AST) -> Optional[str]:
        method = self._store_method(node)
        if method in _PRODUCERS:
            return _PRODUCERS[method] + "-list"
        if method == "shards":
            state = self._shards_state_arg(node)
            if state is not None:
                return state + "-list"
        return None

    def _shards_state_arg(self, call: ast.Call) -> Optional[str]:
        node: Optional[ast.AST] = None
        if len(call.args) >= 2:
            node = call.args[1]
        for kw in call.keywords:
            if kw.arg == "state":
                node = kw.value
        if node is None:
            return None
        name = dotted_name(node)
        text = (
            name.split(".")[-1]
            if name is not None
            else (
                node.value
                if isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                else ""
            )
        )
        lowered = str(text).lower()
        return lowered if lowered in _STATES else None

    def _element_state(
        self,
        module: ModuleInfo,
        node: ast.AST,
        env: Dict[str, Tuple[str, TraceStep]],
    ) -> Optional[Tuple[str, TraceStep]]:
        """State of elements when iterating ``node``."""
        produced = self._produced_state(node)
        if produced is not None and produced.endswith("-list"):
            state = produced[: -len("-list")]
            return (
                state,
                self._step(
                    module,
                    node,
                    f"shards in state '{state}' originate here",
                ),
            )
        if isinstance(node, ast.Name):
            entry = env.get(node.id)
            if entry is not None and entry[0].endswith("-list"):
                return (entry[0][: -len("-list")], entry[1])
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "sorted", "reversed")
            and node.args
        ):
            return self._element_state(module, node.args[0], env)
        return None

    # -- transitions ---------------------------------------------------

    def _transition_in(
        self,
        module: ModuleInfo,
        node: ast.AST,
        env: Dict[str, Tuple[str, TraceStep]],
        found: List[Finding],
    ) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._transition(module, child, env, found)

    def _transition(
        self,
        module: ModuleInfo,
        call: ast.AST,
        env: Dict[str, Tuple[str, TraceStep]],
        found: List[Finding],
    ) -> None:
        method = self._store_method(call)
        if method not in _TERMINAL:
            return
        shard_arg = self._shard_arg(call)
        if shard_arg is None:
            return
        key = self._tracked_name(shard_arg)
        if key is None:
            return
        entry = env.get(key)
        if entry is None:
            return  # unknown origin: never guessed at
        state, origin = entry
        if state.endswith("-list"):
            state = state[: -len("-list")]
            verb = f"{method}() on a whole shard *list*"
        else:
            verb = f"{method}()"
        if state == "leased":
            env[key] = (_TERMINAL[method], self._step(
                module, call, f"transitioned by {method}() here"
            ))
            return
        if state in ("done", "failed"):
            message = (
                f"{verb} on a shard handle already transitioned to "
                f"'{state}'; the second transition is a no-op at best "
                f"and masks a lost update at worst"
            )
        else:
            message = (
                f"{verb} on a shard in state '{state}'; the lease "
                f"automaton requires pending->leased->done/failed "
                f"(lease it first)"
            )
        found.append(
            self.finding(
                module.ctx,
                call,
                message,
                trace=(
                    origin,
                    self._step(
                        module, call, f"invalid {method}() transition"
                    ),
                ),
            )
        )

    def _shard_arg(self, call: ast.Call) -> Optional[ast.AST]:
        for kw in call.keywords:
            if kw.arg == "shard_id":
                return kw.value
        if len(call.args) >= 2:
            return call.args[1]
        return None

    def _tracked_name(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            return node.value.id
        return None

    # -- env plumbing --------------------------------------------------

    def _merged(
        self, envs: List[Dict[str, Tuple[str, TraceStep]]]
    ) -> Dict[str, Tuple[str, TraceStep]]:
        """Keys that agree across every branch; disagreements drop."""
        if not envs:
            return {}
        merged = dict(envs[0])
        for other in envs[1:]:
            for key in list(merged):
                if key not in other or other[key][0] != merged[key][0]:
                    del merged[key]
        return merged

    def _merge(
        self,
        env: Dict[str, Tuple[str, TraceStep]],
        others: List[Dict[str, Tuple[str, TraceStep]]],
    ) -> None:
        merged = self._merged([env] + others)
        env.clear()
        env.update(merged)

    def _step(
        self, module: ModuleInfo, node: ast.AST, note: str
    ) -> TraceStep:
        return TraceStep(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            note=note,
        )
