"""PROTO rules: protocol-conformance checks.

* PROTO001 -- decide-once irrevocability.  ``ctx.decide`` /
  ``yield Decide(..)`` is irrevocable (the kernel raises on a second
  decide), so any *path* through a handler that can reach two decide
  sites is a latent :class:`~repro.runtime.process.ProtocolError`.
  The analysis is per-function and path-sensitive enough for protocol
  code: exclusive ``if``/``else`` branches are fine, a decide followed
  by ``return``/``raise``/``break`` is fine, and the
  flag-guard idiom (``if not done: done = True; decide(..)``) is
  recognised; everything else that can fall through to a second
  decide is flagged, as is a decide that can repeat across loop
  iterations.
* PROTO002 -- every registered :class:`ProtocolSpec` must declare its
  claimed ``(k, t, C)`` region with literal ``name``/``validity``/
  ``lemma``/``model`` keywords, and the declaration must match the
  paper's claimed-regions table (:func:`repro.paper.claimed_region`).
  This is the static analogue of rejecting an unsolvable
  ``SC(k, t, C)`` claim from the necessary conditions alone.
* PROTO003 -- every ``Process`` subclass in the protocols package is
  either enrolled in the paper table or deliberately exempt (baseline
  it with a justification; the ablation variants are the intended
  examples).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.staticcheck.engine import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register_rule,
)

__all__ = [
    "DecideEvent",
    "DecideOnceRule",
    "DecidePathScanner",
    "SpecClaimRule",
    "UnclaimedProcessRule",
    "decide_calls",
]

_DECIDE_ATTRS = frozenset({"decide"})
_DECIDE_NAMES = frozenset({"Decide"})


def decide_calls(node: ast.AST) -> List[ast.Call]:
    """Literal decide events inside one expression/statement subtree."""
    calls = []
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if isinstance(func, ast.Attribute) and func.attr in _DECIDE_ATTRS:
            calls.append(child)
        elif isinstance(func, ast.Name) and func.id in _DECIDE_NAMES:
            calls.append(child)
    return calls


@dataclasses.dataclass
class DecideEvent:
    """One decide occurrence on a path.

    ``payload`` is opaque to the scanner; PROTO001 leaves it ``None``
    (a literal decide call), FLOW002 attaches the helper function a
    call resolves into so interprocedural events are distinguishable.
    """

    node: ast.AST
    payload: object = None


@dataclasses.dataclass
class _SuiteInfo:
    """What a statement (or suite) does with respect to deciding."""

    has_decide: bool = False
    falls_through: bool = False  # may complete normally *after* deciding
    first_event: Optional[DecideEvent] = None


def _flag_guarded(node: ast.If) -> bool:
    """The ``if not done: done = True; ... decide(..)`` latch idiom.

    Both local flags (``done``) and instance-attribute flags
    (``self._done``) latch; so does a test on a ``.decided`` property.
    """
    for sub in ast.walk(node.test):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "decided"
        ):
            return True
    guards = {
        guard
        for sub in ast.walk(node.test)
        if isinstance(sub, ast.UnaryOp)
        and isinstance(sub.op, ast.Not)
        and (guard := dotted_name(sub.operand)) is not None
    }
    if not guards:
        return False
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if dotted_name(target) in guards:
                    return True
    return False


class DecidePathScanner:
    """Path-sensitive decide-once scan over one function body.

    Parameterised over what counts as a decide event so both PROTO001
    (literal ``ctx.decide``/``Decide`` calls) and FLOW002 (those plus
    calls into helpers that may decide, via the call graph) share one
    path analysis.  ``report(kind, earlier, event)`` is invoked with
    ``kind`` ``"path"`` (a second decide reachable after an earlier one)
    or ``"loop"`` (a decide that can repeat across iterations);
    ``earlier`` is the suite's first event where known.
    """

    def __init__(self, events_of, report) -> None:
        self._events_of = events_of
        self._report = report

    def scan_function(self, node: ast.AST) -> None:
        self._scan_suite(node.body, in_loop=False)

    # -- path analysis -----------------------------------------------------

    def _scan_suite(
        self, stmts: Sequence[ast.stmt], in_loop: bool
    ) -> _SuiteInfo:
        info = _SuiteInfo()
        live = False
        for stmt in stmts:
            stmt_info = self._scan_stmt(stmt, in_loop)
            if stmt_info.has_decide:
                info.has_decide = True
                if info.first_event is None:
                    info.first_event = stmt_info.first_event
                if live and stmt_info.first_event is not None:
                    self._report(
                        "path", info.first_event, stmt_info.first_event
                    )
            if stmt_info.has_decide and stmt_info.falls_through:
                live = True
            if isinstance(stmt, (ast.Return, ast.Raise)):
                live = False  # the path ends here; no fall-through
                break
            if in_loop and isinstance(stmt, ast.Break):
                live = False  # exits the loop; cannot re-decide
                break
            if in_loop and isinstance(stmt, ast.Continue):
                break  # live preserved: the next iteration may re-decide
        info.falls_through = live
        return info

    def _scan_stmt(self, stmt: ast.stmt, in_loop: bool) -> _SuiteInfo:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return _SuiteInfo()  # nested defs are scanned independently
        if isinstance(stmt, (ast.Return, ast.Raise)):
            events = self._events_of(stmt)
            return _SuiteInfo(
                has_decide=bool(events),
                falls_through=False,
                first_event=events[0] if events else None,
            )
        if isinstance(stmt, ast.If):
            body = self._scan_suite(stmt.body, in_loop)
            orelse = self._scan_suite(stmt.orelse, in_loop)
            test_events = self._events_of(stmt.test)
            if body.has_decide and _flag_guarded(stmt):
                body = _SuiteInfo()  # latched: fires at most once
            return _SuiteInfo(
                has_decide=(
                    body.has_decide or orelse.has_decide
                    or bool(test_events)
                ),
                falls_through=(
                    body.falls_through or orelse.falls_through
                    or bool(test_events)
                ),
                first_event=(
                    (test_events[0] if test_events else None)
                    or body.first_event or orelse.first_event
                ),
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            inner = self._scan_suite(stmt.body, in_loop=True)
            if inner.has_decide and inner.falls_through:
                self._report("loop", inner.first_event, inner.first_event)
            orelse = self._scan_suite(stmt.orelse, in_loop)
            return _SuiteInfo(
                has_decide=inner.has_decide or orelse.has_decide,
                falls_through=inner.has_decide or orelse.falls_through,
                first_event=inner.first_event or orelse.first_event,
            )
        if isinstance(stmt, ast.Try):
            suites = [
                self._scan_suite(stmt.body, in_loop),
                self._scan_suite(stmt.orelse, in_loop),
                self._scan_suite(stmt.finalbody, in_loop),
            ]
            suites.extend(
                self._scan_suite(handler.body, in_loop)
                for handler in stmt.handlers
            )
            return _SuiteInfo(
                has_decide=any(s.has_decide for s in suites),
                falls_through=any(s.falls_through for s in suites),
                first_event=next(
                    (s.first_event for s in suites if s.first_event),
                    None,
                ),
            )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._scan_suite(stmt.body, in_loop)
        events = self._events_of(stmt)
        return _SuiteInfo(
            has_decide=bool(events),
            falls_through=bool(events),
            first_event=events[0] if events else None,
        )


@register_rule
class DecideOnceRule(Rule):
    """PROTO001: no path through a handler decides twice."""

    rule_id = "PROTO001"
    severity = "error"
    summary = (
        "a decision is irrevocable; a path that can reach two "
        "decide sites raises ProtocolError at run time"
    )
    scopes = ("protocols",)

    _MESSAGES = {
        "path": (
            "this decide is reachable after an earlier decide on the "
            "same path"
        ),
        "loop": (
            "a decide inside this loop can execute on more than one "
            "iteration; decide then return/break"
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        found: List[Finding] = []

        def report(
            kind: str,
            earlier: Optional[DecideEvent],
            event: Optional[DecideEvent],
        ) -> None:
            node = event.node if event is not None else ctx.tree
            found.append(self.finding(ctx, node, self._MESSAGES[kind]))

        def events_of(node: ast.AST) -> List[DecideEvent]:
            return [DecideEvent(call) for call in decide_calls(node)]

        scanner = DecidePathScanner(events_of, report)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scanner.scan_function(node)
        yield from found


def _spec_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name and name.split(".")[-1] == "ProtocolSpec":
            yield node


def _literal_kwarg(call: ast.Call, key: str) -> Optional[str]:
    for kw in call.keywords:
        if kw.arg == key:
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, str
            ):
                return kw.value.value
            return None
    return None


def _model_kwarg(call: ast.Call) -> Optional[str]:
    """The ``Model.X`` attribute name of the ``model=`` keyword."""
    for kw in call.keywords:
        if kw.arg == "model":
            name = dotted_name(kw.value)
            if name and name.split(".")[-2:-1] == ["Model"]:
                return name.split(".")[-1]
            return None
    return None


@register_rule
class SpecClaimRule(Rule):
    """PROTO002: spec claims must match the paper's claimed regions."""

    rule_id = "PROTO002"
    severity = "error"
    summary = (
        "every ProtocolSpec must declare its claimed (k, t, C) region "
        "with literal name/validity/lemma/model keywords matching "
        "repro.paper.CLAIMED_REGIONS"
    )
    scopes = ("protocols",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from repro.paper import claimed_region_by_spec

        for call in _spec_calls(ctx.tree):
            name = _literal_kwarg(call, "name")
            validity = _literal_kwarg(call, "validity")
            lemma = _literal_kwarg(call, "lemma")
            model_attr = _model_kwarg(call)
            if name is None or validity is None or lemma is None:
                yield self.finding(
                    ctx, call,
                    "ProtocolSpec must declare literal name=, validity= "
                    "and lemma= keywords so the claim is statically "
                    "checkable",
                )
                continue
            claim = claimed_region_by_spec(name)
            if claim is None:
                yield self.finding(
                    ctx, call,
                    f"spec {name!r} is not declared in the paper's "
                    f"claimed-regions table (repro.paper.CLAIMED_REGIONS)",
                )
                continue
            mismatches = []
            if validity != claim.validity:
                mismatches.append(
                    f"validity={validity!r} (paper claims "
                    f"{claim.validity!r})"
                )
            if lemma != claim.lemma:
                mismatches.append(
                    f"lemma={lemma!r} (paper claims {claim.lemma!r})"
                )
            if model_attr is not None and model_attr != claim.model_attr:
                mismatches.append(
                    f"model=Model.{model_attr} (paper claims "
                    f"Model.{claim.model_attr})"
                )
            if mismatches:
                yield self.finding(
                    ctx, call,
                    f"spec {name!r} disagrees with the paper table: "
                    + "; ".join(mismatches),
                )


@register_rule
class UnclaimedProcessRule(Rule):
    """PROTO003: Process subclasses must be enrolled in the paper table."""

    rule_id = "PROTO003"
    severity = "warning"
    summary = (
        "a Process subclass in the protocols package has no entry in "
        "repro.paper.CLAIMED_REGIONS; register its claim, or baseline "
        "it with a justification if it is a deliberate non-claim "
        "(e.g. an ablation)"
    )
    scopes = ("protocols",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from repro.paper import claimed_protocol_symbols

        claimed = claimed_protocol_symbols()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                (base_name := dotted_name(base))
                and base_name.split(".")[-1] == "Process"
                for base in node.bases
            ):
                continue
            if node.name in claimed:
                continue
            yield self.finding(
                ctx, node,
                f"Process subclass {node.name} declares no claimed "
                f"(k, t, C) region in repro.paper.CLAIMED_REGIONS",
            )


def claim_tuple(call: ast.Call) -> Tuple[
    Optional[str], Optional[str], Optional[str], Optional[str]
]:
    """(name, validity, lemma, model attr) literals of one spec call."""
    return (
        _literal_kwarg(call, "name"),
        _literal_kwarg(call, "validity"),
        _literal_kwarg(call, "lemma"),
        _model_kwarg(call),
    )
