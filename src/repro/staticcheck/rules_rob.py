"""ROB rules: no silent failure in the execution layers.

The crash-safety story of :mod:`repro.jobs` (and of the harness code it
supervises) rests on every fault being *observed*: a worker death is
re-leased, a timeout is retried, an exhausted shard is marked failed
with its error.  A ``bare except`` or a swallowed-and-ignored handler
is the antithesis -- it converts exactly the faults this machinery
exists to surface into silent no-ops, and it also eats
``KeyboardInterrupt``/``SystemExit``, wedging the teardown paths.

* ROB001 -- inside ``repro/harness`` and ``repro/jobs``, flag

  - ``except:`` with no exception type (catches everything, including
    interpreter-exit exceptions), and
  - handlers whose body does nothing but ``pass`` / ``...`` /
    ``continue`` (the exception is caught and discarded without being
    recorded, re-raised, or transformed).

  Justified cases (e.g. best-effort resource cleanup on an error path
  that must not mask the original exception) carry an entry in the
  committed baseline with their reason, or an inline
  ``# repro: noqa[ROB001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import FileContext, Finding, Rule, register_rule

__all__ = ["NoSilentExceptRule"]


def _is_noop(statement: ast.stmt) -> bool:
    """A statement that discards control flow without observing it."""
    if isinstance(statement, (ast.Pass, ast.Continue)):
        return True
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Constant)
        and statement.value.value is Ellipsis
    )


@register_rule
class NoSilentExceptRule(Rule):
    """ROB001: no bare or swallowed exception handlers in the
    execution layers."""

    rule_id = "ROB001"
    severity = "error"
    summary = (
        "bare `except:` or a swallowed-and-ignored exception handler in "
        "the harness/jobs execution layers; silent failure hides exactly "
        "the faults the crash-safe supervisor exists to surface"
    )
    scopes = ("harness", "jobs")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare `except:` catches everything (including "
                    "KeyboardInterrupt/SystemExit); name the exceptions "
                    "this path can actually recover from",
                )
                continue
            if node.body and all(_is_noop(stmt) for stmt in node.body):
                caught = ast.unparse(node.type)
                yield self.finding(
                    ctx, node,
                    f"exception handler for {caught} swallows the error "
                    f"without recording, re-raising, or transforming it; "
                    f"report the fault (store event, stats field, log) or "
                    f"justify via the baseline / "
                    f"`# repro: noqa[ROB001]`",
                )
