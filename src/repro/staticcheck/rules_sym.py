"""SYM rules: canonicalization code must be iteration-order-safe.

Symmetry reduction (:mod:`repro.harness.symmetry`) and the visited
stores (:mod:`repro.harness.visited`) derive *canonical* fingerprints
and digests: two structurally equal states must map to byte-identical
keys in every process, or the explorer silently splits orbits (missed
reductions) and parallel frontier merges stop being bit-identical.
Python dicts iterate in insertion order and sets in hash order, so any
enumeration of an unordered collection that feeds a fingerprint must go
through ``sorted``.

* SYM001 -- inside ``symmetry.py`` and ``visited.py``, flag any use of
  ``.items()`` / ``.keys()`` / ``.values()`` whose result order can
  escape into a value: ``for`` loops, list/dict comprehensions, and
  order-preserving constructors (``tuple``, ``list``, ``dict``).
  Consumption by an order-insensitive reducer is allowed: ``sorted``
  (the canonical fix), ``set`` / ``frozenset`` / set comprehensions,
  ``Counter``, ``len`` / ``sum`` / ``min`` / ``max`` / ``any`` /
  ``all``, including through a directly-consumed generator expression
  (``all(f(x) for x in d.items())``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.staticcheck.engine import FileContext, Finding, Rule, register_rule

__all__ = ["OrderSensitiveCanonicalizationRule"]

_UNORDERED_VIEWS = frozenset({"items", "keys", "values"})

#: Callables whose result does not depend on argument iteration order.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "Counter",
    "len", "sum", "min", "max", "any", "all",
})


def _callee_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _parents(tree: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _is_view_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _UNORDERED_VIEWS
        and not node.args
        and not node.keywords
    )


def _consumed_safely(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    """Whether the view's iteration order cannot reach a produced value."""
    parent = parents.get(id(node))
    if isinstance(parent, ast.Call) and node in parent.args:
        return _callee_name(parent) in _ORDER_INSENSITIVE
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        owner = parents.get(id(parent))
        if isinstance(owner, ast.SetComp):
            return True
        if isinstance(owner, ast.GeneratorExp):
            # Order-safe only when the generator itself is immediately
            # drained by an order-insensitive reducer.
            consumer = parents.get(id(owner))
            return (
                isinstance(consumer, ast.Call)
                and owner in consumer.args
                and _callee_name(consumer) in _ORDER_INSENSITIVE
            )
        return False
    return False


@register_rule
class OrderSensitiveCanonicalizationRule(Rule):
    """SYM001: no order-sensitive iteration of unordered collections in
    canonicalization code."""

    rule_id = "SYM001"
    severity = "error"
    summary = (
        "canonicalization iterates a dict view in insertion/hash order; "
        "canonical fingerprints and digests must be byte-identical for "
        "structurally equal states, so wrap the view in sorted() or "
        "consume it with an order-insensitive reducer"
    )
    scopes = ("symmetry.py", "visited.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents = _parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not _is_view_call(node):
                continue
            if _consumed_safely(node, parents):
                continue
            view = node.func.attr  # type: ignore[union-attr]
            yield self.finding(
                ctx, node,
                f".{view}() iterated order-sensitively; dict order is "
                f"insertion order, which differs between structurally "
                f"equal states -- wrap in sorted() (or drain with an "
                f"order-insensitive reducer such as set/Counter/all)",
            )
