"""SM rules: shared-memory race hazards.

The SWMR register file (:mod:`repro.shm.registers`) gives atomicity
per *operation*, not per handler: a read followed by a dependent write
is not atomic, and interleaved writers can be lost between the two.
Protocol generators are immune (every ``yield Read``/``yield Write``
round-trips through the kernel, which serialises operations), but code
that holds a :class:`~repro.shm.registers.RegisterFile` directly --
kernels, schedulers, test harnesses -- can race.

* SM001 -- a read-modify-write on the same register file inside one
  function: the value bound by ``x = regs.read(..)`` flows into a
  later ``regs.write(..)`` with no atomic snapshot in between.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.staticcheck.engine import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register_rule,
)

__all__ = ["ReadModifyWriteRule"]

_READ_ATTRS = frozenset({"read", "current"})
_WRITE_ATTRS = frozenset({"write"})


def _receiver(call: ast.Call) -> str:
    """Identity of the object a ``.read``/``.write`` call is made on."""
    assert isinstance(call.func, ast.Attribute)
    return dotted_name(call.func.value) or ast.dump(call.func.value)


def _bound_names(node: ast.AST) -> Set[str]:
    names = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
    return names


def _loaded_names(node: ast.AST) -> Set[str]:
    names = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            names.add(child.id)
    return names


@register_rule
class ReadModifyWriteRule(Rule):
    """SM001: non-atomic read-modify-write on a shared register file."""

    rule_id = "SM001"
    severity = "warning"
    summary = (
        "a register value read earlier in this handler flows into a "
        "write to the same register file; the two operations are not "
        "atomic together -- take a snapshot or restructure as one op"
    )
    scopes = ("runtime", "shm", "protocols")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.AST
    ) -> Iterator[Finding]:
        # names bound from a `.read()`/`.current()` call, per receiver
        read_bindings: Dict[str, Set[str]] = {}
        statements: List[ast.stmt] = []
        for child in ast.walk(fn):
            if isinstance(child, ast.stmt):
                statements.append(child)
        statements.sort(key=lambda s: (s.lineno, s.col_offset))
        for stmt in statements:
            for call in _calls_in(stmt):
                if not isinstance(call.func, ast.Attribute):
                    continue
                attr = call.func.attr
                if attr in _WRITE_ATTRS:
                    receiver = _receiver(call)
                    tainted = read_bindings.get(receiver, set())
                    value_names = set()
                    for arg in list(call.args) + [
                        kw.value for kw in call.keywords
                    ]:
                        value_names |= _loaded_names(arg)
                    if tainted & value_names:
                        yield self.finding(
                            ctx, call,
                            f"write to {receiver} depends on "
                            f"{sorted(tainted & value_names)} read from "
                            f"{receiver} earlier in this function; the "
                            f"read-modify-write is not atomic",
                        )
            # record read bindings after checking, so `x = r.read();
            # r.write(x)` on one line still counts in source order
            if isinstance(stmt, ast.Assign):
                for call in _calls_in(stmt.value):
                    if (
                        isinstance(call.func, ast.Attribute)
                        and call.func.attr in _READ_ATTRS
                    ):
                        receiver = _receiver(call)
                        read_bindings.setdefault(receiver, set()).update(
                            _bound_names(stmt)
                        )


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child
