"""``repro.staticcheck`` -- determinism & protocol-conformance linter.

A dependency-free AST linter enforcing, at review time, the invariants
the :mod:`repro.verify` layer can only check per-execution:

* **DET** rules -- no wall-clock time, no process-global RNG, no
  order-sensitive picks over unordered collections, no mutable
  class-level state on the deterministic-replay path;
* **PROTO** rules -- decide-once irrevocability, and every protocol's
  claimed ``(k, t, C)`` region declared and cross-checked against the
  paper's claimed-regions table in :mod:`repro.paper`;
* **SM** rules -- non-atomic read-modify-write hazards against the
  SWMR register file;
* **ROB** rules -- no bare ``except:`` or swallowed-and-ignored
  exception handlers in the harness/jobs execution layers (silent
  failure hides exactly the faults the crash-safe supervisor exists
  to surface);
* **FLOW** rules -- whole-program passes over an import-resolved call
  graph (:mod:`repro.staticcheck.callgraph`) with fixpoint taint
  propagation (:mod:`repro.staticcheck.flow`): interprocedural
  nondeterminism reaching decision/message sites with the full
  source-to-sink chain (FLOW001), decide-once proven across helper
  calls (FLOW002), and static conformance of every
  :mod:`repro.jobs` store call site to the
  pending->leased->done/failed lease automaton (FLOW003).

Run it as ``repro staticcheck [paths] [--format text|json|sarif]
[--baseline FILE] [--strict] [--flow/--no-flow] [--explain RULE]``;
accepted findings live in a committed baseline file with per-entry
justifications.  The linter lints its own package (``staticcheck`` is
in the DET scope).
"""

from repro.staticcheck.baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    fingerprint,
    fingerprint_v1,
    load_baseline,
    save_baseline,
)
from repro.staticcheck.callgraph import Program
from repro.staticcheck.engine import (
    CheckResult,
    FileContext,
    Finding,
    Rule,
    TraceStep,
    all_rules,
    check_paths,
    check_source,
)
from repro.staticcheck.runner import (
    CheckReport,
    UsageError,
    explain,
    render,
    render_text,
    run_check,
    write_baseline,
)
from repro.staticcheck.sarif import render_sarif, to_sarif

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CheckReport",
    "CheckResult",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "Program",
    "Rule",
    "TraceStep",
    "UsageError",
    "all_rules",
    "check_paths",
    "check_program",
    "check_source",
    "explain",
    "fingerprint",
    "fingerprint_v1",
    "load_baseline",
    "render",
    "render_sarif",
    "render_text",
    "run_check",
    "save_baseline",
    "to_sarif",
    "write_baseline",
]


def check_program(paths, root=None, program=None):
    """Run the whole-program FLOW rules; see
    :func:`repro.staticcheck.rules_flow.check_program`."""
    from repro.staticcheck.rules_flow import check_program as impl

    return impl(paths, root=root, program=program)
