"""``repro.staticcheck`` -- determinism & protocol-conformance linter.

A dependency-free AST linter enforcing, at review time, the invariants
the :mod:`repro.verify` layer can only check per-execution:

* **DET** rules -- no wall-clock time, no process-global RNG, no
  order-sensitive picks over unordered collections, no mutable
  class-level state on the deterministic-replay path;
* **PROTO** rules -- decide-once irrevocability, and every protocol's
  claimed ``(k, t, C)`` region declared and cross-checked against the
  paper's claimed-regions table in :mod:`repro.paper`;
* **SM** rules -- non-atomic read-modify-write hazards against the
  SWMR register file;
* **ROB** rules -- no bare ``except:`` or swallowed-and-ignored
  exception handlers in the harness/jobs execution layers (silent
  failure hides exactly the faults the crash-safe supervisor exists
  to surface).

Run it as ``repro staticcheck [paths] [--format text|json|sarif]
[--baseline FILE] [--strict]``; accepted findings live in a committed
baseline file with per-entry justifications.  The linter lints its own
package (``staticcheck`` is in the DET scope).
"""

from repro.staticcheck.baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    fingerprint,
    load_baseline,
    save_baseline,
)
from repro.staticcheck.engine import (
    CheckResult,
    FileContext,
    Finding,
    Rule,
    all_rules,
    check_paths,
    check_source,
)
from repro.staticcheck.runner import (
    CheckReport,
    UsageError,
    render,
    render_text,
    run_check,
    write_baseline,
)
from repro.staticcheck.sarif import render_sarif, to_sarif

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CheckReport",
    "CheckResult",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "Rule",
    "UsageError",
    "all_rules",
    "check_paths",
    "check_source",
    "fingerprint",
    "load_baseline",
    "render",
    "render_sarif",
    "render_text",
    "run_check",
    "save_baseline",
    "to_sarif",
    "write_baseline",
]
