"""SARIF 2.1.0 output for ``repro staticcheck``.

Emits one run with the full rule metadata table and one result per
(non-baselined) finding, suitable for CI artifact upload and code
scanning UIs.  Only the stdlib :mod:`json` is used; the document
follows the OASIS SARIF 2.1.0 schema's required properties.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.staticcheck.engine import (
    NOQA_RULE_ID,
    PARSE_RULE_ID,
    Finding,
    Rule,
    all_rules,
)

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_URI = "https://github.com/repro/repro"

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.rule_id,
        "shortDescription": {"text": rule.summary or rule.rule_id},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning"),
        },
    }


def _parse_rule_descriptor() -> Dict[str, Any]:
    return {
        "id": PARSE_RULE_ID,
        "shortDescription": {"text": "file does not parse"},
        "defaultConfiguration": {"level": "error"},
    }


def _noqa_rule_descriptor() -> Dict[str, Any]:
    return {
        "id": NOQA_RULE_ID,
        "shortDescription": {
            "text": "unknown rule id in a noqa comment suppresses nothing"
        },
        "defaultConfiguration": {"level": "warning"},
    }


def _location(path: str, line: int, col: int) -> Dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": line, "startColumn": col},
        }
    }


def _code_flow(finding: Finding) -> Dict[str, Any]:
    """The finding's source-to-sink trace as one SARIF codeFlow."""
    locations = []
    for step in finding.trace:
        location = _location(step.path, step.line, step.col)
        location["message"] = {"text": step.note}
        locations.append({"location": location})
    return {"threadFlows": [{"locations": locations}]}


def to_sarif(
    findings: Sequence[Finding],
    tool_version: str = "1.0.0",
) -> Dict[str, Any]:
    """Build the SARIF 2.1.0 document as a plain dictionary.

    Interprocedural (FLOW) findings carry their source-to-sink chain
    as a ``codeFlows`` entry, which code-scanning UIs render as a
    step-through trace; ``partialFingerprints`` carries the baseline's
    v2 fingerprint so dedup across uploads matches the gate's notion
    of identity.
    """
    from repro.staticcheck.baseline import fingerprint

    rules: List[Dict[str, Any]] = [
        _rule_descriptor(rule) for rule in all_rules()
    ]
    rules.append(_parse_rule_descriptor())
    rules.append(_noqa_rule_descriptor())
    index = {descriptor["id"]: i for i, descriptor in enumerate(rules)}

    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "ruleIndex": index.get(finding.rule_id, -1),
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                _location(finding.path, finding.line, finding.col)
            ],
            "partialFingerprints": {
                "reproStaticcheckV2": fingerprint(finding),
            },
        }
        if finding.trace:
            result["codeFlows"] = [_code_flow(finding)]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.staticcheck",
                        "informationUri": _TOOL_URI,
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], tool_version: str = "1.0.0"
) -> str:
    return json.dumps(
        to_sarif(findings, tool_version=tool_version), indent=2
    )
