"""SARIF 2.1.0 output for ``repro staticcheck``.

Emits one run with the full rule metadata table and one result per
(non-baselined) finding, suitable for CI artifact upload and code
scanning UIs.  Only the stdlib :mod:`json` is used; the document
follows the OASIS SARIF 2.1.0 schema's required properties.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.staticcheck.engine import (
    PARSE_RULE_ID,
    Finding,
    Rule,
    all_rules,
)

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_URI = "https://github.com/repro/repro"

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.rule_id,
        "shortDescription": {"text": rule.summary or rule.rule_id},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning"),
        },
    }


def _parse_rule_descriptor() -> Dict[str, Any]:
    return {
        "id": PARSE_RULE_ID,
        "shortDescription": {"text": "file does not parse"},
        "defaultConfiguration": {"level": "error"},
    }


def to_sarif(
    findings: Sequence[Finding],
    tool_version: str = "1.0.0",
) -> Dict[str, Any]:
    """Build the SARIF 2.1.0 document as a plain dictionary."""
    rules: List[Dict[str, Any]] = [
        _rule_descriptor(rule) for rule in all_rules()
    ]
    rules.append(_parse_rule_descriptor())
    index = {descriptor["id"]: i for i, descriptor in enumerate(rules)}

    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": index.get(finding.rule_id, -1),
                "level": _LEVELS.get(finding.severity, "warning"),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
            }
        )

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.staticcheck",
                        "informationUri": _TOOL_URI,
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], tool_version: str = "1.0.0"
) -> str:
    return json.dumps(
        to_sarif(findings, tool_version=tool_version), indent=2
    )
