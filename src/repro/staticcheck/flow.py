"""Interprocedural taint propagation for the determinism contract.

The dynamic layers (replay, witnesses, the parallel sweep engine's
bit-identity guarantee) are sound only because *all* nondeterminism
flows through seeded schedulers.  The per-file DET rules catch direct
violations; this module catches the laundered ones: a wall-clock read
returned through two helper calls into a decision, an unordered
iteration order materialised in one function and broadcast from
another.

The analysis is a summary-based fixpoint over the
:class:`~repro.staticcheck.callgraph.Program` call graph:

* **Sources** taint a value: wall-clock reads, the process-global RNG,
  OS entropy (``os.urandom``, ``uuid.uuid4``, ``secrets.*``),
  ``id()``, and *order materialisation* of unordered collections
  (``list(a_set)``, ``next(iter(d.values()))``, ``s.pop()``,
  un-keyed ``min``/``max``).
* **Propagation** follows assignments, arithmetic/containers/f-strings,
  ``self`` attributes (cross-method, via a per-class attribute table),
  and -- the interprocedural part -- call/return edges: each function
  gets a :class:`Summary` saying whether its return value is tainted
  and which parameters pass taint through to the return; summaries are
  iterated to a fixpoint so chains of any depth converge.
* **Sinks** are checked by :mod:`repro.staticcheck.rules_flow`
  (decision sites, message payloads, scheduler picks, batch-plan
  builders); every finding carries the full source-to-sink chain as
  :class:`~repro.staticcheck.engine.TraceStep` records.

Precision over soundness: unresolved calls (dynamic dispatch,
``getattr``, out-of-program callees) do not propagate taint, and
``sorted(...)`` launders *order* taint (it is the sanctioned fix).
Taint may therefore be missed, never invented -- the right polarity
for a CI gate.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.staticcheck.callgraph import FunctionInfo, Program
from repro.staticcheck.engine import TraceStep

__all__ = [
    "FlowAnalysis",
    "Summary",
    "Taint",
    "SOURCE_KINDS",
]

#: Human-readable names of the taint kinds, used in messages.
SOURCE_KINDS = {
    "clock": "wall-clock time",
    "rng": "the process-global RNG",
    "entropy": "OS entropy",
    "identity": "the id() of an object",
    "order": "unordered-collection iteration order",
}

_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

_ENTROPY_CALLS = frozenset({
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "secrets.choice",
})

#: Builtins through which a tainted argument taints the result.
_PROPAGATING_BUILTINS = frozenset({
    "list", "tuple", "dict", "set", "frozenset", "str", "repr", "bytes",
    "int", "float", "bool", "abs", "round", "len", "sum", "min", "max",
    "next", "iter", "reversed", "zip", "enumerate", "map", "filter",
    "format", "hash", "divmod", "pow",
})

#: Chains longer than this stop growing (recursion guard).
_MAX_CHAIN = 16

#: Fixpoint round cap; summaries converge long before this in practice.
_MAX_ROUNDS = 20


@dataclasses.dataclass(frozen=True)
class Taint:
    """A tainted value: which source kind, and the path it travelled."""

    kind: str
    chain: Tuple[TraceStep, ...]

    def extended(self, step: TraceStep) -> "Taint":
        if len(self.chain) >= _MAX_CHAIN:
            return self
        return Taint(kind=self.kind, chain=self.chain + (step,))


def _join(a: Optional[Taint], b: Optional[Taint]) -> Optional[Taint]:
    """First-wins join: deterministic, and keeps chains short."""
    return a if a is not None else b


@dataclasses.dataclass
class Summary:
    """What one function does with taint, seen from a call site."""

    #: the return value may carry this taint
    returns: Optional[Taint] = None
    #: parameter indices whose taint flows into the return value
    passthrough: FrozenSet[int] = frozenset()
    #: the return value is an unordered collection (set/dict view)
    returns_unordered: bool = False
    #: parameter index -> in-function site that materialises that
    #: parameter's iteration order (``list(param)``, un-keyed
    #: ``min(param)``...); an *unordered* argument at a call site
    #: makes the result order-tainted
    materialise_order: Dict[int, TraceStep] = dataclasses.field(
        default_factory=dict
    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Summary):
            return NotImplemented
        return (
            self.returns == other.returns
            and self.passthrough == other.passthrough
            and self.returns_unordered == other.returns_unordered
            and self.materialise_order == other.materialise_order
        )


#: report(function, sink_node, sink_kind, taint) for each tainted sink.
SinkReport = Callable[[FunctionInfo, ast.AST, str, Taint], None]


class FlowAnalysis:
    """Fixpoint taint analysis over one :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.summaries: Dict[str, Summary] = {}
        #: (class qualname, attribute) -> taint written by any method
        self.attr_taint: Dict[Tuple[str, str], Optional[Taint]] = {}
        #: (class qualname, attribute) set to an unordered collection
        self.attr_unordered: Set[Tuple[str, str]] = set()
        self.rounds = 0

    def run(self) -> "FlowAnalysis":
        """Iterate function summaries to a fixpoint."""
        functions = list(self.program.all_functions())
        for fn in functions:
            self.summaries[fn.qualname] = Summary()
        for round_index in range(_MAX_ROUNDS):
            self.rounds = round_index + 1
            changed = False
            for fn in functions:
                summary = _FunctionScan(self, fn).scan()
                if summary != self.summaries[fn.qualname]:
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        return self

    def summary(self, fn: FunctionInfo) -> Summary:
        return self.summaries.get(fn.qualname) or Summary()

    def scan_sinks(self, report: SinkReport) -> None:
        """Re-scan every function, reporting tainted sink reaches."""
        for fn in self.program.all_functions():
            _FunctionScan(self, fn, report=report).scan()


class _FunctionScan:
    """One abstract-interpretation pass over one function body."""

    def __init__(
        self,
        analysis: FlowAnalysis,
        fn: FunctionInfo,
        report: Optional[SinkReport] = None,
    ) -> None:
        self.analysis = analysis
        self.fn = fn
        self.report = report
        self.params = fn.param_names()
        if fn.is_method and self.params:
            self.self_name: Optional[str] = self.params[0]
        else:
            self.self_name = None
        self.env: Dict[str, Taint] = {}
        self.env_params: Dict[str, FrozenSet[int]] = {
            name: frozenset({index})
            for index, name in enumerate(self.params)
        }
        self.unordered: Set[str] = set()
        #: local name -> param indices whose unordered-ness it inherits
        self.unordered_param_sets: Dict[str, FrozenSet[int]] = {
            name: frozenset({index})
            for index, name in enumerate(self.params)
        }
        self.summary = Summary()
        self._returns: Optional[Taint] = None
        self._passthrough: Set[int] = set()
        self._returns_unordered = False
        self._materialise: Dict[int, TraceStep] = {}
        self._reported: Set[Tuple[int, int, str]] = set()

    # -- driving -------------------------------------------------------

    def scan(self) -> Summary:
        body = getattr(self.fn.node, "body", [])
        # Two passes so taint bound late in a loop body reaches uses at
        # the top on the next "iteration"; monotone, so this is safe.
        self._scan_suite(body)
        self._scan_suite(body)
        return Summary(
            returns=self._returns,
            passthrough=frozenset(self._passthrough),
            returns_unordered=self._returns_unordered,
            materialise_order=dict(self._materialise),
        )

    def _scan_suite(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are opaque to the summary
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign):
            taint = self._taint(stmt.value)
            params = self._params_of(stmt.value)
            unordered = self._is_unordered(stmt.value)
            inherited = self._unordered_params_of(stmt.value)
            for target in stmt.targets:
                self._bind(
                    target, taint, params, unordered,
                    unordered_params=inherited,
                )
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(
                    stmt.target,
                    self._taint(stmt.value),
                    self._params_of(stmt.value),
                    self._is_unordered(stmt.value),
                    unordered_params=self._unordered_params_of(
                        stmt.value
                    ),
                )
            return
        if isinstance(stmt, ast.AugAssign):
            taint = _join(self._taint(stmt.value), self._taint(stmt.target))
            params = self._params_of(stmt.value) | self._params_of(
                stmt.target
            )
            self._bind(stmt.target, taint, params, unordered=False)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._returns = _join(
                    self._returns, self._taint(stmt.value)
                )
                self._passthrough |= self._params_of(stmt.value)
                if self._is_unordered(stmt.value):
                    self._returns_unordered = True
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._taint(stmt.test)
            self._scan_suite(stmt.body)
            self._scan_suite(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self._taint(stmt.iter)
            self._bind(
                stmt.target,
                iter_taint,
                self._params_of(stmt.iter),
                unordered=False,
            )
            self._scan_suite(stmt.body)
            self._scan_suite(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._taint(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        taint,
                        self._params_of(item.context_expr),
                        unordered=False,
                    )
            self._scan_suite(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._scan_suite(stmt.body)
            for handler in stmt.handlers:
                self._scan_suite(handler.body)
            self._scan_suite(stmt.orelse)
            self._scan_suite(stmt.finalbody)
            return
        # Everything else: evaluate contained expressions for effects
        # (sink checks fire inside _taint).
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._taint(child)

    # -- binding -------------------------------------------------------

    def _bind(
        self,
        target: ast.AST,
        taint: Optional[Taint],
        params: FrozenSet[int],
        unordered: bool,
        unordered_params: FrozenSet[int] = frozenset(),
    ) -> None:
        if isinstance(target, ast.Name):
            if taint is None:
                self.env.pop(target.id, None)
            else:
                self.env[target.id] = taint
            self.env_params[target.id] = params
            if unordered:
                self.unordered.add(target.id)
            else:
                self.unordered.discard(target.id)
            if unordered_params:
                self.unordered_param_sets[target.id] = unordered_params
            else:
                self.unordered_param_sets.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint, params, unordered=False)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, taint, params, unordered=False)
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == self.self_name
            and self.fn.class_name is not None
        ):
            key = (self._class_qualname(), target.attr)
            if taint is None:
                self.env.pop(f"self.{target.attr}", None)
            else:
                self.env[f"self.{target.attr}"] = taint
            existing = self.analysis.attr_taint.get(key)
            joined = _join(existing, taint)
            if joined is not None:
                self.analysis.attr_taint[key] = joined
            if unordered:
                self.analysis.attr_unordered.add(key)

    def _class_qualname(self) -> str:
        return f"{self.fn.module.name}.{self.fn.class_name}"

    # -- expression taint ----------------------------------------------

    def _params_of(self, node: ast.AST) -> FrozenSet[int]:
        """Parameter indices the value of ``node`` may derive from."""
        if isinstance(node, ast.Name):
            return self.env_params.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            target = self.analysis.program.resolve_call(self.fn, node)
            if target is not None:
                summary = self.analysis.summary(target)
                derived: Set[int] = set()
                for index, arg in enumerate(node.args):
                    if index in summary.passthrough:
                        derived |= self._params_of(arg)
                return frozenset(derived)
            func = node.func
            if isinstance(func, ast.Name) and (
                func.id in _PROPAGATING_BUILTINS
            ):
                derived = set()
                for arg in node.args:
                    derived |= self._params_of(arg)
                return frozenset(derived)
            return frozenset()
        derived = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                derived |= self._params_of(child)
        return frozenset(derived)

    def _taint(self, node: ast.AST) -> Optional[Taint]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == self.self_name
                and self.fn.class_name is not None
            ):
                local = self.env.get(f"self.{node.attr}")
                if local is not None:
                    return local
                return self.analysis.attr_taint.get(
                    (self._class_qualname(), node.attr)
                )
            return self._taint(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.JoinedStr):
            taint: Optional[Taint] = None
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    taint = _join(taint, self._taint(value.value))
            return taint
        if isinstance(node, ast.FormattedValue):
            return self._taint(node.value)
        if isinstance(node, (ast.Constant,)):
            return None
        # Generic join over child expressions: BinOp, BoolOp, Compare,
        # IfExp, Subscript, containers, comprehensions, Starred, Await,
        # Yield values, unary ops...
        taint = None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                taint = _join(taint, self._taint(child))
            elif isinstance(child, ast.comprehension):
                taint = _join(taint, self._taint(child.iter))
        return taint

    def _call_taint(self, node: ast.Call) -> Optional[Taint]:
        arg_taints = [self._taint(arg) for arg in node.args]
        kw_taints = [self._taint(kw.value) for kw in node.keywords]
        self._check_sinks(node, arg_taints, kw_taints)

        source = self._source_taint(node)
        if source is not None:
            return source

        target = self.analysis.program.resolve_call(self.fn, node)
        if target is not None:
            summary = self.analysis.summary(target)
            if summary.returns is not None:
                return summary.returns.extended(
                    self._step(node, f"via call to {target.name}()")
                )
            for index, taint in enumerate(arg_taints):
                if taint is not None and index in summary.passthrough:
                    return taint.extended(
                        self._step(
                            node, f"passes through {target.name}()"
                        )
                    )
            for index, site in summary.materialise_order.items():
                if index >= len(node.args):
                    continue
                arg = node.args[index]
                if self._is_unordered(arg):
                    return Taint(kind="order", chain=(site,)).extended(
                        self._step(
                            node,
                            f"{target.name}() materialises its "
                            f"unordered argument's iteration order",
                        )
                    )
                # Passing one of *our own* parameters along defers the
                # judgement one level further up the call graph.
                for inherited in self._unordered_params_of(arg):
                    self._materialise.setdefault(inherited, site)
            return None

        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                inner = _join(
                    next((t for t in arg_taints if t), None),
                    next((t for t in kw_taints if t), None),
                )
                if inner is not None and inner.kind == "order":
                    return None  # sorted() is the sanctioned fix
                return inner
            if func.id in _PROPAGATING_BUILTINS:
                return _join(
                    next((t for t in arg_taints if t), None),
                    next((t for t in kw_taints if t), None),
                )
            return None
        if isinstance(func, ast.Attribute):
            # Method call on a tainted object keeps the object's taint
            # (str.format, int.to_bytes, ...); untainted receivers stay
            # clean even with tainted arguments (log.append(x)).
            return self._taint(func.value)
        return None

    # -- sources -------------------------------------------------------

    def _source_taint(self, node: ast.Call) -> Optional[Taint]:
        func = node.func
        resolved = self.fn.module.imports.resolve(func)
        if resolved in _CLOCK_CALLS:
            return self._source(node, "clock", f"{resolved}()")
        if resolved in _ENTROPY_CALLS:
            return self._source(node, "entropy", f"{resolved}()")
        if (
            resolved is not None
            and resolved.startswith("random.")
            and "." not in resolved[len("random."):]
            and resolved != "random.Random"
        ):
            return self._source(node, "rng", f"{resolved}()")
        if isinstance(func, ast.Name):
            if func.id == "id" and len(node.args) == 1:
                return self._source(node, "identity", "id()")
            if func.id in ("list", "tuple", "iter", "reversed"):
                if node.args and self._is_unordered(node.args[0]):
                    return self._source(
                        node, "order",
                        f"{func.id}() materialises an unordered "
                        f"collection's iteration order",
                    )
                if node.args:
                    self._record_materialise(
                        node.args[0],
                        node,
                        f"{func.id}() materialises the iteration "
                        f"order of its argument",
                    )
            if func.id in ("min", "max"):
                if (
                    len(node.args) == 1
                    and not any(kw.arg == "key" for kw in node.keywords)
                ):
                    if self._is_unordered(node.args[0]):
                        return self._source(
                            node, "order",
                            f"un-keyed {func.id}() over an unordered "
                            f"collection",
                        )
                    self._record_materialise(
                        node.args[0],
                        node,
                        f"un-keyed {func.id}() over its argument",
                    )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and isinstance(func.value, ast.Name)
            and func.value.id in self.unordered
        ):
            return self._source(
                node, "order",
                f"{func.value.id}.pop() removes an arbitrary element",
            )
        return None

    def _record_materialise(
        self, arg: ast.AST, node: ast.Call, what: str
    ) -> None:
        """Note that this function materialises a parameter's order.

        The argument is not *known* unordered here -- whether the call
        is deterministic depends on what the caller passes, so the site
        is recorded in the summary and judged at each call site.
        """
        for index in self._unordered_params_of(arg):
            self._materialise.setdefault(
                index,
                self._step(
                    node,
                    f"source: {what} "
                    f"[{SOURCE_KINDS['order']}]",
                ),
            )

    def _source(self, node: ast.AST, kind: str, what: str) -> Taint:
        return Taint(
            kind=kind,
            chain=(
                self._step(
                    node, f"source: {what} [{SOURCE_KINDS[kind]}]"
                ),
            ),
        )

    def _step(self, node: ast.AST, note: str) -> TraceStep:
        return TraceStep(
            path=self.fn.module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            note=note,
        )

    # -- unorderedness -------------------------------------------------

    def _unordered_params_of(self, node: ast.AST) -> FrozenSet[int]:
        """Parameter indices whose unordered-ness ``node`` inherits.

        Distinct from :meth:`_params_of` (taint passthrough): this
        tracks names still referring to a parameter *as a collection*,
        so a helper that does ``list(values)`` can be flagged at call
        sites that pass a set.
        """
        if isinstance(node, ast.Name):
            return self.unordered_param_sets.get(node.id, frozenset())
        return frozenset()

    def _is_unordered(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.unordered
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self.self_name
            and self.fn.class_name is not None
        ):
            return (
                self._class_qualname(), node.attr
            ) in self.analysis.attr_unordered
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                "set", "frozenset",
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("values", "keys", "items")
                and not node.args
                and not node.keywords
            ):
                return True
            target = self.analysis.program.resolve_call(self.fn, node)
            if target is not None:
                return self.analysis.summary(target).returns_unordered
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_unordered(node.left) or self._is_unordered(
                node.right
            )
        return False

    # -- sinks ---------------------------------------------------------

    def _check_sinks(
        self,
        node: ast.Call,
        arg_taints: List[Optional[Taint]],
        kw_taints: List[Optional[Taint]],
    ) -> None:
        if self.report is None:
            return
        sink = self._sink_kind(node)
        if sink is None:
            return
        taint = _join(
            next((t for t in arg_taints if t), None),
            next((t for t in kw_taints if t), None),
        )
        if taint is None:
            return
        key = (
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            sink,
        )
        if key in self._reported:
            return
        self._reported.add(key)
        self.report(self.fn, node, sink, taint)

    def _sink_kind(self, node: ast.Call) -> Optional[str]:
        """Which replay-path sink this call is, if any."""
        func = node.func
        parts = self.fn.module.path.split("/")
        on_replay_path = any(
            scope in parts
            for scope in ("protocols", "runtime", "shm", "net")
        )
        if isinstance(func, ast.Attribute):
            if func.attr == "decide" and node.args:
                return "a decision site (ctx.decide)"
            if (
                func.attr in ("send", "broadcast")
                and on_replay_path
                and node.args
            ):
                return f"a message payload ({func.attr})"
        if isinstance(func, ast.Name):
            if func.id == "Decide" and node.args:
                return "a decision event (Decide)"
            if func.id in ("build_plan", "concat_plans", "BatchPlan"):
                return f"a batch-plan builder ({func.id})"
        resolved = self.fn.module.imports.resolve(func)
        if resolved is not None and resolved.startswith("repro.batch"):
            return f"a batch-plan builder ({resolved})"
        return None
