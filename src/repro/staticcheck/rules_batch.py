"""BATCH rules: keep the vectorized engine actually vectorized.

The whole point of :mod:`repro.batch` is that per-run work happens as
numpy array operations over the batch axis.  A Python ``for`` loop that
indexes arrays element-by-element silently reintroduces the scalar
bottleneck the engine exists to remove -- the code stays correct, the
100x throughput disappears, and nothing fails.  This rule makes that
regression a lint error instead of a perf mystery.

* BATCH001 -- inside ``repro.batch`` (excluding ``replay.py``, the
  scalar differential bridge, which replays one run at a time by
  design), flag ``for`` statements whose body subscripts anything with
  the loop variable as the leading index (``decisions[i]``,
  ``faulty[i, pid]``): a data-dependent Python loop over the batch
  axis.  Vectorize with numpy instead; genuinely cold paths (e.g.
  formatting the few violating runs for a report) carry a
  ``# repro: noqa[BATCH001]`` justification on the loop line.

Deliberately scalar code that stays: per-run seed derivation
(:func:`repro.batch.prng.run_seeds`) is a comprehension over SHA-256
calls -- required for run-by-run attribution, not a batch-axis array
walk -- and comprehensions are out of scope for the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.staticcheck.engine import FileContext, Finding, Rule, register_rule

__all__ = ["BatchAxisLoopRule"]


def _target_names(target: ast.expr) -> Set[str]:
    """Plain names bound by a loop target (``i``, ``(i, j)``)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names |= _target_names(element)
        return names
    return set()


def _leading_index_name(subscript: ast.Subscript) -> Set[str]:
    """Names used as the leading subscript index (``x[i]``, ``x[i, j]``)."""
    index = subscript.slice
    if isinstance(index, ast.Tuple) and index.elts:
        index = index.elts[0]
    if isinstance(index, ast.Name):
        return {index.id}
    return set()


@register_rule
class BatchAxisLoopRule(Rule):
    """BATCH001: no data-dependent Python loops over the batch axis."""

    rule_id = "BATCH001"
    severity = "error"
    summary = (
        "a Python for-loop in repro.batch subscripts arrays with its "
        "loop variable, reintroducing the per-run scalar bottleneck the "
        "vectorized engine exists to remove"
    )
    scopes = ("batch",)

    def applies_to(self, path: str) -> bool:
        if not super().applies_to(path):
            return False
        # replay.py is the scalar differential bridge: it executes one
        # planned run at a time through the discrete-event kernel, so
        # per-run loops are its job, not a regression.
        return path.replace("\\", "/").split("/")[-1] != "replay.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            loop_vars = _target_names(node.target)
            if not loop_vars:
                continue
            for child in ast.walk(node):
                if child is node or not isinstance(child, ast.Subscript):
                    continue
                if isinstance(child.ctx, ast.Store):
                    continue
                hit = _leading_index_name(child) & loop_vars
                if hit:
                    yield self.finding(
                        ctx, node,
                        f"loop indexes arrays per element "
                        f"({ast.unparse(child)}); vectorize over the "
                        f"batch axis with numpy operations, or justify a "
                        f"cold path with `# repro: noqa[BATCH001]`",
                    )
                    break
