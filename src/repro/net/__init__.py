"""Network modelling: reliable complete network axioms and schedulers."""

from repro.net.network import NetworkAxiomReport, verify_network_axioms
from repro.net.schedulers import (
    FairDeliveryWrapper,
    FifoScheduler,
    GroupPartitionScheduler,
    LifoScheduler,
    PredicateScheduler,
    RandomScheduler,
    Scheduler,
)

__all__ = [
    "FairDeliveryWrapper",
    "FifoScheduler",
    "GroupPartitionScheduler",
    "LifoScheduler",
    "NetworkAxiomReport",
    "PredicateScheduler",
    "RandomScheduler",
    "Scheduler",
    "verify_network_axioms",
]
