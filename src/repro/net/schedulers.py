"""Delivery schedulers: the asynchrony adversary for message passing.

In the paper's model, message delays are arbitrary but finite, and the
impossibility proofs work by *constructing* runs in which messages are
delayed in specific patterns (e.g. "all messages sent to processes in
``g_j`` by processes not in ``g_j`` are delayed until all processes in
``g_j`` make a decision", proof of Lemma 3.3).  A scheduler chooses, at
each kernel tick, which pending event executes next; each scheduler
class below encodes one family of delay patterns.

Schedulers must satisfy the model's fairness obligation: they may not
delay a message forever while a correct process is still undecided.  The
kernel raises :class:`~repro.runtime.kernel.SchedulerStall` when a
scheduler breaks this.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence, Set

from repro.runtime.events import Delivery, Event, Start

__all__ = [
    "FairDeliveryWrapper",
    "FifoScheduler",
    "GroupPartitionScheduler",
    "LifoScheduler",
    "PredicateScheduler",
    "RandomScheduler",
    "Scheduler",
]


class Scheduler:
    """Interface: pick the sequence number of the next event to execute.

    The kernel assigns sequence numbers monotonically and ``pending`` is
    an insertion-ordered mapping, so its first key is always the oldest
    (minimum) pending sequence number and its last key the newest --
    schedulers below exploit this to pick in O(1) instead of scanning
    every pending event each tick.
    """

    def pick(self, kernel) -> Optional[int]:
        """Return a key of ``kernel.pending`` or ``None`` to refuse all."""
        raise NotImplementedError


class FifoScheduler(Scheduler):
    """Deliver events in creation order (synchronous-looking runs)."""

    def pick(self, kernel) -> Optional[int]:
        if not kernel.pending:
            return None
        return next(iter(kernel.pending))


class LifoScheduler(Scheduler):
    """Deliver the newest event first.

    Start events are drained first so every process gets to run; after
    that, newest-first delivery maximally reorders messages, a useful
    stress pattern for protocols that implicitly assume FIFO channels.
    """

    def pick(self, kernel) -> Optional[int]:
        if not kernel.pending:
            return None
        # All Start events are scheduled before any Delivery, so a Start
        # remains pending exactly when the oldest pending event is one;
        # no need to rebuild a starts list once they are drained.
        oldest = next(iter(kernel.pending))
        if isinstance(kernel.pending[oldest], Start):
            return oldest
        return next(reversed(kernel.pending))


class RandomScheduler(Scheduler):
    """Pick uniformly at random among pending events (seeded)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pick(self, kernel) -> Optional[int]:
        if not kernel.pending:
            return None
        # Keys are already in ascending order (insertion order == seq
        # order), so no sort is needed for a deterministic choice.
        return self._rng.choice(list(kernel.pending))


class FairDeliveryWrapper(Scheduler):
    """Bound how long any single pending event can be deferred.

    Message delays in the model are arbitrary but *finite*: in an
    infinite run every message is eventually delivered.  Biased
    schedulers can defer an event forever while the run keeps going;
    this wrapper forces the oldest pending event through every
    ``patience`` picks, making any infinite run fair while preserving
    the inner scheduler's bias otherwise.
    """

    def __init__(self, inner: Scheduler, patience: int = 64) -> None:
        if patience < 1:
            raise ValueError("patience must be positive")
        self._inner = inner
        self._patience = patience
        self._since_override = 0

    def pick(self, kernel) -> Optional[int]:
        if not kernel.pending:
            return None
        self._since_override += 1
        if self._since_override >= self._patience:
            self._since_override = 0
            return next(iter(kernel.pending))
        choice = self._inner.pick(kernel)
        if choice is None:
            return next(iter(kernel.pending))
        return choice


class PredicateScheduler(Scheduler):
    """Delay deliveries for which ``allow(kernel, delivery)`` is false.

    Start events are always eligible.  Among eligible events the oldest
    is picked.  When nothing is eligible the scheduler either refuses
    (``release_on_stall=False``, the strict behaviour used by proof
    constructions, where eligibility is *supposed* to open up over time)
    or releases the oldest delayed event (``release_on_stall=True``,
    which keeps the run model-compliant for arbitrary protocols).
    """

    def __init__(
        self,
        allow: Callable[[object, Delivery], bool],
        release_on_stall: bool = False,
    ) -> None:
        self._allow = allow
        self._release_on_stall = release_on_stall

    def pick(self, kernel) -> Optional[int]:
        if not kernel.pending:
            return None
        # Pending keys iterate oldest-first, so the first eligible event
        # found is the oldest eligible one.
        for seq, event in kernel.pending.items():
            if isinstance(event, Start) or self._allow(kernel, event):
                return seq
        if self._release_on_stall:
            return next(iter(kernel.pending))
        return None


class GroupPartitionScheduler(PredicateScheduler):
    """The partition pattern of the paper's indistinguishability runs.

    Processes are partitioned into groups.  A message crossing into group
    ``g`` is delayed until every *release-relevant* member of ``g`` has
    decided (the pattern of Lemmas 3.3, 3.6, 3.9, 3.11).  Intra-group
    traffic flows freely.

    Args:
        groups: disjoint process sets covering any subset of processes;
            processes not listed form an implicit singleton group each.
        extra_links: optional additional (sender, receiver) pairs that are
            always allowed, e.g. communication with the faulty set ``F_i``
            in the proof of Lemma 3.9.
        release_when_group_decided: when ``True`` (default), cross-group
            messages into ``g`` unblock once all non-crashed members of
            ``g`` decided; when ``False`` they unblock only when *all*
            correct processes decided.
        release_on_stall: see :class:`PredicateScheduler`.
    """

    def __init__(
        self,
        groups: Sequence[Iterable[int]],
        extra_links: Iterable[tuple] = (),
        release_when_group_decided: bool = True,
        release_on_stall: bool = False,
    ) -> None:
        self._groups: List[Set[int]] = [set(g) for g in groups]
        seen: Set[int] = set()
        for group in self._groups:
            overlap = group & seen
            if overlap:
                raise ValueError(f"groups must be disjoint; repeated: {sorted(overlap)}")
            seen |= group
        self._group_of = {pid: i for i, g in enumerate(self._groups) for pid in g}
        self._extra_links = set(extra_links)
        self._release_when_group_decided = release_when_group_decided
        super().__init__(self._allowed, release_on_stall=release_on_stall)

    def group_of(self, pid: int) -> Optional[int]:
        return self._group_of.get(pid)

    def _group_released(self, kernel, group_index: int) -> bool:
        members = self._groups[group_index]
        if self._release_when_group_decided:
            relevant = {p for p in members if p not in kernel.crashed}
        else:
            relevant = set(kernel.correct)
        return all(kernel.has_decided(p) for p in relevant)

    def _allowed(self, kernel, delivery: Delivery) -> bool:
        sender, receiver = delivery.sender, delivery.receiver
        if (sender, receiver) in self._extra_links:
            return True
        sender_group = self._group_of.get(sender)
        receiver_group = self._group_of.get(receiver)
        if sender_group is not None and sender_group == receiver_group:
            return True
        if receiver_group is None:
            # Receiver is in an implicit singleton group: its "group" is
            # itself, so self-messages flow and everything else waits for
            # its decision.
            if sender == receiver:
                return True
            return kernel.has_decided(receiver) or receiver in kernel.crashed
        return self._group_released(kernel, receiver_group)
