"""Executable counterexample runs from the impossibility proofs.

The paper's impossibility lemmas are proved by *constructing* runs --
partitions whose cross traffic is delayed, Byzantine processes showing a
different face to each group, crashes timed right after a decision --
in which any hypothetical protocol must misbehave.  The proofs
themselves are mathematics (they quantify over all protocols); what this
module reproduces is their *runs*: each construction executes the
corresponding adversarial schedule against one of this library's
concrete protocols placed outside its solvable region and returns the
resulting condition violation.

Each function returns a :class:`ConstructionResult` whose ``violated``
set is non-empty, demonstrating the failure mode the lemma predicts at
that point of the ``(k, t)`` plane.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.problem import SCProblem
from repro.core.validity import RV1, SV1, SV2, WV2, by_code
from repro.core.values import DEFAULT
from repro.failures.byzantine import MultiFaceProcess
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.runner import ExperimentReport, run_mp, run_sm
from repro.net.schedulers import GroupPartitionScheduler, PredicateScheduler
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_a import ProtocolA
from repro.protocols.protocol_b import ProtocolB
from repro.protocols.protocol_d import ProtocolD
from repro.protocols.protocol_e import protocol_e
from repro.protocols.protocol_f import protocol_f
from repro.protocols.simulation import simulate_mp_over_sm
from repro.runtime.events import Delivery
from repro.shm.ops import Write
from repro.shm.schedulers import StagedScheduler

__all__ = [
    "ConstructionResult",
    "lemma_3_3_partition_run",
    "lemma_3_5_crash_after_decide",
    "lemma_3_6_subgroup_run",
    "lemma_3_9_two_faced_run",
    "lemma_3_10_value_lie",
    "lemma_4_3_staged_run",
    "set_overflow_run",
]


@dataclasses.dataclass
class ConstructionResult:
    """One executed counterexample."""

    lemma_id: str
    description: str
    report: ExperimentReport
    #: Conditions the run violated (non-empty when the construction worked).
    violated: Tuple[str, ...]

    @property
    def demonstrates_violation(self) -> bool:
        return bool(self.violated)

    def summary(self) -> str:
        return (
            f"{self.lemma_id}: {self.description} -> "
            f"violated {', '.join(self.violated) or 'nothing (!)'} "
            f"({len(self.report.outcome.correct_decision_values())} distinct "
            "correct decisions)"
        )


def _wrap(lemma_id: str, description: str, report: ExperimentReport) -> ConstructionResult:
    return ConstructionResult(
        lemma_id=lemma_id,
        description=description,
        report=report,
        violated=tuple(report.violated()),
    )


def lemma_3_3_partition_run(n: int = 9, k: int = 2) -> ConstructionResult:
    """The run of Lemma 3.3 / Fig. 3, against PROTOCOL A.

    ``t = ((k-1)n + 1 + (k-1)) // k`` puts the point in the impossible
    region for WV2.  Processes split into ``k`` groups: groups
    ``g_1 .. g_{k-1}`` (size ``n - t``) are unanimous on distinct values
    and decide intra-group; group ``g_k`` (size ``n - t + 1``) is
    engineered to decide *two* values (one member sees only matching
    values, another sees the odd one out), for ``k + 1`` in total.
    """
    t = ((k - 1) * n + 1 + (k - 1)) // k  # ceil(((k-1)n+1)/k)
    size = n - t
    if size < 1 or (k - 1) * size + size + 1 > n:
        raise ValueError(f"choose n, k with n >= k(n-t)+1; got n={n}, k={k}, t={t}")
    groups: List[List[int]] = []
    cursor = 0
    for _ in range(k - 1):
        groups.append(list(range(cursor, cursor + size)))
        cursor += size
    last_group = list(range(cursor, n))  # size >= n - t + 1
    groups.append(last_group)

    inputs: List[object] = [None] * n
    for i, group in enumerate(groups[:-1]):
        for pid in group:
            inputs[pid] = f"v{i + 1}"
    # Last group: all but one member share value "x"; the odd one has "y".
    # Two members are steered to different views: the pure reader sees
    # n - t unanimous "x" values and decides x; the mixed reader is made
    # to take the odd "y" among its first n - t values and falls back to
    # the default -- two decisions inside g_k, k + 1 overall.
    odd_one = last_group[-1]
    pure_reader = last_group[0]
    mixed_reader = last_group[1]
    for pid in last_group:
        inputs[pid] = "x"
    inputs[odd_one] = "y"

    base = GroupPartitionScheduler(groups)

    def allow(kernel, delivery: Delivery) -> bool:
        if delivery.receiver == pure_reader and delivery.sender == odd_one:
            return kernel.has_decided(pure_reader)
        if delivery.receiver == mixed_reader and delivery.sender == pure_reader:
            return kernel.has_decided(mixed_reader)
        return base._allowed(kernel, delivery)

    report = run_mp(
        processes=[ProtocolA() for _ in range(n)],
        inputs=inputs,
        k=k,
        t=t,
        validity=WV2,
        scheduler=PredicateScheduler(allow, release_on_stall=True),
    )
    return _wrap(
        "Lemma 3.3",
        f"k-group partition run (Fig. 3) against PROTOCOL A at n={n}, "
        f"k={k}, t={t}",
        report,
    )


def set_overflow_run(n: int = 6, k: int = 2, t: Optional[int] = None) -> ConstructionResult:
    """Flood-min (Chaudhuri) with ``t >= k``: ``t + 1`` distinct decisions.

    The generic k-set impossibility (Lemma 3.2, [9], [20], [30]) says no
    protocol works for ``t >= k``; this run shows the *concrete* failure
    of the flood-min protocol there: delivery is arranged so that each
    process ``p_i``, ``i <= t``, misses exactly the inputs smaller than
    its own among ``p_0 .. p_t`` and therefore decides its own value.
    """
    t = k if t is None else t
    if t < k or t + 1 > n:
        raise ValueError("need k <= t < n")
    inputs = [f"v{i}" for i in range(n)]  # lexicographic: v0 < v1 < ...
    low = set(range(t + 1))

    def allow(kernel, delivery: Delivery) -> bool:
        receiver, sender = delivery.receiver, delivery.sender
        if receiver in low and sender in low and sender != receiver:
            # p_i (i <= t) must not hear other low processes before deciding.
            return kernel.has_decided(receiver)
        return True

    report = run_mp(
        processes=[ChaudhuriKSet() for _ in range(n)],
        inputs=inputs,
        k=k,
        t=t,
        validity=RV1,
        scheduler=PredicateScheduler(allow, release_on_stall=True),
    )
    return _wrap(
        "Lemma 3.2",
        f"flood-min overload at n={n}, k={k}, t={t}: each of p_0..p_{t} "
        "decides its own value",
        report,
    )


def lemma_3_5_crash_after_decide(n: int = 4, k: int = 2) -> ConstructionResult:
    """The Lemma 3.5 run: SV1 breaks when a decided-upon input's owner crashes.

    All inputs distinct; with flood-min every process decides the
    minimum input ``v_0``.  Re-running with ``p_0`` crashing right after
    its broadcast is indistinguishable to the others, which still decide
    ``v_0`` -- now the input of no *correct* process.
    """
    t = 1
    inputs = [f"v{i}" for i in range(n)]
    report = run_mp(
        processes=[ChaudhuriKSet() for _ in range(n)],
        inputs=inputs,
        k=k,
        t=t,
        validity=SV1,
        crash_adversary=CrashPlan({0: CrashPoint(after_steps=1)}),
    )
    return _wrap(
        "Lemma 3.5",
        f"p_0 crashes right after sending its last message (n={n}, k={k}, "
        f"t={t}); survivors still decide p_0's input",
        report,
    )


def lemma_3_6_subgroup_run(n: int = 9, k: int = 2) -> ConstructionResult:
    """The Lemma 3.6 run against PROTOCOL B (``t >= kn/(2k+1)``, t < n/2).

    ``g`` holds ``n - t`` correct processes split into subgroups of size
    ``n - 2t`` with distinct values; the other ``t`` processes crash at
    the start.  Intra-``g`` traffic flows, so every member receives
    ``n - t`` values of which its subgroup's ``n - 2t`` match its own --
    each subgroup decides its own value: ``floor((n-t)/(n-2t)) > k``
    distinct decisions.
    """
    t = (k * n + 2 * k) // (2 * k + 1)  # ceil(kn/(2k+1))
    if t >= n / 2 or n - 2 * t < 1:
        raise ValueError(f"construction needs t < n/2; got n={n}, k={k}, t={t}")
    sub = n - 2 * t
    g = list(range(n - t))
    inputs: List[object] = [None] * n
    for idx, pid in enumerate(g):
        inputs[pid] = f"v{idx // sub}"
    for pid in range(n - t, n):
        inputs[pid] = "crashed-anyway"
    crash = CrashPlan({pid: CrashPoint(after_steps=0) for pid in range(n - t, n)})

    report = run_mp(
        processes=[ProtocolB() for _ in range(n)],
        inputs=inputs,
        k=k,
        t=t,
        validity=SV2,
        crash_adversary=crash,
    )
    return _wrap(
        "Lemma 3.6",
        f"subgroup run against PROTOCOL B at n={n}, k={k}, t={t}: "
        f"{(n - t) // sub} subgroups each decide their own value",
        report,
    )


def lemma_3_9_two_faced_run(n: int = 9, k: int = 2) -> ConstructionResult:
    """The Lemma 3.9 run against PROTOCOL A in MP/Byz.

    ``k + 1`` groups of ``n - 2t`` correct processes hold distinct
    values; a set ``F`` of ``t`` Byzantine processes runs ``k + 1``
    faces, showing face ``i`` (input ``v_i``) to group ``g_i``.  With
    cross-group traffic delayed, each ``g_i`` member collects ``n - t``
    unanimous ``v_i`` messages and decides ``v_i``: ``k + 1`` values.
    """
    t = max((k * n + 2 * k) // (2 * k + 1), k)  # ceil(kn/(2k+1)), and >= k
    size = n - 2 * t
    if size < 1 or (k + 1) * size + t > n:
        raise ValueError(
            f"construction needs (k+1)(n-2t) + t <= n; got n={n}, k={k}, t={t}"
        )
    groups: List[List[int]] = []
    cursor = 0
    for _ in range(k + 1):
        groups.append(list(range(cursor, cursor + size)))
        cursor += size
    # Give any leftover correct processes to the first group.
    leftovers = list(range(cursor, n - t))
    groups[0].extend(leftovers)
    f_set = list(range(n - t, n))

    inputs: List[object] = [None] * n
    face_of: Dict[int, str] = {}
    for i, group in enumerate(groups):
        for pid in group:
            inputs[pid] = f"v{i}"
            face_of[pid] = f"face{i}"
    for pid in f_set:
        inputs[pid] = "byzantine"

    def make_byzantine() -> MultiFaceProcess:
        return MultiFaceProcess(
            protocol_factory=ProtocolA,
            face_inputs={f"face{i}": f"v{i}" for i in range(k + 1)},
            face_of_peer=lambda peer: face_of.get(peer),
        )

    scheduler = GroupPartitionScheduler(
        groups,
        extra_links=[(s, r) for s in f_set for r in range(n)]
        + [(r, s) for s in f_set for r in range(n)],
        release_on_stall=True,
    )
    processes = [
        make_byzantine() if pid in f_set else ProtocolA() for pid in range(n)
    ]
    report = run_mp(
        processes=processes,
        inputs=inputs,
        k=k,
        t=t,
        validity=WV2,
        scheduler=scheduler,
        byzantine=f_set,
    )
    return _wrap(
        "Lemma 3.9",
        f"two-faced Byzantine run against PROTOCOL A at n={n}, k={k}, t={t}: "
        f"{k + 1} groups each adopt their own value",
        report,
    )


def lemma_3_10_value_lie(n: int = 4, k: int = 2) -> ConstructionResult:
    """The Lemma 3.10 run: RV1 is unachievable under Byzantine failures.

    A Byzantine process runs flood-min honestly except that it claims an
    input ``"a-lie"`` smaller than every genuine input; every correct
    process decides that fabricated value, which is no process's input.
    """
    t = 1
    inputs = [f"v{i}" for i in range(n)]

    liar = MultiFaceProcess(
        protocol_factory=ChaudhuriKSet,
        face_inputs={"only": "a-lie"},  # sorts before every "v..." input
        face_of_peer=lambda peer: "only",
    )
    processes = [liar] + [ChaudhuriKSet() for _ in range(n - 1)]
    report = run_mp(
        processes=processes,
        inputs=inputs,
        k=k,
        t=t,
        validity=RV1,
        byzantine=[0],
    )
    return _wrap(
        "Lemma 3.10",
        f"input-lie run against flood-min at n={n}, k={k}, t={t}: everyone "
        "decides a fabricated value",
        report,
    )


def lemma_4_3_staged_run(n: int = 4, k: int = 2) -> ConstructionResult:
    """The Lemma 4.3 run against PROTOCOL F in SM/CR (t >= n/2, t >= k).

    Processes take steps one after another: each of ``p_0 .. p_t`` finds
    at most ``t`` registers written when it finishes its scan, so each
    decides its *own* value -- ``t + 1 > k`` distinct decisions, without
    a single failure actually occurring.
    """
    t = n // 2
    if t < k:
        raise ValueError(f"need t >= k; got n={n} (t={t}), k={k}")
    inputs = [f"v{i}" for i in range(n)]
    # PROTOCOL F waits for n - t = t written registers (n even), so the
    # first stage interleaves p_0 .. p_{n-t-1}; every later process runs
    # alone and still keeps its own value while i = r - t stays <= 1.
    stages = [list(range(n - t))] + [[pid] for pid in range(n - t, n)]
    scheduler = StagedScheduler(stages, release_on_stall=True)
    report = run_sm(
        programs=[protocol_f] * n,
        inputs=inputs,
        k=k,
        t=t,
        validity=SV2,
        scheduler=scheduler,
    )
    return _wrap(
        "Lemma 4.3",
        f"staged run against PROTOCOL F at n={n}, k={k}, t={t}: early "
        "scanners see few registers and keep their own values",
        report,
    )


def lemma_3_4_wv1_overflow(n: int = 5, k: int = 2) -> ConstructionResult:
    """The WV1-at-``t >= k`` failure mode, against PROTOCOL D.

    Lemma 3.4 reduces WV1 to RV1 to show no protocol exists for
    ``t >= k``.  Concretely: PROTOCOL D (a WV1 protocol for
    ``k >= Z(n, t)``) run below its region, at ``k <= t``, overshoots
    agreement in the most direct way -- its ``t + 1`` broadcasters each
    decide their own (distinct) values, with no failure occurring.
    """
    t = k  # t >= k: outside every WV1 region
    inputs = [f"v{i}" for i in range(n)]
    report = run_mp(
        processes=[ProtocolD() for _ in range(n)],
        inputs=inputs,
        k=k,
        t=t,
        validity=by_code("WV1"),
    )
    return _wrap(
        "Lemma 3.4",
        f"PROTOCOL D below its region at n={n}, k={k}, t={t}: the t+1 "
        "broadcasters decide distinct values",
        report,
    )


def lemma_3_11_rv2_lie(n: int = 9, k: int = 2) -> ConstructionResult:
    """The RV2 failure mode behind Lemma 3.11, against PROTOCOL A.

    Lemma 3.11's full proof is an indistinguishability chain (the runs
    ``alpha_i`` in which the set ``F_i`` is faulty but behaves as it did
    in the correct run ``alpha``); its executable core is the ``alpha_i``
    view: every process nominally starts with ``v``, but the ``t``
    Byzantine processes *behave as if* they held different inputs.
    PROTOCOL A's unanimity rule then collapses to the default for every
    correct process -- RV2's "all started with v, so decide v" is
    violated with the failure budget set exactly at the lemma's
    ``t = ceil(kn/(2(k+1)))`` frontier (any ``t >= 1`` would do for
    PROTOCOL A; the budget anchors the run to the lemma's region).
    """
    t = max((k * n + 2 * (k + 1) - 1) // (2 * (k + 1)), 1)  # ceil(kn/(2(k+1)))
    if t >= n:
        raise ValueError(f"need t < n; got n={n}, k={k}, t={t}")
    f_set = list(range(n - t, n))
    inputs = ["v"] * n  # nominally unanimous, including the liars

    def make_liar(pid: int) -> MultiFaceProcess:
        return MultiFaceProcess(
            protocol_factory=ProtocolA,
            face_inputs={"lie": f"w{pid}"},
            face_of_peer=lambda peer: "lie",
        )

    processes = [
        make_liar(pid) if pid in f_set else ProtocolA() for pid in range(n)
    ]
    # Newest-first delivery puts the Byzantine values among every correct
    # process's first n - t messages, spoiling unanimity.
    from repro.net.schedulers import LifoScheduler

    report = run_mp(
        processes=processes,
        inputs=inputs,
        k=k,
        t=t,
        validity=by_code("RV2"),
        byzantine=f_set,
        scheduler=LifoScheduler(),
    )
    return _wrap(
        "Lemma 3.11",
        f"input-lie run (RV2) against PROTOCOL A at n={n}, k={k}, t={t}: "
        "unanimous nominal inputs, divergent Byzantine behaviour",
        report,
    )


def lemma_4_8_sm_value_lie(n: int = 4, k: int = 2) -> ConstructionResult:
    """The Lemma 4.8 run: RV1 fails in SM/Byz just as in MP/Byz.

    The Lemma 3.10 liar is pushed through SIMULATION: a Byzantine
    process runs flood-min over shared memory claiming a fabricated
    minimal input, and every correct process adopts it.  (The paper
    proves Lemma 4.8 by observing the Lemma 3.10 proof never uses the
    message-passing structure.)
    """
    t = 1
    inputs = [f"v{i}" for i in range(n)]

    def make_liar() -> MultiFaceProcess:
        return MultiFaceProcess(
            protocol_factory=ChaudhuriKSet,
            face_inputs={"only": "a-lie"},
            face_of_peer=lambda peer: "only",
        )

    programs = [simulate_mp_over_sm(make_liar)] + [
        simulate_mp_over_sm(ChaudhuriKSet) for _ in range(n - 1)
    ]
    report = run_sm(
        programs=programs,
        inputs=inputs,
        k=k,
        t=t,
        validity=RV1,
        byzantine=[0],
    )
    return _wrap(
        "Lemma 4.8",
        f"input-lie run against SIMULATED flood-min in SM/Byz at n={n}, "
        f"k={k}, t={t}",
        report,
    )


def lemma_4_9_register_lie(n: int = 4, k: int = 2) -> ConstructionResult:
    """The Lemma 4.9 flavour of RV2 failure in SM/Byz, against PROTOCOL E.

    Every process nominally starts with the same value ``v`` but one
    Byzantine process writes a different value into its register; the
    correct processes' scans are not unanimous, so they fall back to the
    default -- violating RV2's "all started with v, so decide v".
    (PROTOCOL E only promises WV2 in SM/Byz, Lemma 4.10; this run shows
    why the promise cannot be strengthened to RV2 on the t >= k side.)
    """
    t = n // 2
    if t < k:
        raise ValueError(f"need t = n//2 >= k; got n={n}, k={k}")
    inputs = ["v"] * n

    def liar_program(ctx):
        yield Write("not-v")

    programs = [protocol_e] * (n - 1) + [liar_program]
    report = run_sm(
        programs=programs,
        inputs=inputs,
        k=k,
        t=t,
        validity=by_code("RV2"),
        byzantine=[n - 1],
    )
    return _wrap(
        "Lemma 4.9",
        f"register-lie run against PROTOCOL E at n={n}, k={k}, t={t}: "
        "one Byzantine register breaks unanimity",
        report,
    )


def all_constructions() -> Tuple[ConstructionResult, ...]:
    """Execute every construction with its default parameters."""
    return (
        lemma_3_3_partition_run(),
        set_overflow_run(),
        lemma_3_4_wv1_overflow(),
        lemma_3_5_crash_after_decide(),
        lemma_3_6_subgroup_run(),
        lemma_3_9_two_faced_run(),
        lemma_3_10_value_lie(),
        lemma_3_11_rv2_lie(),
        lemma_4_3_staged_run(),
        lemma_4_8_sm_value_lie(),
        lemma_4_9_register_lie(),
    )


__all__.extend(
    [
        "all_constructions",
        "lemma_3_4_wv1_overflow",
        "lemma_3_11_rv2_lie",
        "lemma_4_8_sm_value_lie",
        "lemma_4_9_register_lie",
    ]
)
