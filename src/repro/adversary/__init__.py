"""Executable counterexample runs from the impossibility proofs."""

from repro.adversary.constructions import (
    ConstructionResult,
    all_constructions,
    lemma_3_3_partition_run,
    lemma_3_4_wv1_overflow,
    lemma_3_5_crash_after_decide,
    lemma_3_6_subgroup_run,
    lemma_3_9_two_faced_run,
    lemma_3_10_value_lie,
    lemma_3_11_rv2_lie,
    lemma_4_3_staged_run,
    lemma_4_8_sm_value_lie,
    lemma_4_9_register_lie,
    set_overflow_run,
)

__all__ = [
    "ConstructionResult",
    "all_constructions",
    "lemma_3_3_partition_run",
    "lemma_3_4_wv1_overflow",
    "lemma_3_5_crash_after_decide",
    "lemma_3_6_subgroup_run",
    "lemma_3_9_two_faced_run",
    "lemma_3_10_value_lie",
    "lemma_3_11_rv2_lie",
    "lemma_4_3_staged_run",
    "lemma_4_8_sm_value_lie",
    "lemma_4_9_register_lie",
    "set_overflow_run",
]
