"""System models considered by the paper.

The paper (Section 2) studies four asynchronous models, given by two axes:

* failure type -- *crash* (a faulty process halts prematurely) versus
  *Byzantine* (a faulty process deviates arbitrarily), and
* communication -- *message passing* over a reliable complete network
  versus *shared memory* made of single-writer multi-reader atomic
  registers.

The shorthands ``MP/CR``, ``MP/Byz``, ``SM/CR`` and ``SM/Byz`` from the
paper are mirrored here as members of :class:`Model`.
"""

from __future__ import annotations

import enum

__all__ = [
    "Communication",
    "FailureMode",
    "Model",
]


class FailureMode(enum.Enum):
    """How a faulty process may misbehave."""

    CRASH = "crash"
    BYZANTINE = "byzantine"

    def __str__(self) -> str:
        return self.value


class Communication(enum.Enum):
    """How processes communicate."""

    MESSAGE_PASSING = "message-passing"
    SHARED_MEMORY = "shared-memory"

    def __str__(self) -> str:
        return self.value


class Model(enum.Enum):
    """One of the four asynchronous models of the paper (Section 2)."""

    MP_CR = ("MP/CR", Communication.MESSAGE_PASSING, FailureMode.CRASH)
    MP_BYZ = ("MP/Byz", Communication.MESSAGE_PASSING, FailureMode.BYZANTINE)
    SM_CR = ("SM/CR", Communication.SHARED_MEMORY, FailureMode.CRASH)
    SM_BYZ = ("SM/Byz", Communication.SHARED_MEMORY, FailureMode.BYZANTINE)

    def __init__(
        self,
        shorthand: str,
        communication: Communication,
        failure_mode: FailureMode,
    ) -> None:
        self.shorthand = shorthand
        self.communication = communication
        self.failure_mode = failure_mode

    @property
    def is_byzantine(self) -> bool:
        """``True`` when faulty processes may behave arbitrarily."""
        return self.failure_mode is FailureMode.BYZANTINE

    @property
    def is_crash(self) -> bool:
        """``True`` when faulty processes may only halt prematurely."""
        return self.failure_mode is FailureMode.CRASH

    @property
    def is_message_passing(self) -> bool:
        return self.communication is Communication.MESSAGE_PASSING

    @property
    def is_shared_memory(self) -> bool:
        return self.communication is Communication.SHARED_MEMORY

    def weaker_or_equal(self, other: "Model") -> bool:
        """Whether an adversary of ``self`` is no stronger than ``other``'s.

        A protocol correct in ``other`` is correct in ``self`` whenever the
        communication media coincide and ``other`` tolerates Byzantine
        failures while ``self`` only needs crash tolerance.  (The paper uses
        this to carry crash impossibilities into the Byzantine models and
        Byzantine protocols into crash models.)
        """
        if self.communication is not other.communication:
            return False
        return self.is_crash or other.is_byzantine

    @classmethod
    def from_shorthand(cls, shorthand: str) -> "Model":
        """Look a model up by its paper shorthand, e.g. ``"MP/Byz"``."""
        for model in cls:
            if model.shorthand.lower() == shorthand.lower():
                return model
        raise ValueError(f"unknown model shorthand: {shorthand!r}")

    def __str__(self) -> str:
        return self.shorthand


#: All four models, in the order the paper presents them.
ALL_MODELS = (Model.MP_CR, Model.MP_BYZ, Model.SM_CR, Model.SM_BYZ)

__all__.append("ALL_MODELS")
