"""Atomic file writes shared by every artifact-producing layer.

Campaign result files, witness JSON, BENCH_*.json, SVG figures, and
staticcheck baselines are all consumed by *other* runs (resume paths,
``verify-run`` replays, CI baseline gates).  A plain ``write_text``
interrupted by a crash -- the very crashes :mod:`repro.jobs` exists to
survive -- leaves a torn file that then poisons the next run with a
JSON parse error, or worse, half a result set that parses.

:func:`atomic_write_text` removes that failure mode: content is written
to a temporary file in the *same directory* (same filesystem, so the
final rename cannot degrade to a copy), flushed and fsynced, and moved
into place with :func:`os.replace`, which POSIX guarantees is atomic.
Readers therefore observe either the old complete file or the new
complete file, never a prefix.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Union

__all__ = ["atomic_write_json", "atomic_write_text"]


def atomic_write_text(
    path: Union[str, pathlib.Path], content: str
) -> None:
    """Write ``content`` to ``path`` atomically (tmp file + rename).

    A crash at any point leaves either the previous file intact or the
    new one complete; it never leaves a torn artifact.  The temporary
    file is created next to the target so :func:`os.replace` stays a
    same-filesystem rename.
    """
    target = pathlib.Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent or pathlib.Path("."),
        prefix=f".{target.name}.",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass  # best-effort tmp cleanup; the original error matters more
        raise


def atomic_write_json(
    path: Union[str, pathlib.Path],
    payload: object,
    indent: int = 2,
    sort_keys: bool = True,
) -> None:
    """Serialize ``payload`` as JSON and write it atomically.

    Uses the repo-wide result-file conventions (two-space indent,
    sorted keys, trailing newline) so artifacts diff cleanly.
    """
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    )
