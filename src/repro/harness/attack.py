"""Adversarial search: how badly can a protocol be made to misbehave?

The paper leaves *open gaps* in several panels -- regions where no
protocol is known and no impossibility is proved.  This module provides
a randomized adversarial search that, given a protocol and an
``(n, k, t)`` point, hunts for schedules, crash patterns, Byzantine
behaviours, and input assignments maximizing the damage (distinct
correct decisions, or a validity break).

Uses:

* inside a protocol's claimed region it is a *falsification* harness --
  any found violation is a bug (the test suite runs it there and
  expects failure-free results);
* outside the region it quantifies the failure concretely (e.g.
  "PROTOCOL B at t = kn/(2k+1) can be driven to 5 values");
* in the open gaps it provides *evidence* (never proof) about which way
  the open question might resolve for this particular protocol.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

from repro.failures.byzantine import (
    GarbageProcess,
    MultiFaceProcess,
    MuteProcess,
)
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.parallel import parallel_map
from repro.harness.runner import ExperimentReport, run_spec
from repro.protocols.base import get_spec
from repro.runtime.traces import TraceMode
from repro.net.schedulers import (
    FairDeliveryWrapper,
    GroupPartitionScheduler,
    RandomScheduler,
)
from repro.protocols.base import ProtocolSpec
from repro.runtime.kernel import KernelLimitError, SchedulerStall
from repro.shm.schedulers import (
    FairProcessWrapper,
    RandomProcessScheduler,
    StagedScheduler,
)

__all__ = ["AttackResult", "search_worst_run"]


@dataclasses.dataclass
class AttackResult:
    """The most damaging run found by the search."""

    spec_name: str
    n: int
    k: int
    t: int
    attempts: int
    best_distinct: int
    best_report: Optional[ExperimentReport]
    violations_found: int
    first_violation: Optional[str] = None

    @property
    def broke_agreement(self) -> bool:
        return self.best_distinct > self.k

    def summary(self) -> str:
        status = (
            f"VIOLATION after {self.attempts} attempts: {self.first_violation}"
            if self.violations_found
            else f"no violation in {self.attempts} attempts"
        )
        return (
            f"attack on {self.spec_name} at n={self.n}, k={self.k}, "
            f"t={self.t}: max distinct decisions {self.best_distinct}; {status}"
        )


def _random_partition(n: int, rng: random.Random) -> List[List[int]]:
    """A random partition of 0..n-1 into 2..4 groups."""
    pids = list(range(n))
    rng.shuffle(pids)
    group_count = rng.randint(2, min(4, n))
    cuts = sorted(rng.sample(range(1, n), group_count - 1))
    groups, start = [], 0
    for cut in cuts + [n]:
        groups.append(pids[start:cut])
        start = cut
    return [g for g in groups if g]


def _mp_scheduler(n: int, rng: random.Random):
    roll = rng.random()
    if roll < 0.5:
        return RandomScheduler(seed=rng.randrange(1 << 30))
    # Partition bias wrapped in fairness: delays stay finite, so any
    # termination violation reported is genuine.
    return FairDeliveryWrapper(
        GroupPartitionScheduler(_random_partition(n, rng), release_on_stall=True),
        patience=rng.randint(16, 128),
    )


def _sm_scheduler(n: int, rng: random.Random):
    roll = rng.random()
    if roll < 0.5:
        return RandomProcessScheduler(seed=rng.randrange(1 << 30))
    return FairProcessWrapper(
        StagedScheduler(_random_partition(n, rng), release_on_stall=True),
        patience=rng.randint(8, 64),
    )


def _crash_plan(n: int, t: int, rng: random.Random) -> Optional[CrashPlan]:
    count = rng.randint(0, t)
    if not count:
        return None
    points: Dict[int, CrashPoint] = {}
    for pid in rng.sample(range(n), count):
        if rng.random() < 0.5:
            points[pid] = CrashPoint(after_sends=rng.randint(0, 2 * n))
        else:
            points[pid] = CrashPoint(after_steps=rng.randint(0, n))
    return CrashPlan(points)


def _byzantine_behaviours(
    spec: ProtocolSpec, n: int, k: int, t: int, rng: random.Random
):
    count = rng.randint(0, t)
    victims = rng.sample(range(n), count)
    behaviours = {}
    for pid in victims:
        roll = rng.random()
        if spec.is_shared_memory:
            from repro.failures.byzantine_sm import (
                garbage_writer,
                mute_program,
                register_rewriter,
            )

            if roll < 0.34:
                behaviours[pid] = mute_program
            elif roll < 0.67:
                behaviours[pid] = garbage_writer(seed=rng.randrange(1 << 30))
            else:
                behaviours[pid] = register_rewriter(
                    [f"w{pid}a", f"w{pid}b", f"w{pid}c"]
                )
        else:
            if roll < 0.25:
                behaviours[pid] = MuteProcess()
            elif roll < 0.5:
                behaviours[pid] = GarbageProcess(seed=rng.randrange(1 << 30))
            else:
                faces = {f"f{i}": f"lie{pid}-{i}" for i in range(rng.randint(2, 4))}
                keys = list(faces)
                behaviours[pid] = MultiFaceProcess(
                    protocol_factory=lambda: spec.make(n, k, t),
                    face_inputs=faces,
                    face_of_peer=lambda peer, keys=keys: keys[peer % len(keys)],
                )
    return behaviours


def _inputs(n: int, rng: random.Random) -> List[str]:
    style = rng.random()
    if style < 0.3:
        return [f"v{i}" for i in range(n)]
    if style < 0.6:
        return ["v"] * n
    pool = [f"v{i}" for i in range(rng.randint(2, max(2, n // 2)))]
    return [rng.choice(pool) for _ in range(n)]


def _run_attempt(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    attempt_seed: int,
    max_ticks: int,
    trace_mode: TraceMode,
) -> ExperimentReport:
    """One attempt; fully determined by ``attempt_seed``.

    May raise :class:`KernelLimitError` / :class:`SchedulerStall` (a
    termination violation).
    """
    rng = random.Random(attempt_seed)
    crash = None
    byzantine = None
    if spec.model.is_crash:
        crash = _crash_plan(n, t, rng)
    else:
        byzantine = _byzantine_behaviours(spec, n, k, t, rng) or None
    scheduler = (
        _sm_scheduler(n, rng)
        if spec.is_shared_memory
        else _mp_scheduler(n, rng)
    )
    return run_spec(
        spec, n, k, t, _inputs(n, rng),
        scheduler=scheduler,
        crash_adversary=crash,
        byzantine_behaviours=byzantine,
        max_ticks=max_ticks,
        trace_mode=trace_mode,
    )


@dataclasses.dataclass(frozen=True)
class _AttemptSummary:
    """Lightweight, picklable score of one attempt.

    ``distinct`` is ``None`` for termination violations; ``detail``
    carries the violation description when the attempt was not ok.
    """

    distinct: Optional[int]
    ok: bool
    detail: Optional[str]


def _summarize_attempt(
    spec: ProtocolSpec, n: int, k: int, t: int, attempt_seed: int, max_ticks: int
) -> _AttemptSummary:
    try:
        report = _run_attempt(
            spec, n, k, t, attempt_seed, max_ticks, TraceMode.COUNTERS
        )
    except (KernelLimitError, SchedulerStall) as error:
        return _AttemptSummary(None, False, f"termination: {error}")
    distinct = len(report.outcome.correct_decision_values())
    if report.ok:
        return _AttemptSummary(distinct, True, None)
    detail = "; ".join(str(v) for v in report.violated().values())
    return _AttemptSummary(distinct, False, detail)


def _attack_task(task) -> _AttemptSummary:
    """Module-level worker: one attack attempt, spec resolved by name."""
    spec_name, n, k, t, attempt_seed, max_ticks = task
    return _summarize_attempt(get_spec(spec_name), n, k, t, attempt_seed, max_ticks)


def search_worst_run(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    attempts: int = 200,
    seed: int = 0,
    max_ticks: int = 200_000,
    stop_on_violation: bool = False,
    jobs: int = 1,
) -> AttackResult:
    """Randomized adversarial search for the worst run of ``spec``.

    Every attempt draws a scheduler (random or partition-shaped -- the
    shapes the impossibility proofs use), a failure pattern within the
    budget, and an input style, then runs the protocol and scores the
    run by distinct correct decisions and condition violations.

    Per-attempt seeds are all drawn from the master RNG up front, so
    attempts are independent; with ``jobs > 1`` (``0`` = all cores) they
    run in worker processes and the result is bit-identical to serial.
    Attempts execute with ``TraceMode.COUNTERS`` (no trace records); the
    winning attempt is re-run once in ``FULL`` mode so
    :attr:`AttackResult.best_report` still carries a complete trace for
    replay and forensics.
    """
    master = random.Random(seed)
    attempt_seeds = [master.randrange(1 << 62) for _ in range(attempts)]
    result = AttackResult(
        spec_name=spec.name, n=n, k=k, t=t,
        attempts=0, best_distinct=0, best_report=None, violations_found=0,
    )

    registered = False
    if jobs != 1:
        try:
            registered = get_spec(spec.name) is spec
        except ValueError:
            registered = False
    if registered:
        tasks = [
            (spec.name, n, k, t, attempt_seed, max_ticks)
            for attempt_seed in attempt_seeds
        ]
        summaries = parallel_map(_attack_task, tasks, jobs=jobs)
    else:
        # Lazy generator: with stop_on_violation the fold below breaks
        # early and later attempts are never executed.
        summaries = (
            _summarize_attempt(spec, n, k, t, attempt_seed, max_ticks)
            for attempt_seed in attempt_seeds
        )

    best_index: Optional[int] = None
    for index, summary in enumerate(summaries):
        result.attempts += 1
        if summary.distinct is None:  # termination violation
            result.violations_found += 1
            if result.first_violation is None:
                result.first_violation = summary.detail
            if stop_on_violation:
                break
            continue
        if summary.distinct > result.best_distinct:
            result.best_distinct = summary.distinct
            best_index = index
        if not summary.ok:
            result.violations_found += 1
            if result.first_violation is None:
                result.first_violation = summary.detail
            if best_index is None or summary.distinct >= result.best_distinct:
                best_index = index
            if stop_on_violation:
                break

    if best_index is not None:
        result.best_report = _run_attempt(
            spec, n, k, t, attempt_seeds[best_index], max_ticks, TraceMode.FULL
        )
    return result
