"""Adversarial search: how badly can a protocol be made to misbehave?

The paper leaves *open gaps* in several panels -- regions where no
protocol is known and no impossibility is proved.  This module provides
a randomized adversarial search that, given a protocol and an
``(n, k, t)`` point, hunts for schedules, crash patterns, Byzantine
behaviours, and input assignments maximizing the damage (distinct
correct decisions, or a validity break).

Uses:

* inside a protocol's claimed region it is a *falsification* harness --
  any found violation is a bug (the test suite runs it there and
  expects failure-free results);
* outside the region it quantifies the failure concretely (e.g.
  "PROTOCOL B at t = kn/(2k+1) can be driven to 5 values");
* in the open gaps it provides *evidence* (never proof) about which way
  the open question might resolve for this particular protocol.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

from repro.failures.byzantine import (
    GarbageProcess,
    MultiFaceProcess,
    MuteProcess,
)
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.parallel import parallel_map
from repro.harness.runner import ExperimentReport, run_spec
from repro.protocols.base import get_spec
from repro.runtime.traces import TraceMode
from repro.net.schedulers import (
    FairDeliveryWrapper,
    GroupPartitionScheduler,
    RandomScheduler,
)
from repro.protocols.base import ProtocolSpec
from repro.runtime.kernel import KernelLimitError, SchedulerStall
from repro.shm.schedulers import (
    FairProcessWrapper,
    RandomProcessScheduler,
    StagedScheduler,
)

__all__ = ["AttackResult", "record_best_witness", "search_worst_run"]


@dataclasses.dataclass
class AttackResult:
    """The most damaging run found by the search."""

    spec_name: str
    n: int
    k: int
    t: int
    attempts: int
    best_distinct: int
    best_report: Optional[ExperimentReport]
    violations_found: int
    first_violation: Optional[str] = None
    #: seed of the winning attempt; feeds :func:`record_best_witness`.
    best_attempt_seed: Optional[int] = None

    @property
    def broke_agreement(self) -> bool:
        return self.best_distinct > self.k

    def summary(self) -> str:
        status = (
            f"VIOLATION after {self.attempts} attempts: {self.first_violation}"
            if self.violations_found
            else f"no violation in {self.attempts} attempts"
        )
        return (
            f"attack on {self.spec_name} at n={self.n}, k={self.k}, "
            f"t={self.t}: max distinct decisions {self.best_distinct}; {status}"
        )


def _random_partition(n: int, rng: random.Random) -> List[List[int]]:
    """A random partition of 0..n-1 into 2..4 groups."""
    pids = list(range(n))
    rng.shuffle(pids)
    group_count = rng.randint(2, min(4, n))
    cuts = sorted(rng.sample(range(1, n), group_count - 1))
    groups, start = [], 0
    for cut in cuts + [n]:
        groups.append(pids[start:cut])
        start = cut
    return [g for g in groups if g]


def _mp_scheduler(n: int, rng: random.Random):
    roll = rng.random()
    if roll < 0.5:
        return RandomScheduler(seed=rng.randrange(1 << 30))
    # Partition bias wrapped in fairness: delays stay finite, so any
    # termination violation reported is genuine.
    return FairDeliveryWrapper(
        GroupPartitionScheduler(_random_partition(n, rng), release_on_stall=True),
        patience=rng.randint(16, 128),
    )


def _sm_scheduler(n: int, rng: random.Random):
    roll = rng.random()
    if roll < 0.5:
        return RandomProcessScheduler(seed=rng.randrange(1 << 30))
    return FairProcessWrapper(
        StagedScheduler(_random_partition(n, rng), release_on_stall=True),
        patience=rng.randint(8, 64),
    )


def _crash_plan(n: int, t: int, rng: random.Random) -> Optional[CrashPlan]:
    count = rng.randint(0, t)
    if not count:
        return None
    points: Dict[int, CrashPoint] = {}
    for pid in rng.sample(range(n), count):
        if rng.random() < 0.5:
            points[pid] = CrashPoint(after_sends=rng.randint(0, 2 * n))
        else:
            points[pid] = CrashPoint(after_steps=rng.randint(0, n))
    return CrashPlan(points)


def _byzantine_behaviours(
    spec: ProtocolSpec, n: int, k: int, t: int, rng: random.Random
):
    count = rng.randint(0, t)
    victims = rng.sample(range(n), count)
    behaviours = {}
    for pid in victims:
        roll = rng.random()
        if spec.is_shared_memory:
            from repro.failures.byzantine_sm import (
                garbage_writer,
                mute_program,
                register_rewriter,
            )

            if roll < 0.34:
                behaviours[pid] = mute_program
            elif roll < 0.67:
                behaviours[pid] = garbage_writer(seed=rng.randrange(1 << 30))
            else:
                behaviours[pid] = register_rewriter(
                    [f"w{pid}a", f"w{pid}b", f"w{pid}c"]
                )
        else:
            if roll < 0.25:
                behaviours[pid] = MuteProcess()
            elif roll < 0.5:
                behaviours[pid] = GarbageProcess(seed=rng.randrange(1 << 30))
            else:
                faces = {f"f{i}": f"lie{pid}-{i}" for i in range(rng.randint(2, 4))}
                keys = list(faces)
                behaviours[pid] = MultiFaceProcess(
                    protocol_factory=lambda: spec.make(n, k, t),
                    face_inputs=faces,
                    face_of_peer=lambda peer, keys=keys: keys[peer % len(keys)],
                )
    return behaviours


def _inputs(n: int, rng: random.Random) -> List[str]:
    style = rng.random()
    if style < 0.3:
        return [f"v{i}" for i in range(n)]
    if style < 0.6:
        return ["v"] * n
    pool = [f"v{i}" for i in range(rng.randint(2, max(2, n // 2)))]
    return [rng.choice(pool) for _ in range(n)]


def _attempt_setup(spec: ProtocolSpec, n: int, k: int, t: int, attempt_seed: int):
    """The adversary drawn for one attempt, fully determined by the seed.

    Returns ``(inputs, scheduler, crash, byzantine)``.
    """
    rng = random.Random(attempt_seed)
    crash = None
    byzantine = None
    if spec.model.is_crash:
        crash = _crash_plan(n, t, rng)
    else:
        byzantine = _byzantine_behaviours(spec, n, k, t, rng) or None
    scheduler = (
        _sm_scheduler(n, rng)
        if spec.is_shared_memory
        else _mp_scheduler(n, rng)
    )
    return _inputs(n, rng), scheduler, crash, byzantine


def _run_attempt(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    attempt_seed: int,
    max_ticks: int,
    trace_mode: TraceMode,
    verify: bool = False,
    scheduler_wrapper=None,
) -> ExperimentReport:
    """One attempt; fully determined by ``attempt_seed``.

    May raise :class:`KernelLimitError` / :class:`SchedulerStall` (a
    termination violation).  ``scheduler_wrapper`` (if given) wraps the
    drawn scheduler -- the hook :func:`record_best_witness` uses to
    re-run the winning attempt under a recording scheduler.
    """
    inputs, scheduler, crash, byzantine = _attempt_setup(
        spec, n, k, t, attempt_seed
    )
    if scheduler_wrapper is not None:
        scheduler = scheduler_wrapper(scheduler)
    return run_spec(
        spec, n, k, t, inputs,
        scheduler=scheduler,
        crash_adversary=crash,
        byzantine_behaviours=byzantine,
        max_ticks=max_ticks,
        trace_mode=trace_mode,
        verify=verify,
    )


@dataclasses.dataclass(frozen=True)
class _AttemptSummary:
    """Lightweight, picklable score of one attempt.

    ``distinct`` is ``None`` for termination violations; ``detail``
    carries the violation description when the attempt was not ok.
    """

    distinct: Optional[int]
    ok: bool
    detail: Optional[str]


def _summarize_attempt(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    attempt_seed: int,
    max_ticks: int,
    verify: bool = False,
) -> _AttemptSummary:
    try:
        report = _run_attempt(
            spec, n, k, t, attempt_seed, max_ticks, TraceMode.COUNTERS,
            verify=verify,
        )
    except (KernelLimitError, SchedulerStall) as error:
        return _AttemptSummary(None, False, f"termination: {error}")
    distinct = len(report.outcome.correct_decision_values())
    if report.ok:
        return _AttemptSummary(distinct, True, None)
    details = [str(v) for v in report.violated().values()]
    details.extend(str(v) for v in report.oracle_violations or ())
    return _AttemptSummary(distinct, False, "; ".join(details))


def _attack_task(task) -> _AttemptSummary:
    """Module-level worker: one attack attempt, spec resolved by name."""
    spec_name, n, k, t, attempt_seed, max_ticks, verify = task
    return _summarize_attempt(
        get_spec(spec_name), n, k, t, attempt_seed, max_ticks, verify=verify
    )


def search_worst_run(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    attempts: int = 200,
    seed: int = 0,
    max_ticks: int = 200_000,
    stop_on_violation: bool = False,
    jobs: int = 1,
    verify: bool = False,
) -> AttackResult:
    """Randomized adversarial search for the worst run of ``spec``.

    Every attempt draws a scheduler (random or partition-shaped -- the
    shapes the impossibility proofs use), a failure pattern within the
    budget, and an input style, then runs the protocol and scores the
    run by distinct correct decisions and condition violations.

    Per-attempt seeds are all drawn from the master RNG up front, so
    attempts are independent; with ``jobs > 1`` (``0`` = all cores) they
    run in worker processes and the result is bit-identical to serial.
    Attempts execute with ``TraceMode.COUNTERS`` (no trace records); the
    winning attempt is re-run once in ``FULL`` mode so
    :attr:`AttackResult.best_report` still carries a complete trace for
    replay and forensics.

    With ``verify=True`` every attempt (and the final FULL re-run) also
    goes through the :mod:`repro.verify.oracles` stack, so oracle-only
    findings (e.g. a revoked decision invisible to the outcome checks)
    count as violations too.
    """
    master = random.Random(seed)
    attempt_seeds = [master.randrange(1 << 62) for _ in range(attempts)]
    result = AttackResult(
        spec_name=spec.name, n=n, k=k, t=t,
        attempts=0, best_distinct=0, best_report=None, violations_found=0,
    )

    registered = False
    if jobs != 1:
        try:
            registered = get_spec(spec.name) is spec
        except ValueError:
            registered = False
    if registered:
        tasks = [
            (spec.name, n, k, t, attempt_seed, max_ticks, verify)
            for attempt_seed in attempt_seeds
        ]
        summaries = parallel_map(_attack_task, tasks, jobs=jobs)
    else:
        # Lazy generator: with stop_on_violation the fold below breaks
        # early and later attempts are never executed.
        summaries = (
            _summarize_attempt(spec, n, k, t, attempt_seed, max_ticks, verify=verify)
            for attempt_seed in attempt_seeds
        )

    best_index: Optional[int] = None
    for index, summary in enumerate(summaries):
        result.attempts += 1
        if summary.distinct is None:  # termination violation
            result.violations_found += 1
            if result.first_violation is None:
                result.first_violation = summary.detail
            if stop_on_violation:
                break
            continue
        if summary.distinct > result.best_distinct:
            result.best_distinct = summary.distinct
            best_index = index
        if not summary.ok:
            result.violations_found += 1
            if result.first_violation is None:
                result.first_violation = summary.detail
            if best_index is None or summary.distinct >= result.best_distinct:
                best_index = index
            if stop_on_violation:
                break

    if best_index is not None:
        result.best_attempt_seed = attempt_seeds[best_index]
        result.best_report = _run_attempt(
            spec, n, k, t, attempt_seeds[best_index], max_ticks, TraceMode.FULL,
            verify=verify,
        )
    return result


def record_best_witness(
    result: AttackResult,
    max_ticks: int = 200_000,
    shrink: bool = True,
    note: str = "",
):
    """Turn the winning attack attempt into a replayable witness.

    Re-runs the attempt identified by :attr:`AttackResult.best_attempt_seed`
    under a recording scheduler, (optionally) shrinks the recorded
    schedule when the run violates a safety oracle, and packages the
    result as a :class:`repro.verify.witness.Witness`.

    Only crash-model attempts are serializable: Byzantine behaviour
    objects have no witness encoding (raises ``ValueError``), as do
    attempts the search never identified (``best_attempt_seed is None``).
    """
    # Function-level import: repro.verify pulls in harness modules.
    from repro.runtime.replay import (
        RecordingProcessScheduler,
        RecordingScheduler,
    )
    from repro.verify.shrink import kernel_factory_for_spec, shrink_schedule
    from repro.verify.witness import Witness, crash_points_of

    if result.best_attempt_seed is None:
        raise ValueError("attack found no attempt worth recording")
    spec = get_spec(result.spec_name)
    n, k, t = result.n, result.k, result.t
    inputs, _, crash, byzantine = _attempt_setup(
        spec, n, k, t, result.best_attempt_seed
    )
    if byzantine:
        raise ValueError(
            "Byzantine behaviours are not serializable into a witness"
        )
    wrapper = (
        RecordingProcessScheduler if spec.is_shared_memory else RecordingScheduler
    )
    recorder = []

    def wrap(scheduler):
        wrapped = wrapper(scheduler)
        recorder.append(wrapped)
        return wrapped

    try:
        _run_attempt(
            spec, n, k, t, result.best_attempt_seed, max_ticks,
            TraceMode.COUNTERS, scheduler_wrapper=wrap,
        )
    except (KernelLimitError, SchedulerStall):
        pass  # the partial schedule up to the stall is still a witness
    choices = recorder[0].recording.choices
    factory, kind = kernel_factory_for_spec(
        spec, n, k, t, inputs, crash_adversary=crash, max_ticks=max_ticks
    )
    if shrink:
        from repro.verify.shrink import run_choices
        from repro.verify.oracles import safety_violations

        problem = _witness_problem(spec, n, k, t)
        result_now, applied = run_choices(factory, choices, kind)
        if safety_violations(result_now, problem):
            shrunk = shrink_schedule(factory, choices, kind, problem=problem)
            choices = shrunk.minimized
        else:
            choices = applied
    return Witness(
        spec=spec.name,
        n=n,
        k=k,
        t=t,
        inputs=tuple(inputs),
        choices=tuple(choices),
        kind=kind,
        crash_points=crash_points_of(crash) if crash is not None else {},
        note=note or (
            f"attack seed {result.best_attempt_seed}: "
            f"{result.best_distinct} distinct decisions"
        ),
    )


def _witness_problem(spec: ProtocolSpec, n: int, k: int, t: int):
    from repro.core.problem import SCProblem
    from repro.core.validity import by_code

    return SCProblem(n=n, k=k, t=t, validity=by_code(spec.validity))
