"""Input assignment patterns for sweeps.

Which validity clauses fire depends on the *shape* of the input
assignment: SV2/RV2/WV2 only constrain (near-)unanimous runs, RV1/SV1
constrain every run.  Sweeps therefore draw inputs from a set of named
patterns rather than only uniformly at random.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence

from repro.core.values import Value

__all__ = ["INPUT_PATTERNS", "make_inputs"]

#: Names of the supported patterns.
INPUT_PATTERNS = (
    "distinct",        # all n inputs pairwise different
    "unanimous",       # every process starts with the same value
    "unanimous-correct",  # correct processes agree; faulty ones differ
    "two-valued",      # a roughly even split between two values
    "random",          # uniform over a small value pool
)


def make_inputs(
    pattern: str,
    n: int,
    rng: random.Random,
    faulty: Iterable[int] = (),
) -> List[Value]:
    """Build an input vector of length ``n`` following ``pattern``.

    ``faulty`` is used by ``unanimous-correct`` to know which processes
    may diverge (the paper's SV2 premise constrains only correct
    processes' inputs).
    """
    if pattern == "distinct":
        return [f"v{pid}" for pid in range(n)]
    if pattern == "unanimous":
        value = f"v{rng.randrange(100)}"
        return [value] * n
    if pattern == "unanimous-correct":
        value = f"v{rng.randrange(100)}"
        inputs: List[Value] = [value] * n
        for pid in faulty:
            inputs[pid] = f"fake{pid}"
        return inputs
    if pattern == "two-valued":
        a, b = "alpha", "beta"
        return [a if rng.random() < 0.5 else b for _ in range(n)]
    if pattern == "random":
        pool = [f"v{i}" for i in range(max(2, n // 2))]
        return [rng.choice(pool) for _ in range(n)]
    raise ValueError(f"unknown input pattern: {pattern!r}")
