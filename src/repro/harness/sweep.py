"""Monte-Carlo sweeps: many randomized executions of one protocol.

A sweep exercises one registered protocol at one ``(n, k, t)`` point
across randomized schedules, failure patterns, and input shapes, and
counts condition violations.  Inside a protocol's solvable region the
expected violation count is zero; the figure benchmarks and the test
suite both assert exactly that.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.failures.byzantine import (
    GarbageProcess,
    MultiFaceProcess,
    MuteProcess,
    SilentDecider,
)
from repro.failures.byzantine_sm import (
    garbage_writer,
    mute_program,
    register_rewriter,
    silent_decider_program,
    with_fake_input,
)
from repro.failures.crash import RandomCrashes
from repro.harness.inputs import INPUT_PATTERNS, make_inputs
from repro.harness.runner import ExperimentReport, run_spec
from repro.net.schedulers import RandomScheduler
from repro.protocols.base import ProtocolSpec
from repro.runtime.kernel import KernelLimitError
from repro.shm.schedulers import RandomProcessScheduler

__all__ = ["SweepConfig", "SweepStats", "Violation", "sweep_spec"]


@dataclasses.dataclass(frozen=True)
class SweepConfig:
    """Parameters of one sweep."""

    runs: int = 50
    seed: int = 0
    input_patterns: Sequence[str] = INPUT_PATTERNS
    max_ticks: int = 300_000


@dataclasses.dataclass(frozen=True)
class Violation:
    """One run that broke a condition (or failed to terminate)."""

    run_index: int
    pattern: str
    conditions: Tuple[str, ...]
    detail: str


@dataclasses.dataclass
class SweepStats:
    """Aggregate result of a sweep."""

    spec_name: str
    n: int
    k: int
    t: int
    runs: int = 0
    violations: List[Violation] = dataclasses.field(default_factory=list)
    decisions_histogram: Dict[int, int] = dataclasses.field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def max_distinct_decisions(self) -> int:
        return max(self.decisions_histogram, default=0)

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.violations)} violations"
        return (
            f"{self.spec_name} n={self.n} k={self.k} t={self.t}: "
            f"{self.runs} runs, {status}, "
            f"max distinct decisions {self.max_distinct_decisions}"
        )


def _mp_byzantine_pool(spec: ProtocolSpec, n: int, k: int, t: int, rng: random.Random):
    """Byzantine behaviour builders for message-passing sweeps."""

    def mute(pid: int):
        return MuteProcess()

    def garbage(pid: int):
        return GarbageProcess(seed=rng.randrange(1 << 30))

    def silent(pid: int):
        return SilentDecider()

    def faces(pid: int):
        split = rng.randrange(1, n)
        return MultiFaceProcess(
            protocol_factory=lambda: spec.make(n, k, t),
            face_inputs={"a": f"lieA{pid}", "b": f"lieB{pid}"},
            face_of_peer=lambda peer: "a" if peer < split else "b",
        )

    return (mute, garbage, silent, faces)


def _sm_byzantine_pool(spec: ProtocolSpec, n: int, k: int, t: int, rng: random.Random):
    """Byzantine behaviour builders for shared-memory sweeps."""
    base_program = spec.make(n, k, t)

    def mute(pid: int):
        return mute_program

    def garbage(pid: int):
        return garbage_writer(seed=rng.randrange(1 << 30))

    def rewriter(pid: int):
        return register_rewriter([f"x{pid}", f"y{pid}", ("junk",)])

    def liar(pid: int):
        return with_fake_input(base_program, f"lie{pid}")

    def silent(pid: int):
        return silent_decider_program

    return (mute, garbage, rewriter, liar, silent)


def sweep_spec(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
) -> SweepStats:
    """Run randomized executions of ``spec`` at ``(n, k, t)``.

    Crash-model specs face :class:`RandomCrashes`; Byzantine-model specs
    face up to ``t`` processes drawn from a pool of Byzantine behaviours
    (mute, garbage, history rewriting, input lying, two-faced protocol
    execution).  Schedulers are seeded-random.  Returns aggregate stats;
    no exception is raised on violations (callers assert on
    :attr:`SweepStats.clean`).
    """
    config = config or SweepConfig()
    stats = SweepStats(spec_name=spec.name, n=n, k=k, t=t)
    for index in range(config.runs):
        rng = random.Random(f"{config.seed}:{index}")
        pattern = config.input_patterns[index % len(config.input_patterns)]
        crash_adversary = None
        byzantine = {}
        if spec.model.is_crash:
            crash_adversary = RandomCrashes(
                n, t, seed=rng.randrange(1 << 30)
            )
            faulty_hint = crash_adversary.potentially_faulty()
        else:
            count = rng.randint(0, t)
            victims = rng.sample(range(n), count)
            pool = (
                _sm_byzantine_pool(spec, n, k, t, rng)
                if spec.is_shared_memory
                else _mp_byzantine_pool(spec, n, k, t, rng)
            )
            for pid in victims:
                byzantine[pid] = rng.choice(pool)(pid)
            faulty_hint = frozenset(victims)
        inputs = make_inputs(pattern, n, rng, faulty=faulty_hint)
        scheduler = (
            RandomProcessScheduler(seed=rng.randrange(1 << 30))
            if spec.is_shared_memory
            else RandomScheduler(seed=rng.randrange(1 << 30))
        )
        try:
            report: ExperimentReport = run_spec(
                spec,
                n,
                k,
                t,
                inputs,
                scheduler=scheduler,
                crash_adversary=crash_adversary,
                byzantine_behaviours=byzantine or None,
                max_ticks=config.max_ticks,
            )
        except KernelLimitError as error:
            stats.violations.append(
                Violation(index, pattern, ("termination",), str(error))
            )
            stats.runs += 1
            continue
        stats.runs += 1
        distinct = len(report.outcome.correct_decision_values())
        stats.decisions_histogram[distinct] = (
            stats.decisions_histogram.get(distinct, 0) + 1
        )
        if not report.ok:
            violated = report.violated()
            stats.violations.append(
                Violation(
                    index,
                    pattern,
                    tuple(violated),
                    "; ".join(str(v) for v in violated.values()),
                )
            )
    return stats
