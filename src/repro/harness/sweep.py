"""Monte-Carlo sweeps: many randomized executions of one protocol.

A sweep exercises one registered protocol at one ``(n, k, t)`` point
across randomized schedules, failure patterns, and input shapes, and
counts condition violations.  Inside a protocol's solvable region the
expected violation count is zero; the figure benchmarks and the test
suite both assert exactly that.

Every run derives its randomness from ``(config.seed, run_index)``
alone, so runs are independent and order-free: :func:`sweep_spec` can
shard them across worker processes (``jobs > 1``) and still aggregate
results bit-identical to the serial path.  Runs default to
``TraceMode.COUNTERS`` -- the sweep only reads outcomes and aggregate
counters, so no :class:`~repro.runtime.traces.TraceRecord` is allocated
on this path.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.failures.byzantine import (
    GarbageProcess,
    MultiFaceProcess,
    MuteProcess,
    SilentDecider,
)
from repro.failures.byzantine_sm import (
    garbage_writer,
    mute_program,
    register_rewriter,
    silent_decider_program,
    with_fake_input,
)
from repro.failures.crash import RandomCrashes
from repro.harness.inputs import INPUT_PATTERNS, make_inputs
from repro.harness.parallel import parallel_map, plan_execution
from repro.harness.runner import ExperimentReport, run_spec
from repro.net.schedulers import RandomScheduler
from repro.protocols.base import ProtocolSpec, get_spec
from repro.runtime.kernel import KernelLimitError
from repro.runtime.traces import TraceMode
from repro.shm.schedulers import RandomProcessScheduler

__all__ = ["SweepConfig", "SweepStats", "Violation", "sweep_spec"]


@dataclasses.dataclass(frozen=True)
class SweepConfig:
    """Parameters of one sweep."""

    runs: int = 50
    seed: int = 0
    input_patterns: Sequence[str] = INPUT_PATTERNS
    max_ticks: int = 300_000
    trace_mode: TraceMode = TraceMode.COUNTERS
    #: also run the :mod:`repro.verify.oracles` stack over every run;
    #: oracle findings are reported as :class:`Violation` records.
    verify: bool = False


@dataclasses.dataclass(frozen=True)
class Violation:
    """One run that broke a condition (or failed to terminate)."""

    run_index: int
    pattern: str
    conditions: Tuple[str, ...]
    detail: str


@dataclasses.dataclass
class SweepStats:
    """Aggregate result of a sweep."""

    spec_name: str
    n: int
    k: int
    t: int
    runs: int = 0
    violations: List[Violation] = dataclasses.field(default_factory=list)
    decisions_histogram: Dict[int, int] = dataclasses.field(default_factory=dict)
    #: which engine produced the stats ("scalar" or "batch")
    engine: str = "scalar"
    #: how the runs were executed (serial/parallel/vectorized + why)
    execution: str = ""
    #: machine-readable code for why a batch/auto request fell back to
    #: the scalar engine (one of
    #: :data:`repro.batch.FALLBACK_REASON_CODES`); empty when no
    #: fallback happened.
    fallback_reason: str = ""

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def max_distinct_decisions(self) -> int:
        return max(self.decisions_histogram, default=0)

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.violations)} violations"
        return (
            f"{self.spec_name} n={self.n} k={self.k} t={self.t}: "
            f"{self.runs} runs, {status}, "
            f"max distinct decisions {self.max_distinct_decisions}"
        )


def _mp_byzantine_pool(spec: ProtocolSpec, n: int, k: int, t: int, rng: random.Random):
    """Byzantine behaviour builders for message-passing sweeps."""

    def mute(pid: int):
        return MuteProcess()

    def garbage(pid: int):
        return GarbageProcess(seed=rng.randrange(1 << 30))

    def silent(pid: int):
        return SilentDecider()

    def faces(pid: int):
        split = rng.randrange(1, n)
        return MultiFaceProcess(
            protocol_factory=lambda: spec.make(n, k, t),
            face_inputs={"a": f"lieA{pid}", "b": f"lieB{pid}"},
            face_of_peer=lambda peer: "a" if peer < split else "b",
        )

    return (mute, garbage, silent, faces)


def _sm_byzantine_pool(spec: ProtocolSpec, n: int, k: int, t: int, rng: random.Random):
    """Byzantine behaviour builders for shared-memory sweeps."""
    base_program = spec.make(n, k, t)

    def mute(pid: int):
        return mute_program

    def garbage(pid: int):
        return garbage_writer(seed=rng.randrange(1 << 30))

    def rewriter(pid: int):
        return register_rewriter([f"x{pid}", f"y{pid}", ("junk",)])

    def liar(pid: int):
        return with_fake_input(base_program, f"lie{pid}")

    def silent(pid: int):
        return silent_decider_program

    return (mute, garbage, rewriter, liar, silent)


def _sweep_run(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: SweepConfig,
    index: int,
) -> Tuple[Optional[Violation], Optional[int]]:
    """Execute run ``index`` of a sweep.

    Returns ``(violation, distinct)``: the violation (if any) and the
    number of distinct correct decisions (``None`` when the run hit the
    tick budget).  All randomness is derived from ``(config.seed,
    index)``, so the result is independent of which process runs it.
    """
    rng = random.Random(f"{config.seed}:{index}")
    pattern = config.input_patterns[index % len(config.input_patterns)]
    crash_adversary = None
    byzantine = {}
    if spec.model.is_crash:
        crash_adversary = RandomCrashes(
            n, t, seed=rng.randrange(1 << 30)
        )
        faulty_hint = crash_adversary.potentially_faulty()
    else:
        count = rng.randint(0, t)
        victims = rng.sample(range(n), count)
        pool = (
            _sm_byzantine_pool(spec, n, k, t, rng)
            if spec.is_shared_memory
            else _mp_byzantine_pool(spec, n, k, t, rng)
        )
        for pid in victims:
            byzantine[pid] = rng.choice(pool)(pid)
        faulty_hint = frozenset(victims)
    inputs = make_inputs(pattern, n, rng, faulty=faulty_hint)
    scheduler = (
        RandomProcessScheduler(seed=rng.randrange(1 << 30))
        if spec.is_shared_memory
        else RandomScheduler(seed=rng.randrange(1 << 30))
    )
    try:
        report: ExperimentReport = run_spec(
            spec,
            n,
            k,
            t,
            inputs,
            scheduler=scheduler,
            crash_adversary=crash_adversary,
            byzantine_behaviours=byzantine or None,
            max_ticks=config.max_ticks,
            trace_mode=config.trace_mode,
            verify=config.verify,
        )
    except KernelLimitError as error:
        return Violation(index, pattern, ("termination",), str(error)), None
    distinct = len(report.outcome.correct_decision_values())
    if not report.ok:
        violated = report.violated()
        conditions = list(violated)
        details = [str(v) for v in violated.values()]
        for finding in report.oracle_violations or ():
            if finding.oracle not in conditions:
                conditions.append(finding.oracle)
            details.append(str(finding))
        violation = Violation(
            index,
            pattern,
            tuple(conditions),
            "; ".join(details),
        )
        return violation, distinct
    return None, distinct


def _sweep_task(task) -> Tuple[Optional[Violation], Optional[int]]:
    """Module-level worker: one sweep run, spec resolved by name."""
    spec_name, n, k, t, config, index = task
    return _sweep_run(get_spec(spec_name), n, k, t, config, index)


def _estimate_run_seconds(n: int) -> float:
    """Rough per-run cost of one scalar Monte-Carlo execution.

    Fitted against BENCH_sweep_throughput.json: a run schedules O(n^2)
    deliveries (one broadcast per process) at roughly 4.5 us per event
    on top of a fixed setup cost.  Only used to decide whether a batch
    of runs is worth a process pool, so a factor-of-two error is fine.
    """
    return 2e-4 + 4.5e-6 * n * n


def sweep_spec(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
    jobs: int = 1,
    engine: str = "scalar",
) -> SweepStats:
    """Run randomized executions of ``spec`` at ``(n, k, t)``.

    Crash-model specs face :class:`RandomCrashes`; Byzantine-model specs
    face up to ``t`` processes drawn from a pool of Byzantine behaviours
    (mute, garbage, history rewriting, input lying, two-faced protocol
    execution).  Schedulers are seeded-random.  Returns aggregate stats;
    no exception is raised on violations (callers assert on
    :attr:`SweepStats.clean`).

    ``engine`` selects the execution engine: ``"scalar"`` (default) runs
    the discrete-event kernel per run; ``"batch"`` and ``"auto"`` use
    the vectorized :mod:`repro.batch` engine where it models the sweep
    (message-passing crash model, threshold-structured protocols,
    counters-only tracing) and fall back to scalar otherwise, recording
    the fallback reason in :attr:`SweepStats.execution`.  The batch
    engine samples its own (equally distributed) adversary, so batch
    and scalar sweeps agree in aggregate but not run-by-run;
    :func:`repro.batch.batch_vs_replay` checks exact per-run agreement.

    With ``jobs > 1`` (``0`` = all cores) scalar runs are sharded across
    worker processes; results are aggregated in run-index order and
    therefore bit-identical to the serial path, so the planner falls
    back to serial whenever the batch is too cheap to amortize pool
    spin-up.  Parallel execution requires the spec to be resolvable by
    name in the registry (ad-hoc specs fall back to serial).
    """
    config = config or SweepConfig()
    if engine not in ("scalar", "batch", "auto"):
        raise ValueError(f"unknown engine {engine!r}")
    fallback_note = ""
    fallback_code = ""
    if engine != "scalar":
        # Function-level import: repro.batch needs numpy and imports
        # this module back for SweepStats.
        from repro.batch import batch_sweep, sweep_unsupported_reason

        reason = sweep_unsupported_reason(spec, n, k, t, config)
        if reason is None:
            return batch_sweep(spec, n, k, t, config)
        fallback_note = f"batch engine not applicable ({reason}); "
        fallback_code = reason.code
    stats = SweepStats(
        spec_name=spec.name, n=n, k=k, t=t,
        fallback_reason=fallback_code,
    )

    plan = plan_execution(jobs, config.runs, _estimate_run_seconds(n))
    registered = False
    if plan.parallel:
        try:
            registered = get_spec(spec.name) is spec
        except ValueError:
            registered = False
    if plan.parallel and registered:
        tasks = [
            (spec.name, n, k, t, config, index) for index in range(config.runs)
        ]
        results = parallel_map(
            _sweep_task, tasks, jobs=plan.jobs, chunksize=plan.chunksize
        )
        stats.execution = fallback_note + plan.describe()
    else:
        results = [
            _sweep_run(spec, n, k, t, config, index)
            for index in range(config.runs)
        ]
        if plan.parallel:  # requested, but the spec is not registered
            stats.execution = (
                fallback_note + "serial: spec not resolvable by name in the "
                "registry"
            )
        else:
            stats.execution = fallback_note + plan.describe()

    for violation, distinct in results:
        stats.runs += 1
        if distinct is None:  # hit the tick budget
            stats.violations.append(violation)
            continue
        stats.decisions_histogram[distinct] = (
            stats.decisions_histogram.get(distinct, 0) + 1
        )
        if violation is not None:
            stats.violations.append(violation)
    return stats
