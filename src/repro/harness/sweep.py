"""Monte-Carlo sweeps: many randomized executions of one protocol.

A sweep exercises one registered protocol at one ``(n, k, t)`` point
across randomized schedules, failure patterns, and input shapes, and
counts condition violations.  Inside a protocol's solvable region the
expected violation count is zero; the figure benchmarks and the test
suite both assert exactly that.

Every run derives its randomness from ``(config.seed, run_index)``
alone, so runs are independent and order-free: :func:`sweep_spec` can
shard them across worker processes (``jobs > 1``) and still aggregate
results bit-identical to the serial path.  Runs default to
``TraceMode.COUNTERS`` -- the sweep only reads outcomes and aggregate
counters, so no :class:`~repro.runtime.traces.TraceRecord` is allocated
on this path.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.failures.byzantine import (
    GarbageProcess,
    MultiFaceProcess,
    MuteProcess,
    SilentDecider,
)
from repro.failures.byzantine_sm import (
    garbage_writer,
    mute_program,
    register_rewriter,
    silent_decider_program,
    with_fake_input,
)
from repro.failures.crash import RandomCrashes
from repro.harness.inputs import INPUT_PATTERNS, make_inputs
from repro.harness.parallel import parallel_map
from repro.harness.runner import ExperimentReport, run_spec
from repro.net.schedulers import RandomScheduler
from repro.protocols.base import ProtocolSpec, get_spec
from repro.runtime.kernel import KernelLimitError
from repro.runtime.traces import TraceMode
from repro.shm.schedulers import RandomProcessScheduler

__all__ = ["SweepConfig", "SweepStats", "Violation", "sweep_spec"]


@dataclasses.dataclass(frozen=True)
class SweepConfig:
    """Parameters of one sweep."""

    runs: int = 50
    seed: int = 0
    input_patterns: Sequence[str] = INPUT_PATTERNS
    max_ticks: int = 300_000
    trace_mode: TraceMode = TraceMode.COUNTERS
    #: also run the :mod:`repro.verify.oracles` stack over every run;
    #: oracle findings are reported as :class:`Violation` records.
    verify: bool = False


@dataclasses.dataclass(frozen=True)
class Violation:
    """One run that broke a condition (or failed to terminate)."""

    run_index: int
    pattern: str
    conditions: Tuple[str, ...]
    detail: str


@dataclasses.dataclass
class SweepStats:
    """Aggregate result of a sweep."""

    spec_name: str
    n: int
    k: int
    t: int
    runs: int = 0
    violations: List[Violation] = dataclasses.field(default_factory=list)
    decisions_histogram: Dict[int, int] = dataclasses.field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def max_distinct_decisions(self) -> int:
        return max(self.decisions_histogram, default=0)

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.violations)} violations"
        return (
            f"{self.spec_name} n={self.n} k={self.k} t={self.t}: "
            f"{self.runs} runs, {status}, "
            f"max distinct decisions {self.max_distinct_decisions}"
        )


def _mp_byzantine_pool(spec: ProtocolSpec, n: int, k: int, t: int, rng: random.Random):
    """Byzantine behaviour builders for message-passing sweeps."""

    def mute(pid: int):
        return MuteProcess()

    def garbage(pid: int):
        return GarbageProcess(seed=rng.randrange(1 << 30))

    def silent(pid: int):
        return SilentDecider()

    def faces(pid: int):
        split = rng.randrange(1, n)
        return MultiFaceProcess(
            protocol_factory=lambda: spec.make(n, k, t),
            face_inputs={"a": f"lieA{pid}", "b": f"lieB{pid}"},
            face_of_peer=lambda peer: "a" if peer < split else "b",
        )

    return (mute, garbage, silent, faces)


def _sm_byzantine_pool(spec: ProtocolSpec, n: int, k: int, t: int, rng: random.Random):
    """Byzantine behaviour builders for shared-memory sweeps."""
    base_program = spec.make(n, k, t)

    def mute(pid: int):
        return mute_program

    def garbage(pid: int):
        return garbage_writer(seed=rng.randrange(1 << 30))

    def rewriter(pid: int):
        return register_rewriter([f"x{pid}", f"y{pid}", ("junk",)])

    def liar(pid: int):
        return with_fake_input(base_program, f"lie{pid}")

    def silent(pid: int):
        return silent_decider_program

    return (mute, garbage, rewriter, liar, silent)


def _sweep_run(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: SweepConfig,
    index: int,
) -> Tuple[Optional[Violation], Optional[int]]:
    """Execute run ``index`` of a sweep.

    Returns ``(violation, distinct)``: the violation (if any) and the
    number of distinct correct decisions (``None`` when the run hit the
    tick budget).  All randomness is derived from ``(config.seed,
    index)``, so the result is independent of which process runs it.
    """
    rng = random.Random(f"{config.seed}:{index}")
    pattern = config.input_patterns[index % len(config.input_patterns)]
    crash_adversary = None
    byzantine = {}
    if spec.model.is_crash:
        crash_adversary = RandomCrashes(
            n, t, seed=rng.randrange(1 << 30)
        )
        faulty_hint = crash_adversary.potentially_faulty()
    else:
        count = rng.randint(0, t)
        victims = rng.sample(range(n), count)
        pool = (
            _sm_byzantine_pool(spec, n, k, t, rng)
            if spec.is_shared_memory
            else _mp_byzantine_pool(spec, n, k, t, rng)
        )
        for pid in victims:
            byzantine[pid] = rng.choice(pool)(pid)
        faulty_hint = frozenset(victims)
    inputs = make_inputs(pattern, n, rng, faulty=faulty_hint)
    scheduler = (
        RandomProcessScheduler(seed=rng.randrange(1 << 30))
        if spec.is_shared_memory
        else RandomScheduler(seed=rng.randrange(1 << 30))
    )
    try:
        report: ExperimentReport = run_spec(
            spec,
            n,
            k,
            t,
            inputs,
            scheduler=scheduler,
            crash_adversary=crash_adversary,
            byzantine_behaviours=byzantine or None,
            max_ticks=config.max_ticks,
            trace_mode=config.trace_mode,
            verify=config.verify,
        )
    except KernelLimitError as error:
        return Violation(index, pattern, ("termination",), str(error)), None
    distinct = len(report.outcome.correct_decision_values())
    if not report.ok:
        violated = report.violated()
        conditions = list(violated)
        details = [str(v) for v in violated.values()]
        for finding in report.oracle_violations or ():
            if finding.oracle not in conditions:
                conditions.append(finding.oracle)
            details.append(str(finding))
        violation = Violation(
            index,
            pattern,
            tuple(conditions),
            "; ".join(details),
        )
        return violation, distinct
    return None, distinct


def _sweep_task(task) -> Tuple[Optional[Violation], Optional[int]]:
    """Module-level worker: one sweep run, spec resolved by name."""
    spec_name, n, k, t, config, index = task
    return _sweep_run(get_spec(spec_name), n, k, t, config, index)


def sweep_spec(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
    jobs: int = 1,
) -> SweepStats:
    """Run randomized executions of ``spec`` at ``(n, k, t)``.

    Crash-model specs face :class:`RandomCrashes`; Byzantine-model specs
    face up to ``t`` processes drawn from a pool of Byzantine behaviours
    (mute, garbage, history rewriting, input lying, two-faced protocol
    execution).  Schedulers are seeded-random.  Returns aggregate stats;
    no exception is raised on violations (callers assert on
    :attr:`SweepStats.clean`).

    With ``jobs > 1`` (``0`` = all cores) runs are sharded across worker
    processes; results are aggregated in run-index order and therefore
    bit-identical to the serial path.  Parallel execution requires the
    spec to be resolvable by name in the registry (ad-hoc specs fall
    back to serial).
    """
    config = config or SweepConfig()
    stats = SweepStats(spec_name=spec.name, n=n, k=k, t=t)

    registered = False
    if jobs != 1:
        try:
            registered = get_spec(spec.name) is spec
        except ValueError:
            registered = False
    if registered:
        tasks = [
            (spec.name, n, k, t, config, index) for index in range(config.runs)
        ]
        results = parallel_map(_sweep_task, tasks, jobs=jobs)
    else:
        results = [
            _sweep_run(spec, n, k, t, config, index)
            for index in range(config.runs)
        ]

    for violation, distinct in results:
        stats.runs += 1
        if distinct is None:  # hit the tick budget
            stats.violations.append(violation)
            continue
        stats.decisions_histogram[distinct] = (
            stats.decisions_histogram.get(distinct, 0) + 1
        )
        if violation is not None:
            stats.violations.append(violation)
    return stats
