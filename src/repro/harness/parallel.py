"""Parallel fan-out engine for the Monte-Carlo harnesses.

Sweeps, campaigns, adversarial searches, and the figure benchmarks are
all embarrassingly parallel: every run derives its randomness from a
per-task seed, never from shared mutable state.  This module provides
the shared machinery to shard those task lists across worker processes
while keeping results **bit-identical** to serial execution:

* :func:`parallel_map` -- order-preserving ``map`` over a
  :class:`concurrent.futures.ProcessPoolExecutor` (serial when
  ``jobs <= 1``), so aggregation code is independent of where tasks ran;
* :func:`derive_seed` -- a stable hash-based seed mixer (SHA-256, not
  Python's randomized ``hash``) turning ``(base_seed, spec, n, k, t,
  run_index)``-style tuples into per-task seeds that are reproducible
  across processes, platforms, and interpreter restarts;
* :func:`resolve_jobs` -- maps a user-facing ``--jobs`` value to a
  worker count (``0``/``None`` means "all cores").

Worker functions passed to :func:`parallel_map` must be module-level
(picklable), and task payloads should reference protocols by registry
name rather than by :class:`~repro.protocols.base.ProtocolSpec` object
(spec factories are frequently closures, which do not pickle).
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

__all__ = [
    "ExecutionPlan",
    "available_jobs",
    "derive_seed",
    "parallel_map",
    "plan_execution",
    "resolve_jobs",
    "supervised_pool",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Estimated total work (seconds) below which a process pool loses to
#: plain serial execution.  Pool spin-up (worker fork/spawn + registry
#: warm-up + IPC) costs a few hundred milliseconds; batches cheaper than
#: this ran at 0.86-0.89x serial speed in BENCH_sweep_throughput.json.
POOL_AMORTIZATION_SECONDS = 0.75


def available_jobs() -> int:
    """Number of workers a ``--jobs 0`` ("auto") request resolves to."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a user-facing jobs request to a positive worker count.

    ``None`` or ``0`` mean "one worker per core"; negative values are
    rejected.
    """
    if jobs is None or jobs == 0:
        return available_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def derive_seed(*parts: object) -> int:
    """Derive a stable 62-bit seed from arbitrary repr-able parts.

    Unlike ``hash()``, the derivation does not depend on interpreter
    hash randomization or process identity, so serial and parallel runs
    (and reruns on other machines) agree on every per-task seed.
    """
    blob = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 2


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """How a task batch will run, and why that mode was chosen."""

    mode: str  # "serial" or "parallel"
    jobs: int  # worker count (1 for serial)
    chunksize: int
    reason: str

    @property
    def parallel(self) -> bool:
        return self.mode == "parallel"

    def describe(self) -> str:
        if self.parallel:
            return (
                f"parallel x{self.jobs} (chunksize {self.chunksize}): "
                f"{self.reason}"
            )
        return f"serial: {self.reason}"


def plan_execution(
    jobs: Optional[int],
    task_count: int,
    est_task_seconds: Optional[float] = None,
) -> ExecutionPlan:
    """Decide serial vs pool execution for ``task_count`` uniform tasks.

    A pool only pays off when the batch is big enough to amortize its
    spin-up cost: with a per-task cost estimate, batches whose estimated
    total is under :data:`POOL_AMORTIZATION_SECONDS` run serial even
    when ``jobs > 1`` was requested (the parallel result is
    bit-identical, so the fallback is safe).  Without an estimate the
    request is honoured as-is.
    """
    workers = resolve_jobs(jobs)
    if workers <= 1:
        return ExecutionPlan("serial", 1, 1, "jobs <= 1 requested")
    if task_count <= 1:
        return ExecutionPlan("serial", 1, 1, f"{task_count} task(s)")
    if est_task_seconds is not None:
        est_total = est_task_seconds * task_count
        if est_total < POOL_AMORTIZATION_SECONDS:
            return ExecutionPlan(
                "serial",
                1,
                1,
                f"estimated {est_total:.2f}s of work does not amortize "
                f"pool spin-up (threshold {POOL_AMORTIZATION_SECONDS}s)",
            )
    workers = min(workers, task_count)
    chunksize = max(1, task_count // (workers * 4))
    return ExecutionPlan(
        "parallel", workers, chunksize, f"{task_count} tasks across "
        f"{workers} workers"
    )


def _run_serial(fn: Callable[[_T], _R], tasks: Sequence[_T]) -> List[_R]:
    return [fn(task) for task in tasks]


def _warm_registry() -> None:
    """Worker initializer: populate the protocol registry.

    Needed only under the ``spawn`` start method (fresh interpreter);
    under ``fork`` the registry is inherited.  Importing is idempotent.
    """
    import repro.protocols  # noqa: F401  (imported for registration)


@contextlib.contextmanager
def supervised_pool(jobs: int) -> Iterator[ProcessPoolExecutor]:
    """A :class:`ProcessPoolExecutor` with guaranteed clean teardown.

    The executor's own context manager blocks in ``shutdown(wait=True)``
    on exit, which on KeyboardInterrupt or a worker death (pre-3.9
    semantics, and still the case for in-flight ``map`` chunks) leaves
    live children and queued work behind.  This wrapper makes the error
    path explicit: pending work is **cancelled**, surviving workers are
    **reaped** (terminated, then killed if necessary, then joined), and
    the interruption is **reported** by annotating the propagating
    exception -- so a Ctrl-C'd sweep neither orphans processes nor dies
    silently mid-aggregation.
    """
    executor = ProcessPoolExecutor(
        max_workers=jobs, initializer=_warm_registry
    )
    try:
        yield executor
    except BaseException as error:
        # Snapshot the children first: shutdown() clears ``_processes``.
        processes = list((getattr(executor, "_processes", None) or {}).values())
        # Cancel: drop everything not yet running.
        executor.shutdown(wait=False, cancel_futures=True)
        # Reap: no orphaned children, whatever state the pool is in.
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=1)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        # Report: annotate rather than replace, so callers still see
        # the original exception type (KeyboardInterrupt included).
        if hasattr(error, "add_note"):
            error.add_note(
                f"supervised_pool: tore down {len(processes)} worker "
                f"process(es) after {type(error).__name__}; pending "
                f"tasks cancelled"
            )
        raise
    else:
        executor.shutdown(wait=True)


def parallel_map(
    fn: Callable[[_T], _R],
    tasks: Iterable[_T],
    jobs: int = 1,
    chunksize: Optional[int] = None,
) -> List[_R]:
    """Apply ``fn`` to every task, preserving input order in the result.

    With ``jobs <= 1`` (or at most one task) this is a plain list
    comprehension -- the serial reference path.  Otherwise tasks are
    dispatched to a process pool; because results come back in input
    order, any deterministic aggregation over the returned list is
    bit-identical to the serial path.  On interruption or worker death
    the pool is torn down cleanly (see :func:`supervised_pool`).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return _run_serial(fn, tasks)
    jobs = min(jobs, len(tasks))
    if chunksize is None:
        # A few chunks per worker amortizes IPC without starving the pool.
        chunksize = max(1, len(tasks) // (jobs * 4))
    with supervised_pool(jobs) as executor:
        return list(executor.map(fn, tasks, chunksize=chunksize))
