"""Process-permutation symmetry reduction for exhaustive exploration.

All protocols in this reproduction treat process identities
symmetrically up to three observable distinctions: the *input value* a
process starts with, the *crash point* a static adversary assigns to
it, and -- for PROTOCOL D -- its *role* (broadcaster ``pid <= t`` or
not).  Renaming processes by any permutation that preserves those three
classifications maps every reachable global state onto another
reachable global state with an isomorphic future: the renaming is an
automorphism of the exploration's transition system.

The explorer exploits that by canonicalizing every structural
fingerprint *modulo the symmetry group* before it touches the visited
store: a state is recognized as already-explored when any renaming of
it was.  Representative counterexample paths are unaffected -- pruning
only cuts branches whose orbit was covered -- so witnesses still replay
on fresh kernels.

Soundness is gated explicitly, never assumed:

* Renaming a state requires knowing where process ids live inside
  protocol state and message payloads.  Every participating protocol
  *declares* that shape (:class:`MPSymmetry` / :class:`SMSymmetry`);
  undeclared protocols, heterogeneous process lists, and unknown state
  fields disable symmetry with a recorded reason.
* Only adversaries that assign crash behaviour *per process, statically*
  compose: ``None`` / :class:`~repro.failures.adversary.NoCrashes` (no
  constraint) and exact :class:`~repro.failures.crash.CrashPlan`
  (permutations must preserve each process's crash point).  Anything
  else -- dynamic adversaries especially -- breaks symmetry and
  disables the reduction.
* Shared-memory programs observe register *owners* in program order, so
  an arbitrary renaming of a partial scan is not a reachable log shape.
  Declared SM programs state their scan discipline
  (``write_then_scan`` / ``decide_only``) and each candidate
  permutation is checked per state: it must stabilize every in-progress
  scan prefix (which is always ``{0 .. m-1}`` for ascending scans).

Canonical fingerprints are computed as the ``repr``-minimum over the
group of the fully renamed fingerprint; ``repr`` ordering is total and
deterministic across processes, which keeps parallel frontier merges
bit-identical.
"""

from __future__ import annotations

import dataclasses
import itertools
import operator
from typing import (
    Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple,
)

from repro.failures.adversary import CrashAdversary, NoCrashes
from repro.failures.crash import CrashPlan
from repro.runtime.events import Delivery

__all__ = [
    "MPSymmetry",
    "MPSymmetryContext",
    "SMSymmetry",
    "SMSymmetryContext",
    "mp_symmetry_context",
    "register_mp_symmetry",
    "register_sm_symmetry",
    "sm_symmetry_context",
    "symmetry_group",
]

#: A process renaming: ``perm[old_pid] == new_pid``.
Perm = Tuple[int, ...]


# ---------------------------------------------------------------------------
# declarations


#: How one state field of a message-passing process mentions pids.
#:
#: * ``"plain"``        -- pid-free plain data, renamed as-is.
#: * ``"pid_keyed"``    -- ``Dict[pid, pid-free value]``.
#: * ``"pid_set"``      -- ``Set[pid]``.
#: * ``"origin_votes"`` -- ``Dict[(origin_pid, pid-free msg), Set[pid]]``.
#: * ``"echo_engine"``  -- an :class:`~repro.protocols.echo.LEchoEngine`.
_FIELD_KINDS = frozenset(
    {"plain", "pid_keyed", "pid_set", "origin_votes", "echo_engine"}
)


@dataclasses.dataclass(frozen=True)
class MPSymmetry:
    """Renaming declaration for one message-passing protocol class.

    Attributes:
        fields: state-field name -> field kind (see :data:`_FIELD_KINDS`).
            Every attribute the protocol ever stores on ``self`` must be
            declared; an unknown field disables symmetry (fail-safe).
        origin_tags: payload tags whose element ``[1]`` is a process id
            (e.g. ``("EC-ECHO", origin, msg)``); every other payload
            must be pid-free.
        roles: optional ``(pid, n, t) -> role key``; permutations must
            preserve roles (PROTOCOL D's broadcasters ``pid <= t``).
    """

    fields: Mapping[str, str]
    origin_tags: FrozenSet[str] = frozenset()
    roles: Optional[Callable[[int, int, int], Any]] = None

    def __post_init__(self) -> None:
        unknown = sorted(set(self.fields.values()) - _FIELD_KINDS)
        if unknown:
            raise ValueError(f"unknown symmetry field kinds: {unknown}")


#: Scan disciplines a shared-memory program may declare.
#:
#: * ``"write_then_scan"`` -- one initial ``Write``, then ``Read`` ops
#:   over owners ``0 .. n-1`` in ascending cycles, then one ``Decide``
#:   (PROTOCOLs E and F).
#: * ``"decide_only"``     -- no register operations that mention owners
#:   (the trivial protocol).
_SM_SHAPES = frozenset({"write_then_scan", "decide_only"})


@dataclasses.dataclass(frozen=True)
class SMSymmetry:
    """Renaming declaration for one shared-memory program."""

    shape: str

    def __post_init__(self) -> None:
        if self.shape not in _SM_SHAPES:
            raise ValueError(f"unknown SM symmetry shape: {self.shape!r}")


_MP_REGISTRY: Dict[type, MPSymmetry] = {}
_SM_REGISTRY: Dict[Any, SMSymmetry] = {}


def register_mp_symmetry(cls: type, decl: MPSymmetry) -> None:
    _MP_REGISTRY[cls] = decl


def register_sm_symmetry(program: Any, decl: SMSymmetry) -> None:
    _SM_REGISTRY[program] = decl


# ---------------------------------------------------------------------------
# group construction


def symmetry_group(keys: Sequence[Any]) -> List[Perm]:
    """All permutations of ``range(len(keys))`` preserving ``keys``.

    Processes with equal keys are interchangeable; the group is the
    direct product of the symmetric groups on each equality class.  The
    identity permutation is always first.
    """
    classes: Dict[str, List[int]] = {}
    for pid, key in enumerate(keys):
        classes.setdefault(repr(key), []).append(pid)
    perms: List[List[int]] = [list(range(len(keys)))]
    for name in sorted(classes):
        members = classes[name]
        if len(members) == 1:
            continue
        extended: List[List[int]] = []
        for perm in perms:
            for arrangement in itertools.permutations(members):
                renamed = perm.copy()
                for old, new in zip(members, arrangement):
                    renamed[old] = new
                extended.append(renamed)
        perms = extended
    return [tuple(perm) for perm in perms]


def _adversary_crash_keys(
    crash_adversary: Optional[CrashAdversary], n: int
) -> Tuple[Optional[List[Any]], str]:
    """Per-pid crash classification, or a reason symmetry must disable.

    Only statically-assigned crash behaviour composes with renaming:
    permutations are restricted to preserve each process's crash point
    exactly, so the renamed execution runs under the *same* adversary.
    """
    if crash_adversary is None or isinstance(crash_adversary, NoCrashes):
        return [None] * n, ""
    if type(crash_adversary) is CrashPlan:
        points = crash_adversary._points
        return [points.get(pid) for pid in range(n)], ""
    return None, (
        f"adversary {type(crash_adversary).__name__} is not a static "
        "per-process crash plan"
    )


# ---------------------------------------------------------------------------
# message-passing canonicalization


class MPSymmetryContext:
    """Per-exploration canonicalizer for one MP instance.

    Built once per exploration (the group depends only on inputs,
    adversary, and roles); :meth:`canonical` is called per node.
    """

    __slots__ = ("_decl", "_perms", "_n")

    def __init__(self, decl: MPSymmetry, perms: List[Perm], n: int) -> None:
        self._decl = decl
        self._perms = perms
        self._n = n

    @property
    def group_size(self) -> int:
        return len(self._perms)

    def canonical(
        self, kernel, include_counters: bool
    ) -> Tuple[Tuple, Dict[int, Tuple], bool]:
        """Canonical fingerprint of the kernel's current state.

        Returns ``(fingerprint, sig_by_event_id, is_identity)`` where
        ``sig_by_event_id`` maps ``id(event)`` of every pending event to
        its signature *renamed by the canonicalizing permutation* --
        sleep-set bookkeeping must live in the same coordinates as the
        store key -- and ``is_identity`` says whether the canonical
        representative is the unrenamed state itself.
        """
        best: Optional[Tuple] = None
        best_repr = ""
        best_sigs: Dict[int, Tuple] = {}
        best_identity = False
        for index, perm in enumerate(self._perms):
            fingerprint, sigs = self._renamed_fingerprint(
                kernel, include_counters, perm
            )
            key = repr(fingerprint)
            if best is None or key < best_repr:
                best = fingerprint
                best_repr = key
                best_sigs = sigs
                best_identity = index == 0
        assert best is not None
        return best, best_sigs, best_identity

    # -- renaming ------------------------------------------------------------

    def _renamed_fingerprint(
        self, kernel, include_counters: bool, perm: Perm
    ) -> Tuple[Tuple, Dict[int, Tuple]]:
        from repro.harness.exhaustive import _freeze

        n = self._n
        sigs: Dict[int, Tuple] = {}
        entries = []
        for _, event in sorted(kernel._pending.items()):
            if isinstance(event, Delivery):
                sig = (
                    1,
                    perm[event.sender],
                    perm[event.receiver],
                    _freeze(self._rename_payload(event.payload, perm)),
                )
            else:
                sig = (0, perm[event.pid])
            sigs[id(event)] = sig
            entries.append((sig, repr(sig)))
        pending = tuple(
            sig for sig, _ in sorted(entries, key=operator.itemgetter(1))
        )
        processes: List[Any] = [None] * n
        for pid, process in enumerate(kernel._processes):
            processes[perm[pid]] = self._rename_process(process, perm)
        contexts: List[Any] = [None] * n
        for pid, ctx in enumerate(kernel._contexts):
            contexts[perm[pid]] = (ctx._decided, _freeze(ctx._decision))
        crashed = tuple(sorted(perm[pid] for pid in kernel._crashed))
        counters: Tuple = ()
        if include_counters:
            steps = [0] * n
            sends = [0] * n
            for pid in range(n):
                steps[perm[pid]] = kernel._steps_taken[pid]
                sends[perm[pid]] = kernel._sends_made[pid]
            counters = (tuple(steps), tuple(sends))
        fingerprint = (
            pending, tuple(processes), tuple(contexts), crashed, counters,
        )
        return fingerprint, sigs

    def _rename_payload(self, payload: Any, perm: Perm) -> Any:
        if (
            isinstance(payload, tuple)
            and len(payload) >= 2
            and payload[0] in self._decl.origin_tags
            and isinstance(payload[1], int)
            and 0 <= payload[1] < self._n
        ):
            return (payload[0], perm[payload[1]]) + tuple(payload[2:])
        return payload

    def _rename_process(self, process, perm: Perm) -> Tuple:
        from repro.harness.exhaustive import _freeze

        fields = self._decl.fields
        items = []
        for key, value in sorted(process.__dict__.items()):
            renamed = self._rename_value(fields[key], value, perm)
            items.append((key, _freeze(renamed)))
        return tuple(sorted(items, key=repr))

    def _rename_value(self, kind: str, value: Any, perm: Perm) -> Any:
        if kind == "plain":
            return value
        if kind == "pid_keyed":
            return {
                perm[pid]: entry for pid, entry in sorted(value.items())
            }
        if kind == "pid_set":
            return {perm[pid] for pid in value}
        if kind == "origin_votes":
            return {
                (perm[origin],) + tuple(rest): {perm[pid] for pid in votes}
                for (origin, *rest), votes in sorted(
                    value.items(), key=repr
                )
            }
        # "echo_engine": mirror _freeze's __fingerprint__ shape so the
        # identity renaming reproduces the plain fingerprint exactly.
        from repro.harness.exhaustive import _freeze

        renamed = (
            value.ell,
            {perm[pid] for pid in value._echoed_for},
            {
                (perm[origin], message): {perm[pid] for pid in votes}
                for (origin, message), votes in sorted(
                    value._echoers.items(), key=repr
                )
            },
            {
                perm[origin]: list(messages)
                for origin, messages in sorted(value._accepted.items())
            },
        )
        return (type(value).__qualname__, _freeze(renamed))


def mp_symmetry_context(
    processes: Sequence[Any],
    inputs: Sequence[Any],
    t: int,
    crash_adversary: Optional[CrashAdversary],
) -> Tuple[Optional[MPSymmetryContext], str]:
    """Build the canonicalizer for an MP instance, or explain why not.

    Returns ``(context, "")`` when symmetry applies with a non-trivial
    group, else ``(None, reason)``.
    """
    n = len(inputs)
    classes = {type(process) for process in processes}
    if len(classes) != 1:
        return None, "heterogeneous process classes"
    cls = classes.pop()
    decl = _MP_REGISTRY.get(cls)
    if decl is None:
        return None, f"no symmetry declaration for {cls.__name__}"
    declared = set(decl.fields)
    for process in processes:
        undeclared = sorted(set(process.__dict__) - declared)
        if undeclared:
            return None, (
                f"undeclared state field {undeclared[0]!r} on {cls.__name__}"
            )
    crash_keys, reason = _adversary_crash_keys(crash_adversary, n)
    if crash_keys is None:
        return None, reason
    keys = [
        (
            inputs[pid],
            crash_keys[pid],
            decl.roles(pid, n, t) if decl.roles is not None else None,
        )
        for pid in range(n)
    ]
    perms = symmetry_group(keys)
    if len(perms) == 1:
        return None, "trivial symmetry group (no interchangeable processes)"
    return MPSymmetryContext(decl, perms, n), ""


# ---------------------------------------------------------------------------
# shared-memory canonicalization


class SMSymmetryContext:
    """Per-exploration canonicalizer for one SM instance.

    Candidate permutations are filtered *per state*: ascending-scan
    programs read owners ``0, 1, ...`` in order, so a renaming yields a
    reachable log shape only when it stabilizes every in-progress scan
    prefix ``{0 .. m-1}``.  The identity permutation always qualifies.
    """

    __slots__ = ("_shape", "_perms", "_inverses", "_n")

    def __init__(self, shape: str, perms: List[Perm], n: int) -> None:
        self._shape = shape
        self._perms = perms
        self._inverses = []
        for perm in perms:
            inverse = [0] * n
            for old, new in enumerate(perm):
                inverse[new] = old
            self._inverses.append(tuple(inverse))
        self._n = n

    @property
    def group_size(self) -> int:
        return len(self._perms)

    def canonical(self, kernel) -> Tuple[Tuple, bool]:
        """Canonical fingerprint; returns ``(fingerprint, is_identity)``."""
        parsed = [self._parse_log(state) for state in kernel._states]
        prefix_lengths = sorted(
            {len(partial) for _, _, partial, _ in parsed if partial}
        )
        best: Optional[Tuple] = None
        best_repr = ""
        best_identity = False
        for index, perm in enumerate(self._perms):
            if index and not all(
                all(perm[pid] < m for pid in range(m)) for m in prefix_lengths
            ):
                continue
            fingerprint = self._renamed_fingerprint(
                kernel, parsed, perm, self._inverses[index]
            )
            key = repr(fingerprint)
            if best is None or key < best_repr:
                best = fingerprint
                best_repr = key
                best_identity = index == 0
        assert best is not None
        return best, best_identity

    # -- log parsing and renaming -------------------------------------------

    def _parse_log(
        self, state
    ) -> Tuple[Optional[Any], List[List[Any]], List[Any], List[Any]]:
        """Split a results log into (write ack, full scans, partial, tail).

        ``write_then_scan`` logs are ``[write ack] + reads + [decide
        ack]?``; reads cycle through owners ``0 .. n-1``, so position
        alone identifies each read's owner.  ``decide_only`` logs carry
        no owner information and pass through unrenamed.
        """
        log = state.results_log
        if self._shape == "decide_only" or not log:
            return None, [], [], list(log)
        reads = log[1:-1] if state.decided else log[1:]
        tail = [log[-1]] if state.decided else []
        n = self._n
        full = len(reads) // n
        blocks = [reads[i * n:(i + 1) * n] for i in range(full)]
        return log[0], blocks, reads[full * n:], tail

    def _renamed_fingerprint(
        self, kernel, parsed, perm: Perm, inverse: Perm
    ) -> Tuple:
        from repro.harness.exhaustive import _freeze

        n = self._n
        states: List[Any] = [None] * n
        for pid, state in enumerate(kernel._states):
            ack, blocks, partial, tail = parsed[pid]
            if self._shape == "decide_only":
                log: List[Any] = tail
            else:
                log = [] if ack is None and not blocks and not partial else [ack]
                for block in blocks:
                    log.extend(block[inverse[j]] for j in range(n))
                log.extend(partial[inverse[j]] for j in range(len(partial)))
                log.extend(tail)
            states[perm[pid]] = (
                state.finished,
                state.decided,
                _freeze(state.decision),
                state.ops_taken,
                tuple(_freeze(entry) for entry in log),
            )
        registers: List[Any] = [None] * n
        for owner, value in enumerate(kernel.registers.current_values()):
            registers[perm[owner]] = _freeze(value)
        crashed = tuple(sorted(perm[pid] for pid in kernel._crashed))
        return (tuple(states), tuple(registers), crashed)


def sm_symmetry_context(
    programs: Sequence[Any],
    inputs: Sequence[Any],
    t: int,
    crash_adversary: Optional[CrashAdversary],
) -> Tuple[Optional[SMSymmetryContext], str]:
    """Build the canonicalizer for an SM instance, or explain why not."""
    n = len(inputs)
    distinct = {id(program) for program in programs}
    if len(distinct) != 1:
        # Distinct program objects usually mean genuinely heterogeneous
        # code, but the sim-* simulation wrappers build one fresh
        # closure per process from the *same* factory -- distinguish
        # that case so certification reports say what is actually
        # missing (a symmetry declaration for the wrapper), not just
        # "heterogeneous".
        codes = {getattr(program, "__code__", None) for program in programs}
        if None not in codes and len(codes) == 1:
            qualname = getattr(programs[0], "__qualname__", "")
            if "simulate_mp_over_sm" in qualname:
                return None, (
                    "simulation wrapper: per-process closures carry the "
                    "simulated protocol's state (no symmetry declaration "
                    "for sim-* yet)"
                )
            return None, (
                f"per-process closures of {qualname or repr(programs[0])} "
                "(no shared program object to declare symmetry on)"
            )
        return None, "heterogeneous programs"
    program = programs[0]
    decl = _SM_REGISTRY.get(program)
    if decl is None:
        name = getattr(program, "__qualname__", repr(program))
        return None, f"no symmetry declaration for program {name}"
    crash_keys, reason = _adversary_crash_keys(crash_adversary, n)
    if crash_keys is None:
        return None, reason
    keys = [(inputs[pid], crash_keys[pid]) for pid in range(n)]
    perms = symmetry_group(keys)
    if len(perms) == 1:
        return None, "trivial symmetry group (no interchangeable processes)"
    return SMSymmetryContext(decl.shape, perms, n), ""


# ---------------------------------------------------------------------------
# declarations for the registered protocols
#
# Every declaration is a soundness claim reviewed against the protocol
# source: state fields must be listed with the exact way they mention
# process ids, and payload tags carrying pids must be named.  The
# permutation-fuzz property tests (tests/harness/test_symmetry.py)
# exercise each declaration on both kernels.


def _broadcaster_role(pid: int, n: int, t: int) -> bool:
    # PROTOCOL D: p_0 .. p_t broadcast and decide their own values.
    return pid <= t


def _register_declarations() -> None:
    from repro.protocols.ablations import (
        CredulousProcess, ProtocolBStrictQuorum, ProtocolCPlainBroadcast,
    )
    from repro.protocols.chaudhuri import ChaudhuriKSet
    from repro.protocols.protocol_a import ProtocolA
    from repro.protocols.protocol_b import ProtocolB
    from repro.protocols.protocol_c import ProtocolC
    from repro.protocols.protocol_d import ProtocolD
    from repro.protocols.protocol_e import protocol_e
    from repro.protocols.protocol_f import protocol_f
    from repro.protocols.trivial import TrivialOwnValue, trivial_own_value_sm

    values_only = MPSymmetry(fields={"_values": "pid_keyed"})
    register_mp_symmetry(ProtocolA, values_only)
    register_mp_symmetry(ProtocolB, values_only)
    register_mp_symmetry(ChaudhuriKSet, values_only)
    register_mp_symmetry(ProtocolBStrictQuorum, values_only)
    register_mp_symmetry(ProtocolCPlainBroadcast, values_only)
    register_mp_symmetry(CredulousProcess, values_only)
    register_mp_symmetry(TrivialOwnValue, MPSymmetry(fields={}))
    register_mp_symmetry(
        ProtocolC,
        MPSymmetry(
            fields={
                "ell": "plain",
                "_engine": "echo_engine",
                "_first_value": "pid_keyed",
            },
            origin_tags=frozenset({"EC-ECHO"}),
        ),
    )
    register_mp_symmetry(
        ProtocolD,
        MPSymmetry(
            fields={"_echoed_for": "pid_set", "_echoers": "origin_votes"},
            origin_tags=frozenset({"D-ECHO"}),
            roles=_broadcaster_role,
        ),
    )
    register_sm_symmetry(protocol_e, SMSymmetry(shape="write_then_scan"))
    register_sm_symmetry(protocol_f, SMSymmetry(shape="write_then_scan"))
    register_sm_symmetry(
        trivial_own_value_sm, SMSymmetry(shape="decide_only")
    )


_register_declarations()
