"""Experiment harness: runners, input patterns, Monte-Carlo sweeps."""

from repro.harness.attack import AttackResult, search_worst_run
from repro.harness.campaign import Campaign, CampaignResult, run_campaign
from repro.harness.exhaustive import (
    ExplorationResult,
    SpecFactory,
    crash_patterns,
    explore_mp,
    explore_sm,
)
from repro.harness.inputs import INPUT_PATTERNS, make_inputs
from repro.harness.parallel import (
    available_jobs,
    derive_seed,
    parallel_map,
    resolve_jobs,
)
from repro.harness.runner import ExperimentReport, run_mp, run_sm, run_spec
from repro.harness.sweep import SweepConfig, SweepStats, Violation, sweep_spec

__all__ = [
    "AttackResult",
    "Campaign",
    "CampaignResult",
    "ExperimentReport",
    "ExplorationResult",
    "SpecFactory",
    "available_jobs",
    "crash_patterns",
    "derive_seed",
    "explore_mp",
    "explore_sm",
    "parallel_map",
    "resolve_jobs",
    "run_campaign",
    "search_worst_run",
    "INPUT_PATTERNS",
    "SweepConfig",
    "SweepStats",
    "Violation",
    "make_inputs",
    "run_mp",
    "run_sm",
    "run_spec",
    "sweep_spec",
]
