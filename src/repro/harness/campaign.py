"""Sweep campaigns: grid-scale validation with persisted results.

A *campaign* runs Monte-Carlo sweeps for many protocols over many
``(n, k, t)`` points and records the results as JSON, so that large
validations (the kind backing EXPERIMENTS.md) are resumable and
diffable across library versions.  Re-running a campaign with the same
seed reproduces it exactly.

Two persistence modes:

* **Result-file mode** (:func:`run_campaign` with ``result_path``) --
  the original lightweight path: points already present in the JSON
  result file are skipped, the file is rewritten (atomically) as
  points complete.
* **Durable mode** (:func:`run_campaign_durable`) -- the campaign is
  decomposed into *shards* (one per point, seeded deterministically via
  :func:`~repro.harness.parallel.derive_seed`) in a sqlite
  :class:`~repro.jobs.store.JobStore` and executed by the
  :mod:`repro.jobs` supervisor: per-shard timeouts, bounded retries
  with backoff, dead-worker re-lease, and crash-safe ``--resume``.
  Because every shard's result is a pure function of its payload, a
  resumed campaign's aggregate is bit-identical to an uninterrupted
  one (checked by :func:`repro.verify.diff_resumed`).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import sample_solvable_points
from repro.harness.parallel import derive_seed, parallel_map
from repro.harness.sweep import SweepConfig, SweepStats, sweep_spec
from repro.io import atomic_write_json
from repro.protocols.base import ProtocolSpec, all_specs, get_spec
from repro.models import Model

import random

__all__ = [
    "Campaign",
    "CampaignResult",
    "PointRecord",
    "campaign_shards",
    "run_campaign",
    "run_campaign_durable",
]


@dataclasses.dataclass(frozen=True)
class Campaign:
    """Specification of a validation campaign."""

    name: str
    n_values: Tuple[int, ...] = (6, 8)
    points_per_spec: int = 2
    runs_per_point: int = 10
    seed: int = 0
    spec_names: Optional[Tuple[str, ...]] = None  # default: all registered
    models: Optional[Tuple[Model, ...]] = None
    #: execution engine per point: "scalar", "batch", or "auto" (batch
    #: where supported, scalar fallback) -- see :func:`sweep_spec`.
    engine: str = "scalar"

    def specs(self) -> List[ProtocolSpec]:
        if self.spec_names is not None:
            return [get_spec(name) for name in self.spec_names]
        specs = list(all_specs())
        if self.models is not None:
            specs = [s for s in specs if s.model in self.models]
        return specs

    def to_json(self) -> Dict:
        """JSON form (stored in the job store's run row)."""
        return {
            "name": self.name,
            "n_values": list(self.n_values),
            "points_per_spec": self.points_per_spec,
            "runs_per_point": self.runs_per_point,
            "seed": self.seed,
            "spec_names": (
                list(self.spec_names) if self.spec_names is not None
                else None
            ),
            "models": (
                [m.shorthand for m in self.models]
                if self.models is not None else None
            ),
            "engine": self.engine,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "Campaign":
        return cls(
            name=data["name"],
            n_values=tuple(data["n_values"]),
            points_per_spec=data["points_per_spec"],
            runs_per_point=data["runs_per_point"],
            seed=data["seed"],
            spec_names=(
                tuple(data["spec_names"])
                if data.get("spec_names") is not None else None
            ),
            models=(
                tuple(Model.from_shorthand(s) for s in data["models"])
                if data.get("models") is not None else None
            ),
            engine=data.get("engine", "scalar"),
        )


@dataclasses.dataclass
class PointRecord:
    """Persisted result of one sweep point."""

    spec: str
    n: int
    k: int
    t: int
    runs: int
    violations: int
    max_distinct: int
    #: engine that produced the point ("scalar" default keeps result
    #: files from before the batch engine loadable).
    engine: str = "scalar"

    @property
    def key(self) -> str:
        return f"{self.spec}|n={self.n}|k={self.k}|t={self.t}"

    def to_json(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Dict) -> "PointRecord":
        return cls(**data)

    @classmethod
    def from_stats(cls, stats: SweepStats) -> "PointRecord":
        return cls(
            spec=stats.spec_name,
            n=stats.n,
            k=stats.k,
            t=stats.t,
            runs=stats.runs,
            violations=len(stats.violations),
            max_distinct=stats.max_distinct_decisions,
            engine=stats.engine,
        )


@dataclasses.dataclass
class CampaignResult:
    """All point records of one campaign run."""

    campaign: str
    seed: int
    records: List[PointRecord] = dataclasses.field(default_factory=list)
    #: how the run executed (supervisor report + supervision events);
    #: observational metadata only -- never part of aggregate equality.
    execution: Optional[Dict] = None

    @property
    def clean(self) -> bool:
        return all(record.violations == 0 for record in self.records)

    @property
    def total_runs(self) -> int:
        return sum(record.runs for record in self.records)

    def violating(self) -> List[PointRecord]:
        return [r for r in self.records if r.violations]

    def save(self, path: pathlib.Path) -> None:
        payload = {
            "campaign": self.campaign,
            "seed": self.seed,
            "records": [record.to_json() for record in self.records],
        }
        if self.execution is not None:
            payload["execution"] = self.execution
        atomic_write_json(path, payload)

    @classmethod
    def load(cls, path: pathlib.Path) -> "CampaignResult":
        payload = json.loads(path.read_text())
        return cls(
            campaign=payload["campaign"],
            seed=payload["seed"],
            records=[PointRecord.from_json(r) for r in payload["records"]],
            execution=payload.get("execution"),
        )

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.violating())} violating points"
        return (
            f"campaign {self.campaign!r}: {len(self.records)} points, "
            f"{self.total_runs} runs, {status}"
        )


def _point_seed(campaign_seed: int, key: str) -> int:
    """Deterministic per-point sweep seed (SHA-256 mix, cross-process
    and cross-platform stable -- the same derivation the parallel and
    durable execution layers rely on)."""
    return derive_seed("campaign-point", campaign_seed, key) % (1 << 30)


def _campaign_points(campaign: Campaign) -> List[Tuple[str, int, int, int, int]]:
    """Every point of the campaign, in deterministic campaign order.

    Each entry is ``(spec_name, n, k, t, point_seed)``; the per-point
    seed depends only on ``(campaign.seed, point key)``, so any subset
    of points can run anywhere, in any order, and still reproduce the
    same sweeps exactly.
    """
    points: List[Tuple[str, int, int, int, int]] = []
    for spec in campaign.specs():
        for n in campaign.n_values:
            point_rng = random.Random(f"{campaign.seed}:{spec.name}:{n}")
            for (k, t) in sample_solvable_points(
                spec, n, campaign.points_per_spec, point_rng
            ):
                key = f"{spec.name}|n={n}|k={k}|t={t}"
                points.append(
                    (spec.name, n, k, t,
                     _point_seed(campaign.seed, key))
                )
    return points


def _pending_points(
    campaign: Campaign, done: set
) -> List[Tuple[str, int, int, int, int]]:
    """Points still to sweep, in deterministic campaign order."""
    return [
        point for point in _campaign_points(campaign)
        if f"{point[0]}|n={point[1]}|k={point[2]}|t={point[3]}" not in done
    ]


def _campaign_point(task) -> PointRecord:
    """Module-level worker: sweep one campaign point."""
    spec_name, n, k, t, point_seed, runs_per_point, engine = task
    stats = sweep_spec(
        get_spec(spec_name), n, k, t,
        SweepConfig(runs=runs_per_point, seed=point_seed),
        engine=engine,
    )
    return PointRecord.from_stats(stats)


def run_campaign(
    campaign: Campaign,
    result_path: Optional[pathlib.Path] = None,
    jobs: int = 1,
) -> CampaignResult:
    """Execute (or resume) a campaign in result-file mode.

    When ``result_path`` exists, previously completed points are loaded
    and skipped; new records are appended and the file rewritten
    (atomically) after every point, so an interrupted campaign loses at
    most one sweep.  For crash-safe execution with supervised workers
    and retries, see :func:`run_campaign_durable`.

    With ``jobs > 1`` (``0`` = all cores) points are swept in parallel
    worker processes.  Records are appended in the same deterministic
    campaign order as the serial path, so the result file is
    bit-identical; the result file is written once per completed batch
    rather than per point.
    """
    if result_path is not None and result_path.exists():
        result = CampaignResult.load(result_path)
        if result.campaign != campaign.name or result.seed != campaign.seed:
            raise ValueError(
                f"result file {result_path} belongs to campaign "
                f"{result.campaign!r} (seed {result.seed}), not "
                f"{campaign.name!r} (seed {campaign.seed})"
            )
    else:
        result = CampaignResult(campaign=campaign.name, seed=campaign.seed)
    done = {record.key for record in result.records}

    tasks = [
        point + (campaign.runs_per_point, campaign.engine)
        for point in _pending_points(campaign, done)
    ]
    if jobs != 1:
        for record in parallel_map(_campaign_point, tasks, jobs=jobs):
            result.records.append(record)
        if tasks and result_path is not None:
            result.save(result_path)
        return result

    for task in tasks:
        result.records.append(_campaign_point(task))
        if result_path is not None:
            result.save(result_path)
    return result


# -- durable mode (repro.jobs) -----------------------------------------


def campaign_shards(campaign: Campaign) -> List[Tuple[str, Dict]]:
    """Decompose a campaign into durable ``(shard_id, payload)`` units.

    One shard per point; the payload is self-contained (spec name,
    point, seed, run count, engine), so a shard can execute in any
    process at any time and produce the identical
    :class:`PointRecord`.
    """
    shards: List[Tuple[str, Dict]] = []
    for spec_name, n, k, t, point_seed in _campaign_points(campaign):
        key = f"{spec_name}|n={n}|k={k}|t={t}"
        shards.append((key, {
            "spec": spec_name,
            "n": n,
            "k": k,
            "t": t,
            "seed": point_seed,
            "runs": campaign.runs_per_point,
            "engine": campaign.engine,
        }))
    return shards


def campaign_shard_worker(payload: Dict) -> Dict:
    """Module-level shard worker: sweep one point, return its record."""
    record = _campaign_point((
        payload["spec"], payload["n"], payload["k"], payload["t"],
        payload["seed"], payload["runs"], payload["engine"],
    ))
    return record.to_json()


def run_campaign_durable(
    store,
    campaign: Optional[Campaign] = None,
    run_id: Optional[str] = None,
    jobs: int = 1,
    policy=None,
    chaos=None,
    max_shards: Optional[int] = None,
    result_path: Optional[pathlib.Path] = None,
):
    """Execute (or resume) a campaign through the crash-safe job layer.

    With ``campaign`` given, the run is registered in ``store`` under
    ``run_id`` (default: the campaign name) and its shard grid
    submitted -- both idempotently, so invoking again after a crash
    resumes exactly where the queue stands.  With ``campaign`` omitted,
    the campaign specification is loaded from the store (the
    ``--resume <run-id>`` path).

    Returns ``(result, report)``: the aggregate
    :class:`CampaignResult` assembled from completed shards in
    deterministic campaign order -- bit-identical to an uninterrupted
    run once the queue drains -- and the supervisor's
    :class:`~repro.jobs.supervisor.SupervisorReport`.  Retry, timeout,
    worker-death, and serial-fallback events are embedded in
    ``result.execution`` and persisted to ``result_path`` when given.
    """
    from repro.jobs import run_shards

    if campaign is None:
        if run_id is None:
            raise ValueError("a resume needs a run_id")
        kind, spec = store.load_run(run_id)
        if kind != "campaign":
            raise ValueError(
                f"run {run_id!r} is a {kind!r} run, not a campaign"
            )
        campaign = Campaign.from_json(spec)
    else:
        run_id = run_id or campaign.name
        store.create_run(run_id, "campaign", campaign.to_json())
    store.add_shards(run_id, campaign_shards(campaign))

    report = run_shards(
        store, run_id, campaign_shard_worker,
        jobs=jobs, policy=policy, chaos=chaos, max_shards=max_shards,
    )

    records = [PointRecord.from_json(r) for r in store.results(run_id)]
    failed = store.shards(run_id, state="failed")
    execution = {
        "run_id": run_id,
        "supervisor": report.to_json(),
        "events": [e.to_json() for e in store.events(run_id)],
        "failed_shards": [
            {"shard": s.shard_id, "attempts": s.attempts, "error": s.error}
            for s in failed
        ],
    }
    result = CampaignResult(
        campaign=campaign.name, seed=campaign.seed, records=records,
        execution=execution,
    )
    if result_path is not None:
        result.save(result_path)
    return result, report
