"""Sweep campaigns: grid-scale validation with persisted results.

A *campaign* runs Monte-Carlo sweeps for many protocols over many
``(n, k, t)`` points and records the results as JSON, so that large
validations (the kind backing EXPERIMENTS.md) are resumable and
diffable across library versions.  Re-running a campaign with the same
seed reproduces it exactly; points already present in the result file
are skipped.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.report import sample_solvable_points
from repro.harness.parallel import parallel_map
from repro.harness.sweep import SweepConfig, SweepStats, sweep_spec
from repro.protocols.base import ProtocolSpec, all_specs, get_spec
from repro.models import Model

import random

__all__ = ["Campaign", "CampaignResult", "PointRecord", "run_campaign"]


@dataclasses.dataclass(frozen=True)
class Campaign:
    """Specification of a validation campaign."""

    name: str
    n_values: Tuple[int, ...] = (6, 8)
    points_per_spec: int = 2
    runs_per_point: int = 10
    seed: int = 0
    spec_names: Optional[Tuple[str, ...]] = None  # default: all registered
    models: Optional[Tuple[Model, ...]] = None
    #: execution engine per point: "scalar", "batch", or "auto" (batch
    #: where supported, scalar fallback) -- see :func:`sweep_spec`.
    engine: str = "scalar"

    def specs(self) -> List[ProtocolSpec]:
        if self.spec_names is not None:
            return [get_spec(name) for name in self.spec_names]
        specs = list(all_specs())
        if self.models is not None:
            specs = [s for s in specs if s.model in self.models]
        return specs


@dataclasses.dataclass
class PointRecord:
    """Persisted result of one sweep point."""

    spec: str
    n: int
    k: int
    t: int
    runs: int
    violations: int
    max_distinct: int
    #: engine that produced the point ("scalar" default keeps result
    #: files from before the batch engine loadable).
    engine: str = "scalar"

    @property
    def key(self) -> str:
        return f"{self.spec}|n={self.n}|k={self.k}|t={self.t}"

    def to_json(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Dict) -> "PointRecord":
        return cls(**data)

    @classmethod
    def from_stats(cls, stats: SweepStats) -> "PointRecord":
        return cls(
            spec=stats.spec_name,
            n=stats.n,
            k=stats.k,
            t=stats.t,
            runs=stats.runs,
            violations=len(stats.violations),
            max_distinct=stats.max_distinct_decisions,
            engine=stats.engine,
        )


@dataclasses.dataclass
class CampaignResult:
    """All point records of one campaign run."""

    campaign: str
    seed: int
    records: List[PointRecord] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(record.violations == 0 for record in self.records)

    @property
    def total_runs(self) -> int:
        return sum(record.runs for record in self.records)

    def violating(self) -> List[PointRecord]:
        return [r for r in self.records if r.violations]

    def save(self, path: pathlib.Path) -> None:
        payload = {
            "campaign": self.campaign,
            "seed": self.seed,
            "records": [record.to_json() for record in self.records],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: pathlib.Path) -> "CampaignResult":
        payload = json.loads(path.read_text())
        return cls(
            campaign=payload["campaign"],
            seed=payload["seed"],
            records=[PointRecord.from_json(r) for r in payload["records"]],
        )

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.violating())} violating points"
        return (
            f"campaign {self.campaign!r}: {len(self.records)} points, "
            f"{self.total_runs} runs, {status}"
        )


def _pending_points(
    campaign: Campaign, done: set
) -> List[Tuple[str, int, int, int, int]]:
    """Points still to sweep, in deterministic campaign order.

    Each entry is ``(spec_name, n, k, t, point_seed)``; the per-point
    seed is derived from the point's key, so resuming an interrupted
    campaign (or running it in parallel) reproduces the same runs
    exactly.
    """
    points: List[Tuple[str, int, int, int, int]] = []
    for spec in campaign.specs():
        for n in campaign.n_values:
            point_rng = random.Random(f"{campaign.seed}:{spec.name}:{n}")
            for (k, t) in sample_solvable_points(
                spec, n, campaign.points_per_spec, point_rng
            ):
                key = f"{spec.name}|n={n}|k={k}|t={t}"
                if key in done:
                    continue
                point_seed = random.Random(
                    f"{campaign.seed}:{key}"
                ).randrange(1 << 30)
                points.append((spec.name, n, k, t, point_seed))
    return points


def _campaign_point(task) -> PointRecord:
    """Module-level worker: sweep one campaign point."""
    spec_name, n, k, t, point_seed, runs_per_point, engine = task
    stats = sweep_spec(
        get_spec(spec_name), n, k, t,
        SweepConfig(runs=runs_per_point, seed=point_seed),
        engine=engine,
    )
    return PointRecord.from_stats(stats)


def run_campaign(
    campaign: Campaign,
    result_path: Optional[pathlib.Path] = None,
    jobs: int = 1,
) -> CampaignResult:
    """Execute (or resume) a campaign.

    When ``result_path`` exists, previously completed points are loaded
    and skipped; new records are appended and the file rewritten after
    every point, so an interrupted campaign loses at most one sweep.

    With ``jobs > 1`` (``0`` = all cores) points are swept in parallel
    worker processes.  Records are appended in the same deterministic
    campaign order as the serial path, so the result file is
    bit-identical; the result file is written once per completed batch
    rather than per point.
    """
    if result_path is not None and result_path.exists():
        result = CampaignResult.load(result_path)
        if result.campaign != campaign.name or result.seed != campaign.seed:
            raise ValueError(
                f"result file {result_path} belongs to campaign "
                f"{result.campaign!r} (seed {result.seed}), not "
                f"{campaign.name!r} (seed {campaign.seed})"
            )
    else:
        result = CampaignResult(campaign=campaign.name, seed=campaign.seed)
    done = {record.key for record in result.records}

    tasks = [
        point + (campaign.runs_per_point, campaign.engine)
        for point in _pending_points(campaign, done)
    ]
    if jobs != 1:
        for record in parallel_map(_campaign_point, tasks, jobs=jobs):
            result.records.append(record)
        if tasks and result_path is not None:
            result.save(result_path)
        return result

    for task in tasks:
        result.records.append(_campaign_point(task))
        if result_path is not None:
            result.save(result_path)
    return result
