"""Exhaustive schedule exploration for small instances.

Monte-Carlo sweeps sample the schedule space; for small ``n`` the
kernels' nondeterminism can be explored *completely*: every interleaving
of pending events (and optionally every crash pattern) is enumerated by
depth-first search over kernel states.  A protocol property verified
here holds for **all** asynchronous runs of the instance, which is the
actual quantifier in the paper's lemmas.

Three cooperating mechanisms keep the search fast:

* **Snapshot/restore forking.**  Branch points capture kernel state with
  the plain-data snapshot protocol (:meth:`MPKernel.snapshot` /
  :meth:`MPKernel.restore`) instead of ``copy.deepcopy``; the legacy
  deepcopy engine is kept behind ``engine="deepcopy"`` as the
  correctness/bench baseline.  Shared-memory programs are generators and
  cannot be copied at all, so :func:`explore_sm` shares prefixes: one
  live kernel is *extended* along depth-first descents and replayed only
  on backtracks.

* **Partial-order reduction** (``por=True``, the default for
  :func:`explore_mp`).  Deliveries to distinct processes that cannot
  crash commute -- the receivers' handler executions touch disjoint
  state -- so only one representative interleaving per Mazurkiewicz
  trace class is explored, using sleep sets.  Events whose target may
  still crash (per ``crash_adversary.potentially_faulty()``) are treated
  as dependent on everything, and POR disables itself under *dynamic*
  crash adversaries, whose decisions react to global state.  Full DFS
  (``por=False``) remains the correctness reference.

* **A visited-state store.**  Structural fingerprints collapse states
  reached through different event orders; each fingerprint is stored
  with the sleep sets it was expanded under, and a revisit is cut only
  when a cached sleep set is a *subset* of the current one (the cached
  expansion then covered every continuation the revisit needs), which
  is what makes caching sound under sleep sets.  Hit/miss counters are
  reported on every result.

:func:`explore_mp` and :func:`explore_sm` also take ``jobs``: the root
fan-out is expanded breadth-first into a fixed-width frontier whose
subtrees are distributed over worker processes with
:func:`repro.harness.parallel.parallel_map`, and the per-subtree results
are merged in frontier order -- so the merged result is bit-identical
for every jobs count (``--jobs 1`` vs ``--jobs 8`` agree exactly).

Two execution-mode extensions trade that bit-identity for speed, both
*verdict-identical* to the default mode (same violations-found verdict;
state counts may vary):

* ``shared=True`` replaces the one-shot frontier with the work-stealing
  scheduler of :mod:`repro.harness.shared_frontier`: workers share one
  cross-worker visited table (:mod:`repro.harness.visited`) and shed
  subtree roots to idle peers on demand, eliminating both the
  duplicate-work and the load-imbalance cost of private stores.
* ``stop_on_violation=True`` terminates the search at the first
  recorded violation (cross-worker cancellation in the parallel
  modes), which makes counterexample hunts over outside-region points
  cheap -- the result then reports ``exhausted=False`` whenever a
  violation was found.

Typical use::

    outcome = explore_mp(
        lambda: [ProtocolA() for _ in range(3)],
        inputs=["v", "v", "w"],
        k=2, t=1, validity=RV2,
    )
    assert outcome.all_ok

Exploration cost grows factorially; ``max_states`` bounds the search
(the result then reports ``exhausted=False``).
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import operator
import os
import tempfile
from collections import Counter, deque
from typing import (
    Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple,
)

from repro.core.problem import SCProblem
from repro.core.validity import ValidityCondition
from repro.core.values import Value
from repro.failures.adversary import CrashAdversary
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.parallel import parallel_map
from repro.harness.visited import (
    EXPAND_ALL, NO_SLEEP, ExactStore, VisitedSpec,
)
from repro.runtime.events import Delivery, Event, Start
from repro.runtime.kernel import MPKernel
from repro.runtime.process import Process
from repro.runtime.traces import TraceMode

__all__ = [
    "ExplorationResult",
    "ExplorationStats",
    "SpecFactory",
    "VisitedSpec",
    "crash_patterns",
    "explore_mp",
    "explore_sm",
]

#: Number of subtree roots the parallel engines expand the search into
#: before distributing.  Deliberately independent of ``jobs`` so that
#: the work decomposition -- and therefore the merged result -- is
#: identical for every worker count.  Workers keep private visited
#: stores (sharing one would make results scheduling-dependent), so a
#: wider frontier buys parallelism at the price of re-exploring states
#: that overlap between subtrees.
_FRONTIER_WIDTH = 16


# ---------------------------------------------------------------------------
# result type


@dataclasses.dataclass
class ExplorationStats:
    """Symmetry and visited-store observability counters.

    Reductions must be visible, not silent: these counters say which
    store ran, whether symmetry applied (and if not, why), and how much
    work the reductions actually did.
    """

    #: Which visited store ran: ``exact`` / ``compact`` / ``bitstate``
    #: / ``disk``.
    visited_store: str = "exact"
    #: Whether a cross-worker (shared-memory or disk) table was in play.
    shared_store: bool = False
    #: Probes answered by another worker's recorded expansion.
    shared_hits: int = 0
    #: States expanded by this worker that some worker had already
    #: expanded under a different sleep coverage (duplicate work the
    #: shared table could not cut).
    reexplored_states: int = 0
    #: Subtree roots executed by a worker other than their producer
    #: (work-stealing scheduler only).
    stolen_subtrees: int = 0
    #: Workers that died (EOF/kill) during a shared-frontier run; any
    #: nonzero count forces ``exhausted=False``.
    worker_failures: int = 0
    #: Whether process-permutation symmetry reduction was active.
    symmetry: bool = False
    #: Why symmetry was disabled (empty when active or never requested).
    symmetry_reason: str = ""
    #: Size of the process-permutation group (1 when symmetry is off).
    group_size: int = 1
    #: Canonical fingerprints computed (one per deduplicated node).
    canonicalizations: int = 0
    #: Store hits at states whose canonical representative is a proper
    #: renaming of the raw state -- hits attributable to symmetry.
    orbit_hits: int = 0
    #: Bitstate store only: array width, bits set, peak fill fraction,
    #: and the accumulated expected number of false-positive hits.
    bitstate_bits: int = 0
    bitstate_set_bits: int = 0
    bitstate_saturation: float = 0.0
    bitstate_fp_budget: float = 0.0


@dataclasses.dataclass
class ExplorationResult:
    """Aggregate of a complete (or budget-capped) exploration."""

    runs: int
    states: int
    exhausted: bool
    violations: List[Tuple[Tuple[int, ...], Dict[str, object]]]
    max_distinct_decisions: int
    decision_sets: Set[frozenset]
    #: Visited-state store hits (branches cut because the exact
    #: (fingerprint, sleep set) node was already expanded).
    cache_hits: int = 0
    #: Visited-state store misses (distinct nodes actually expanded).
    cache_misses: int = 0
    #: Branch choices suppressed by sleep sets (POR).
    sleep_pruned: int = 0
    #: Partial re-expansions of already-visited states whose sleep set
    #: was incomparable to the stored coverage (POR bookkeeping; not
    #: counted in ``states``, which counts *distinct* states expanded).
    reexpansions: int = 0
    #: Shared-memory engine only: prefix replays performed on backtrack...
    replays: int = 0
    #: ...and the total steps re-executed by those replays.
    replayed_steps: int = 0
    #: Symmetry / visited-store observability (see ExplorationStats).
    stats: ExplorationStats = dataclasses.field(
        default_factory=ExplorationStats
    )

    @property
    def all_ok(self) -> bool:
        return not self.violations

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of store probes answered by a cached node."""
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    def violation_kinds(self) -> Set[FrozenSet]:
        """The distinct violation findings, independent of event paths.

        POR and full DFS reach the same violating *configurations*
        through different representative schedules, so equivalence is
        compared on this set rather than on raw paths.
        """
        return {frozenset(failures.items()) for _, failures in self.violations}


def _merge_into(total: ExplorationResult, part: ExplorationResult) -> None:
    """Fold one subtree's result into the aggregate (order-preserving)."""
    total.runs += part.runs
    total.states += part.states
    total.exhausted = total.exhausted and part.exhausted
    total.violations.extend(part.violations)
    total.decision_sets |= part.decision_sets
    total.max_distinct_decisions = max(
        total.max_distinct_decisions, part.max_distinct_decisions
    )
    total.cache_hits += part.cache_hits
    total.cache_misses += part.cache_misses
    total.sleep_pruned += part.sleep_pruned
    total.reexpansions += part.reexpansions
    total.replays += part.replays
    total.replayed_steps += part.replayed_steps
    total.stats.canonicalizations += part.stats.canonicalizations
    total.stats.orbit_hits += part.stats.orbit_hits
    total.stats.bitstate_set_bits += part.stats.bitstate_set_bits
    total.stats.bitstate_saturation = max(
        total.stats.bitstate_saturation, part.stats.bitstate_saturation
    )
    total.stats.bitstate_fp_budget += part.stats.bitstate_fp_budget
    total.stats.shared_store = (
        total.stats.shared_store or part.stats.shared_store
    )
    total.stats.shared_hits += part.stats.shared_hits
    total.stats.reexplored_states += part.stats.reexplored_states
    total.stats.stolen_subtrees += part.stats.stolen_subtrees
    total.stats.worker_failures += part.stats.worker_failures


def _empty_result() -> ExplorationResult:
    return ExplorationResult(
        runs=0,
        states=0,
        exhausted=True,
        violations=[],
        max_distinct_decisions=0,
        decision_sets=set(),
    )


# ---------------------------------------------------------------------------
# leaf judging


def _make_judge(problem: SCProblem, verify: bool):
    """Leaf judge: name -> description of everything wrong with a run.

    The default judge applies the bare outcome checks
    (:meth:`SCProblem.check`); with ``verify`` the full oracle stack of
    :mod:`repro.verify.oracles` runs instead and findings are keyed by
    oracle name.
    """
    if not verify:
        def judge(execution):
            verdicts = problem.check(execution.outcome)
            return {name: str(v) for name, v in verdicts.items() if not v}

        return judge

    # Function-level import: repro.verify pulls in harness modules.
    from repro.verify.oracles import check_execution

    def oracle_judge(execution):
        findings = {}
        for violation in check_execution(execution, problem):
            findings.setdefault(violation.oracle, str(violation))
        return findings

    return oracle_judge


def _judge_leaf(kernel, path: Tuple[int, ...], judge, result: ExplorationResult) -> None:
    execution = kernel._result()
    result.runs += 1
    failures = judge(execution)
    decided = frozenset(execution.outcome.correct_decision_values())
    result.decision_sets.add(decided)
    result.max_distinct_decisions = max(
        result.max_distinct_decisions, len(decided)
    )
    if failures:
        result.violations.append((path, failures))


# ---------------------------------------------------------------------------
# fingerprints and the visited-state store


def _freeze(value: Any) -> Any:
    """Canonical hashable form of a plain-data value.

    Containers are rebuilt as order-normalized tuples (dict items and
    set members sorted by ``repr``, which is total and deterministic
    across processes -- the sentinels print as ``<default>`` etc., never
    by address).  Atoms pass through; exotic leaves fall back to their
    ``repr``.
    """
    cls = value.__class__
    if cls is dict:
        return (
            "d",
            tuple(sorted(
                ((_freeze(k), _freeze(v)) for k, v in value.items()),
                key=repr,
            )),
        )
    if cls in (set, frozenset):
        return ("s", tuple(sorted((_freeze(v) for v in value), key=repr)))
    if cls in (list, tuple):
        return tuple(_freeze(v) for v in value)
    if cls in (int, str, bool, float, bytes) or value is None:
        return value
    fingerprint = getattr(cls, "__fingerprint__", None)
    if fingerprint is not None:
        # Composite helpers (e.g. the ℓ-echo engine) expose their
        # structural state; without this they would freeze by identity
        # and defeat deduplication across forked branches.
        return (cls.__qualname__, _freeze(fingerprint(value)))
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _event_sig(event: Event) -> Tuple:
    """Structural identity of a pending event (sequence-number free).

    Sleep sets must survive fingerprint collapsing: two nodes with equal
    state fingerprints may number the *same* pending events differently,
    so the sleep component of a store key uses this structural form.
    """
    if isinstance(event, Delivery):
        return (1, event.sender, event.receiver, _freeze(event.payload))
    return (0, event.pid)


def _event_target(event: Event) -> int:
    """The process whose local state the event's execution touches."""
    return event.receiver if isinstance(event, Delivery) else event.pid


class _SigCache:
    """Memoized :func:`_event_sig`, keyed by event identity.

    Events are frozen dataclasses, so a signature never changes once
    computed; the same pending event is re-fingerprinted at every node
    it survives to, which made signature hashing the hottest path in
    the profile.  Entries keep a strong reference to their event, which
    pins its ``id`` for the cache's (per-exploration) lifetime.  The
    signature's ``repr`` -- the canonical sort key for the pending
    multiset -- is precomputed alongside it.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[Event, Tuple, str]] = {}

    def sig(self, event: Event) -> Tuple:
        entry = self._entries.get(id(event))
        if entry is None:
            sig = _event_sig(event)
            entry = (event, sig, repr(sig))
            self._entries[id(event)] = entry
        return entry[1]

    def sig_and_key(self, event: Event) -> Tuple[Tuple, str]:
        entry = self._entries.get(id(event))
        if entry is None:
            sig = _event_sig(event)
            entry = (event, sig, repr(sig))
            self._entries[id(event)] = entry
        return entry[1], entry[2]


def _fingerprint_mp(
    kernel: MPKernel, include_counters: bool, sigs: _SigCache
) -> Tuple:
    """Structural state of an MP kernel: pending events + process states.

    Two kernel states with the same fingerprint have identical futures,
    so only one needs expansion.  ``include_counters`` adds the per-
    process step/send counters; they are part of the future-relevant
    state exactly when a crash adversary is present (crash points are
    counter-indexed), and omitting them otherwise lets states that
    differ only in history collapse.
    """
    pending = tuple(
        pair[0] for pair in sorted(
            (sigs.sig_and_key(event) for event in kernel._pending.values()),
            key=operator.itemgetter(1),
        )
    )
    processes = tuple(
        tuple(sorted(
            ((key, _freeze(value)) for key, value in p.__dict__.items()),
            key=repr,
        ))
        for p in kernel._processes
    )
    contexts = tuple(
        (ctx._decided, _freeze(ctx._decision)) for ctx in kernel._contexts
    )
    counters = (
        (tuple(kernel._steps_taken), tuple(kernel._sends_made))
        if include_counters else ()
    )
    return (pending, processes, contexts, tuple(sorted(kernel._crashed)), counters)


def _fingerprint_sm(kernel) -> Tuple:
    """Structural state of an SM kernel.

    Generator frames are opaque, but a deterministic generator's
    internal state is a pure function of the operation results fed into
    it (``results_log``), so logging results makes SM states
    fingerprintable -- and gives the SM explorer the deduplication the
    deepcopy-era code never had.
    """
    states = tuple(
        (
            st.finished,
            st.decided,
            _freeze(st.decision),
            st.ops_taken,
            tuple(_freeze(r) for r in st.results_log),
        )
        for st in kernel._states
    )
    registers = tuple(_freeze(v) for v in kernel.registers.current_values())
    return (states, registers, tuple(sorted(kernel._crashed)))


# The visited stores (exact / compact / bitstate) live in
# :mod:`repro.harness.visited`; these aliases keep the explorer's
# long-standing internal names stable for tests and callers.
_EXPAND_ALL = EXPAND_ALL

_NO_SLEEP: Counter = NO_SLEEP

_VisitedStore = ExactStore


# ---------------------------------------------------------------------------
# message-passing exploration


@dataclasses.dataclass
class _MPConfig:
    """Per-exploration constants threaded through the MP engines."""

    judge: Callable
    max_states: int
    dedup: bool
    por: bool
    include_counters: bool
    #: Processes the adversary may still crash; events targeting one
    #: (while it is not yet crashed) are dependent on everything.
    may_crash: FrozenSet[int]
    #: Symmetry canonicalizer, or ``None`` when the reduction is off
    #: (see :func:`repro.harness.symmetry.mp_symmetry_context`).
    sym: Optional[Any] = None
    #: Per-exploration memo of event signatures (see :class:`_SigCache`).
    sigs: _SigCache = dataclasses.field(default_factory=_SigCache)
    #: Abandon the search at the first recorded violation.
    stop_on_violation: bool = False


def _is_dynamic(adversary: Optional[CrashAdversary]) -> bool:
    """Does the adversary override ``dynamic_crashes``?"""
    if adversary is None:
        return False
    return type(adversary).dynamic_crashes is not CrashAdversary.dynamic_crashes


def _fresh_mp_kernel(
    process_factory, inputs, t, crash_adversary
) -> MPKernel:
    kernel = MPKernel(
        list(process_factory()),
        list(inputs),
        t=t,
        scheduler=None,
        crash_adversary=copy.deepcopy(crash_adversary),
        stop_when_decided=True,
        # Explorers need no event logs, and copying accumulated traces
        # would dominate exploration cost.
        trace_mode=TraceMode.OFF,
    )
    kernel._apply_dynamic_crashes()
    return kernel


class _Frame:
    """One DFS branch point: a snapshot plus its unexplored choices."""

    __slots__ = ("snapshot", "path", "sleep", "choices", "idx", "target", "may_crash", "fresh")

    def __init__(self, snapshot, path, sleep, choices, target, may_crash):
        self.snapshot = snapshot
        self.path = path
        self.sleep = sleep            # Set[int]: slept seqs at this node
        self.choices = choices        # List[int]: seqs to explore, ascending
        self.idx = 0
        self.target = target          # Dict[seq -> target pid]
        self.may_crash = may_crash    # Dict[seq -> event is crash-capable]
        self.fresh = True             # live kernel still sits at `snapshot`


def _sleep_sig(kernel: MPKernel, sleep: Set[int], sigs: _SigCache) -> Counter:
    """The sleep set as a multiset of structural event signatures.

    Sleep sets must survive fingerprint collapsing: two nodes with equal
    state fingerprints may number the *same* pending events differently,
    so store bookkeeping uses sequence-number-free signatures (and a
    multiset, because structurally identical events can coexist).
    """
    if not sleep:
        return _NO_SLEEP
    return Counter(sigs.sig(kernel._pending[seq]) for seq in sleep)


def _process_mp_node(
    kernel: MPKernel,
    path: Tuple[int, ...],
    sleep: Set[int],
    cfg: _MPConfig,
    result: ExplorationResult,
    store: _VisitedStore,
) -> Optional[_Frame]:
    """Count/dedup/judge the live kernel state; return a frame to expand.

    Returns ``None`` for cache hits, leaves, and fully-slept nodes.  On
    a revisit whose sleep set is incomparable to the stored coverage,
    the returned frame expands only the still-uncovered choices.
    """
    pending = kernel._pending
    fp = None
    sym_sigs = None
    to_expand = _EXPAND_ALL
    if cfg.dedup:
        if cfg.sym is not None:
            # Canonical store coordinates: the fingerprint *and* every
            # sleep/re-expansion signature are renamed by the same
            # canonicalizing permutation, so Godefroid bookkeeping
            # operates consistently inside each symmetry orbit.
            fp, sym_sigs, identity = cfg.sym.canonical(
                kernel, cfg.include_counters
            )
            result.stats.canonicalizations += 1
            if not sleep:
                sleep_sig = _NO_SLEEP
            else:
                sleep_sig = Counter(
                    store.sig_key(sym_sigs[id(pending[seq])])
                    for seq in sleep
                )
        else:
            identity = True
            fp = _fingerprint_mp(kernel, cfg.include_counters, cfg.sigs)
            if not sleep:
                sleep_sig = _NO_SLEEP
            elif type(store) is ExactStore:
                sleep_sig = _sleep_sig(kernel, sleep, cfg.sigs)
            else:
                sleep_sig = Counter(
                    store.sig_key(cfg.sigs.sig(pending[seq]))
                    for seq in sleep
                )
        to_expand = store.probe(fp, sleep_sig)
        if to_expand is None:
            if not identity:
                result.stats.orbit_hits += 1
            return None
    if to_expand is _EXPAND_ALL:
        result.states += 1
    else:
        result.reexpansions += 1
    if kernel.all_correct_decided() or not pending:
        _judge_leaf(kernel, path, cfg.judge, result)
        if fp is not None:
            store.set_covered(fp)
        return None
    if to_expand is _EXPAND_ALL:
        choices = [seq for seq in sorted(pending) if seq not in sleep]
    else:
        # Partial re-expansion: only events slept at the first visit but
        # not now.  Structurally identical events are interchangeable,
        # so any non-slept pending event with a needed signature serves.
        need = dict(to_expand)
        choices = []
        for seq in sorted(pending):
            if seq in sleep:
                continue
            if sym_sigs is not None:
                key = store.sig_key(sym_sigs[id(pending[seq])])
            else:
                key = store.sig_key(cfg.sigs.sig(pending[seq]))
            if need.get(key, 0) > 0:
                need[key] -= 1
                choices.append(seq)
    result.sleep_pruned += len(pending) - len(choices)
    if not choices:
        # Every continuation here is covered by a sibling's subtree.
        return None
    target = {seq: _event_target(pending[seq]) for seq in pending}
    crashed = kernel._crashed
    may_crash = {
        seq: tgt in cfg.may_crash and tgt not in crashed
        for seq, tgt in target.items()
    }
    return _Frame(kernel.snapshot(), path, sleep, choices, target, may_crash)


def _child_sleep(frame: _Frame, seq: int, por: bool) -> Set[int]:
    """Sleep set for the child reached by executing ``seq``.

    Sleep-set rule: the child inherits every event from the parent's
    sleep set plus the already-explored sibling choices, filtered to
    those *independent* of ``seq``.  Independence here: distinct target
    processes, neither of which can still crash.
    """
    if not por or frame.may_crash[seq]:
        return set()
    tgt = frame.target[seq]
    inherited = itertools.chain(frame.sleep, frame.choices[:frame.idx - 1])
    return {
        z for z in inherited
        if not frame.may_crash[z] and frame.target[z] != tgt
    }


#: DFS iterations between control-hook polls in the work-stealing
#: engine (stop/feed messages are answered within this many choices).
_CONTROL_INTERVAL = 64


def _run_mp_dfs(
    kernel: MPKernel,
    path: Tuple[int, ...],
    sleep: Set[int],
    cfg: _MPConfig,
    result: ExplorationResult,
    store: _VisitedStore,
    control: Optional[Callable] = None,
) -> None:
    """Depth-first exploration from the kernel's current state.

    One live kernel serves the whole search: descending into the first
    child of a fresh frame costs a single :meth:`MPKernel.step`;
    visiting later children restores the frame's snapshot first.
    """
    root = _process_mp_node(kernel, path, sleep, cfg, result, store)
    if cfg.stop_on_violation and result.violations:
        result.exhausted = False
        return
    if root is None:
        return
    _drive_mp_stack(kernel, [root], cfg, result, store, control)


def _drive_mp_stack(
    kernel: MPKernel,
    stack: List[_Frame],
    cfg: _MPConfig,
    result: ExplorationResult,
    store: _VisitedStore,
    control: Optional[Callable] = None,
) -> None:
    """Drive an explicit DFS stack of frames to completion (or abort).

    ``control``, when given, is called every :data:`_CONTROL_INTERVAL`
    iterations with ``(stack, result)``; returning ``True`` aborts the
    search (the work-stealing worker uses the hook to answer stop and
    shed-a-subtree requests without a second thread).  With no control
    hook and ``stop_on_violation`` off, behaviour is bit-identical to
    the historical single-loop DFS.
    """
    ticks = 0
    while stack:
        frame = stack[-1]
        if frame.idx >= len(frame.choices):
            stack.pop()
            continue
        if result.states >= cfg.max_states:
            result.exhausted = False
            return
        if control is not None:
            ticks += 1
            if ticks >= _CONTROL_INTERVAL:
                ticks = 0
                if control(stack, result):
                    result.exhausted = False
                    return
        seq = frame.choices[frame.idx]
        frame.idx += 1
        if not frame.fresh:
            kernel.restore(frame.snapshot)
        frame.fresh = False
        kernel.step(seq)
        child = _process_mp_node(
            kernel,
            frame.path + (seq,),
            _child_sleep(frame, seq, cfg.por),
            cfg, result, store,
        )
        if cfg.stop_on_violation and result.violations:
            result.exhausted = False
            return
        if child is not None:
            stack.append(child)


def _explore_mp_deepcopy(
    process_factory, inputs, t, crash_adversary,
    cfg: _MPConfig,
    result: ExplorationResult,
    store: _VisitedStore,
) -> None:
    """The legacy engine: fork every branch with ``copy.deepcopy``.

    Kept as the snapshot engine's correctness and benchmark baseline
    (``engine="deepcopy"``).  Runs full DFS -- POR never applies -- but
    shares the fingerprint and store, so its state counts match the
    snapshot engine's full-DFS counts exactly; only the speed differs.
    """
    root = _fresh_mp_kernel(process_factory, inputs, t, crash_adversary)
    stack: List[Tuple[MPKernel, Tuple[int, ...]]] = [(root, ())]
    while stack:
        if result.states >= cfg.max_states:
            result.exhausted = False
            break
        kernel, path = stack.pop()
        result.states += 1
        if kernel.all_correct_decided() or not kernel._pending:
            _judge_leaf(kernel, path, cfg.judge, result)
            if cfg.stop_on_violation and result.violations:
                result.exhausted = False
                break
            continue
        for seq in sorted(kernel._pending):
            branch = copy.deepcopy(kernel)
            branch.step(seq)
            if cfg.dedup:
                # A throwaway cache per call: deepcopied branches hold
                # fresh event objects, so the shared memo would only
                # accumulate dead entries.
                fp = _fingerprint_mp(branch, cfg.include_counters, _SigCache())
                if store.probe(fp, _NO_SLEEP) is None:
                    continue
            stack.append((branch, path + (seq,)))


@dataclasses.dataclass(frozen=True)
class _MPFrontierTask:
    """Everything a worker needs to explore one frontier subtree."""

    process_factory: Callable[[], Sequence[Process]]
    inputs: Tuple[Value, ...]
    k: int
    t: int
    validity: ValidityCondition
    crash_adversary: Optional[CrashAdversary]
    max_states: int
    dedup: bool
    verify: bool
    por: bool
    visited: VisitedSpec
    symmetry: bool
    snapshot: Any
    path: Tuple[int, ...]
    sleep: Tuple[int, ...]
    stop_on_violation: bool = False


def _mp_symmetry_for(
    kernel: MPKernel,
    inputs: Sequence[Value],
    t: int,
    crash_adversary,
    requested: bool,
    engine: str,
    dedup: bool,
    stats: ExplorationStats,
):
    """Resolve the symmetry canonicalizer and record why when disabled."""
    if not requested:
        return None
    if engine != "snapshot":
        stats.symmetry_reason = "deepcopy engine is the full-DFS baseline"
        return None
    if not dedup:
        stats.symmetry_reason = "dedup disabled (no visited store to key)"
        return None
    from repro.harness.symmetry import mp_symmetry_context

    sym, reason = mp_symmetry_context(
        kernel._processes, inputs, t, crash_adversary
    )
    if sym is None:
        stats.symmetry_reason = reason
        return None
    stats.symmetry = True
    stats.group_size = sym.group_size
    return sym


def _mp_frontier_worker(task: _MPFrontierTask) -> ExplorationResult:
    """Explore one frontier subtree in a fresh process (or inline)."""
    problem = SCProblem(
        n=len(task.inputs), k=task.k, t=task.t, validity=task.validity
    )
    adversary = task.crash_adversary
    kernel = _fresh_mp_kernel(
        task.process_factory, task.inputs, task.t, adversary
    )
    result = _empty_result()
    store = task.visited.build()
    result.stats.visited_store = store.kind
    sym = _mp_symmetry_for(
        kernel, task.inputs, task.t, adversary,
        task.symmetry, "snapshot", task.dedup, result.stats,
    )
    cfg = _MPConfig(
        judge=_make_judge(problem, task.verify),
        max_states=task.max_states,
        dedup=task.dedup,
        por=task.por,
        include_counters=_mp_counters_matter(adversary),
        may_crash=_may_crash_set(adversary),
        sym=sym,
        stop_on_violation=task.stop_on_violation,
    )
    kernel.restore(task.snapshot)
    _run_mp_dfs(kernel, task.path, set(task.sleep), cfg, result, store)
    result.cache_hits = store.hits
    result.cache_misses = store.misses
    store.flush()
    store.fill_stats(result.stats)
    return result


def _mp_counters_matter(adversary: Optional[CrashAdversary]) -> bool:
    return bool(_may_crash_set(adversary)) or _is_dynamic(adversary)


def _may_crash_set(adversary: Optional[CrashAdversary]) -> FrozenSet[int]:
    return adversary.potentially_faulty() if adversary is not None else frozenset()


def _explore_mp_frontier(
    process_factory, inputs, k, t, validity, crash_adversary,
    cfg: _MPConfig,
    verify: bool,
    jobs: int,
    result: ExplorationResult,
    store,
    visited_spec: VisitedSpec,
    symmetry: bool,
) -> None:
    """Breadth-first root expansion, then parallel per-subtree DFS.

    The frontier width is a constant (not a function of ``jobs``) and
    subtree results are merged in frontier order, so the merged result
    is identical for every worker count.  Worker subtrees use private
    stores; cross-subtree duplicates are re-explored rather than shared,
    which costs work but keeps the decomposition deterministic.
    """
    kernel = _fresh_mp_kernel(process_factory, inputs, t, crash_adversary)
    queue: deque = deque([(kernel.snapshot(), (), ())])
    while queue and len(queue) < _FRONTIER_WIDTH:
        if result.states >= cfg.max_states:
            result.exhausted = False
            return
        snapshot, path, sleep = queue.popleft()
        kernel.restore(snapshot)
        frame = _process_mp_node(
            kernel, path, set(sleep), cfg, result, store
        )
        if cfg.stop_on_violation and result.violations:
            result.exhausted = False
            break
        if frame is None:
            continue
        for _ in range(len(frame.choices)):
            seq = frame.choices[frame.idx]
            frame.idx += 1
            if not frame.fresh:
                kernel.restore(frame.snapshot)
            frame.fresh = False
            kernel.step(seq)
            child_sleep = tuple(sorted(_child_sleep(frame, seq, cfg.por)))
            queue.append((kernel.snapshot(), path + (seq,), child_sleep))
    result.cache_hits = store.hits
    result.cache_misses = store.misses
    store.flush()
    store.fill_stats(result.stats)
    if not queue or (cfg.stop_on_violation and result.violations):
        return
    tasks = [
        _MPFrontierTask(
            process_factory=process_factory,
            inputs=tuple(inputs),
            k=k, t=t, validity=validity,
            crash_adversary=crash_adversary,
            max_states=cfg.max_states,
            dedup=cfg.dedup,
            verify=verify,
            por=cfg.por,
            visited=visited_spec,
            symmetry=symmetry,
            snapshot=snapshot,
            path=path,
            sleep=tuple(sleep),
            stop_on_violation=cfg.stop_on_violation,
        )
        for snapshot, path, sleep in queue
    ]
    for part in parallel_map(_mp_frontier_worker, tasks, jobs=jobs):
        _merge_into(result, part)


def _normalize_visited(
    visited: Union[str, VisitedSpec]
) -> Tuple[VisitedSpec, Optional[str]]:
    """Resolve the spec; auto-provision a temp file for pathless disk.

    Returns ``(spec, auto_path)``; ``auto_path`` is non-None when this
    call created a temporary sqlite file the caller must delete after
    the exploration (user-supplied paths are never touched).
    """
    spec = VisitedSpec(kind=visited) if isinstance(visited, str) else visited
    if spec.kind == "disk" and not spec.disk_path:
        fd, path = tempfile.mkstemp(prefix="repro-visited-", suffix=".sqlite")
        os.close(fd)
        return dataclasses.replace(spec, disk_path=path), path
    return spec, None


def _cleanup_disk(auto_path: Optional[str]) -> None:
    if not auto_path:
        return
    for suffix in ("", "-wal", "-shm"):
        try:
            os.unlink(auto_path + suffix)
        except OSError:  # repro: noqa[ROB001] -- best-effort temp cleanup
            pass


def explore_mp(
    process_factory: Callable[[], Sequence[Process]],
    inputs: Sequence[Value],
    k: int,
    t: int,
    validity: ValidityCondition,
    crash_adversary=None,
    max_states: int = 200_000,
    dedup: bool = True,
    verify: bool = False,
    por: bool = True,
    engine: str = "snapshot",
    jobs: Optional[int] = None,
    visited: Union[str, VisitedSpec] = "exact",
    symmetry: bool = False,
    shared: bool = False,
    stop_on_violation: bool = False,
) -> ExplorationResult:
    """Explore *every* delivery order of one message-passing instance.

    Args:
        process_factory: builds the full process list (fresh state).
            Must be picklable (e.g. a :class:`SpecFactory`) when
            ``jobs`` exceeds 1.
        inputs, k, t, validity: the ``SC(k, t, C)`` instance.
        crash_adversary: optional fixed crash pattern explored alongside
            the schedules (use :func:`crash_patterns` to enumerate).
        max_states: search budget; when hit, ``exhausted`` is ``False``.
            The parallel engine applies it per subtree.
        dedup: collapse states via the visited-state store.
        verify: judge each leaf with the :mod:`repro.verify.oracles`
            stack instead of the bare outcome checks; violation records
            then map oracle names to findings.  Exploration runs with
            ``TraceMode.OFF``, so trace-dependent oracles stay vacuous.
        por: prune commuting interleavings with sleep sets.  Sound for
            static crash adversaries; automatically disabled for dynamic
            ones.  ``por=False`` is the full-DFS correctness reference.
        engine: ``"snapshot"`` (default) or ``"deepcopy"`` (the legacy
            forking strategy, kept as baseline; implies full DFS).
        jobs: when set, split the root fan-out across this many worker
            processes (frontier search).  Results are bit-identical for
            every value of ``jobs``, including 1.
        visited: visited-store kind (``"exact"`` / ``"compact"`` /
            ``"bitstate"``) or a :class:`VisitedSpec`; see
            :mod:`repro.harness.visited`.  Lossy stores may under-
            explore on hash collisions (recorded in ``result.stats``).
        symmetry: canonicalize states modulo process renaming (see
            :mod:`repro.harness.symmetry`).  Automatically disabled --
            with the reason recorded in ``result.stats`` -- for
            undeclared protocols, symmetry-breaking adversaries, and
            the deepcopy engine.
        shared: run the work-stealing shared-frontier engine
            (:mod:`repro.harness.shared_frontier`): one cross-worker
            visited table, subtree stealing, cross-worker cancellation.
            Requires ``jobs`` and the snapshot engine.  Verdict-
            identical to the default mode, not bit-identical.
        stop_on_violation: abandon the search at the first recorded
            violation (``exhausted`` is then ``False``).  Searches that
            find no violation are unaffected.
    """
    if engine not in ("snapshot", "deepcopy"):
        raise ValueError(f"unknown engine {engine!r}")
    if jobs is not None and engine != "snapshot":
        raise ValueError("parallel exploration requires engine='snapshot'")
    if shared and jobs is None:
        raise ValueError("shared exploration requires jobs")

    problem = SCProblem(n=len(inputs), k=k, t=t, validity=validity)
    result = _empty_result()
    visited_spec, auto_path = _normalize_visited(visited)
    try:
        store = visited_spec.build()
        result.stats.visited_store = store.kind
        kernel = _fresh_mp_kernel(process_factory, inputs, t, crash_adversary)
        sym = _mp_symmetry_for(
            kernel, inputs, t, crash_adversary,
            symmetry, engine, dedup, result.stats,
        )
        cfg = _MPConfig(
            judge=_make_judge(problem, verify),
            max_states=max_states,
            dedup=dedup,
            por=(
                por and engine == "snapshot"
                and not _is_dynamic(crash_adversary)
            ),
            include_counters=_mp_counters_matter(crash_adversary),
            may_crash=_may_crash_set(crash_adversary),
            sym=sym,
            stop_on_violation=stop_on_violation,
        )

        if shared:
            # Function-level import: shared_frontier imports this module.
            from repro.harness.shared_frontier import explore_shared_mp

            explore_shared_mp(
                process_factory, inputs, k, t, validity, crash_adversary,
                max_states, dedup, verify, cfg.por, visited_spec, symmetry,
                stop_on_violation, jobs, kernel, result,
            )
            return result

        if jobs is not None:
            _explore_mp_frontier(
                process_factory, inputs, k, t, validity, crash_adversary,
                cfg, verify, jobs, result, store, visited_spec, symmetry,
            )
            return result

        if engine == "deepcopy":
            _explore_mp_deepcopy(
                process_factory, inputs, t, crash_adversary, cfg, result,
                store,
            )
        else:
            _run_mp_dfs(kernel, (), set(), cfg, result, store)
        result.cache_hits = store.hits
        result.cache_misses = store.misses
        store.flush()
        store.fill_stats(result.stats)
        return result
    finally:
        _cleanup_disk(auto_path)


# ---------------------------------------------------------------------------
# shared-memory exploration


def _fresh_sm_kernel(
    programs_factory, inputs, t, crash_adversary, max_ticks
):
    from repro.shm.kernel import SMKernel

    kernel = SMKernel(
        list(programs_factory()),
        list(inputs),
        t=t,
        scheduler=None,
        crash_adversary=copy.deepcopy(crash_adversary),
        stop_when_decided=True,
        max_ticks=max_ticks,
        trace_mode=TraceMode.OFF,
    )
    kernel._apply_dynamic_crashes()
    return kernel


def _run_sm_dfs(
    kernel,
    judge,
    max_states: int,
    dedup: bool,
    result: ExplorationResult,
    store: _VisitedStore,
    sym=None,
    control: Optional[Callable] = None,
    stop_on_violation: bool = False,
) -> None:
    """Prefix-sharing DFS over scheduling choices of one live SM kernel.

    The stack holds choice prefixes.  Thanks to LIFO order, the next
    prefix usually extends the live kernel's current one by a single
    step (cost 1); only backtracks replay a prefix from the root
    (:meth:`SMKernel.restore`), and the replay totals are reported in
    ``replays``/``replayed_steps``.

    ``control`` follows the same contract as :func:`_drive_mp_stack`:
    called with ``(stack, result)`` every :data:`_CONTROL_INTERVAL`
    iterations, returning ``True`` aborts (sets ``exhausted=False``).
    """
    from repro.shm.kernel import SMSnapshot

    stack: List[Tuple[int, ...]] = [tuple(kernel.choices)]
    live = None  # the prefix the kernel currently sits at
    ticks = 0
    while stack:
        if result.states >= max_states:
            result.exhausted = False
            return
        if control is not None:
            ticks += 1
            if ticks >= _CONTROL_INTERVAL:
                ticks = 0
                if control(stack, result):
                    result.exhausted = False
                    return
        prefix = stack.pop()
        if prefix == live:
            pass
        elif live is not None and prefix[:-1] == live:
            kernel.step_pid(prefix[-1])
        else:
            kernel.restore(SMSnapshot(choices=prefix))
            result.replays += 1
            result.replayed_steps += len(prefix)
        live = prefix
        if dedup:
            if sym is not None:
                fingerprint, identity = sym.canonical(kernel)
                result.stats.canonicalizations += 1
            else:
                fingerprint, identity = _fingerprint_sm(kernel), True
            if store.probe(fingerprint, _NO_SLEEP) is None:
                if not identity:
                    result.stats.orbit_hits += 1
                continue
        result.states += 1
        if kernel.all_correct_decided() or not kernel.runnable_pids():
            _judge_leaf(kernel, prefix, judge, result)
            if stop_on_violation and result.violations:
                result.exhausted = False
                return
            continue
        for pid in sorted(kernel.runnable_pids()):
            stack.append(prefix + (pid,))


@dataclasses.dataclass(frozen=True)
class _SMFrontierTask:
    programs_factory: Callable[[], Sequence]
    inputs: Tuple[Value, ...]
    k: int
    t: int
    validity: ValidityCondition
    crash_adversary: Optional[CrashAdversary]
    max_states: int
    max_ticks: int
    dedup: bool
    verify: bool
    prefix: Tuple[int, ...]
    visited: VisitedSpec = VisitedSpec()
    symmetry: bool = False
    stop_on_violation: bool = False


def _sm_symmetry_for(
    kernel, inputs, t, crash_adversary, requested: bool, dedup: bool, stats
):
    """Resolve the SM symmetry context (or record why it is off)."""
    from repro.harness.symmetry import sm_symmetry_context

    if not requested:
        return None
    if not dedup:
        stats.symmetry_reason = "dedup disabled (no visited store to key)"
        return None
    sym, reason = sm_symmetry_context(
        kernel._programs, inputs, t, crash_adversary
    )
    if sym is None:
        stats.symmetry_reason = reason
        return None
    stats.symmetry = True
    stats.group_size = sym.group_size
    return sym


def _sm_frontier_worker(task: _SMFrontierTask) -> ExplorationResult:
    from repro.shm.kernel import SMSnapshot

    problem = SCProblem(
        n=len(task.inputs), k=task.k, t=task.t, validity=task.validity
    )
    judge = _make_judge(problem, task.verify)
    kernel = _fresh_sm_kernel(
        task.programs_factory, task.inputs, task.t,
        task.crash_adversary, task.max_ticks,
    )
    kernel.restore(SMSnapshot(choices=task.prefix))
    result = _empty_result()
    store = task.visited.build()
    result.stats.visited_store = store.kind
    sym = _sm_symmetry_for(
        kernel, task.inputs, task.t, task.crash_adversary,
        task.symmetry, task.dedup, result.stats,
    )
    _run_sm_dfs(
        kernel, judge, task.max_states, task.dedup, result, store, sym,
        stop_on_violation=task.stop_on_violation,
    )
    result.cache_hits = store.hits
    result.cache_misses = store.misses
    store.flush()
    store.fill_stats(result.stats)
    return result


def explore_sm(
    programs_factory: Callable[[], Sequence],
    inputs: Sequence[Value],
    k: int,
    t: int,
    validity: ValidityCondition,
    crash_adversary=None,
    max_states: int = 100_000,
    max_ticks_per_run: int = 5_000,
    verify: bool = False,
    dedup: bool = True,
    jobs: Optional[int] = None,
    visited: Union[str, VisitedSpec] = "exact",
    symmetry: bool = False,
    shared: bool = False,
    stop_on_violation: bool = False,
) -> ExplorationResult:
    """Explore every process interleaving of a shared-memory instance.

    Generator-based SM programs cannot be forked, so exploration shares
    prefixes: one live kernel is extended step-by-step along depth-first
    descents and replayed (:meth:`SMKernel.restore`) only on backtracks,
    replacing the old from-scratch re-execution of every prefix.  States
    are deduplicated via :func:`_fingerprint_sm` (a generator's hidden
    state is a pure function of its logged operation results).  No POR
    applies: distinct processes' register operations do not commute.

    ``jobs`` distributes the frontier of choice prefixes across worker
    processes, merged deterministically (``programs_factory`` must then
    be picklable, e.g. a :class:`SpecFactory`).  ``shared`` and
    ``stop_on_violation`` match :func:`explore_mp`: work-stealing over
    one cross-worker visited table, and first-violation cancellation.
    """
    if shared and jobs is None:
        raise ValueError("shared exploration requires jobs")
    problem = SCProblem(n=len(inputs), k=k, t=t, validity=validity)
    judge = _make_judge(problem, verify)
    result = _empty_result()
    visited_spec, auto_path = _normalize_visited(visited)
    try:
        store = visited_spec.build()
        result.stats.visited_store = store.kind

        kernel = _fresh_sm_kernel(
            programs_factory, inputs, t, crash_adversary, max_ticks_per_run
        )
        sym = _sm_symmetry_for(
            kernel, inputs, t, crash_adversary, symmetry, dedup, result.stats
        )

        if shared:
            from repro.harness.shared_frontier import explore_shared_sm

            explore_shared_sm(
                programs_factory, inputs, k, t, validity, crash_adversary,
                max_states, max_ticks_per_run, dedup, verify, visited_spec,
                symmetry, stop_on_violation, jobs, result,
            )
            return result

        if jobs is not None:
            _explore_sm_frontier(
                programs_factory, inputs, k, t, validity, crash_adversary,
                max_states, max_ticks_per_run, dedup, verify, judge,
                jobs, result, store, sym, visited_spec, symmetry,
                stop_on_violation,
            )
            return result

        _run_sm_dfs(
            kernel, judge, max_states, dedup, result, store, sym,
            stop_on_violation=stop_on_violation,
        )
        result.cache_hits = store.hits
        result.cache_misses = store.misses
        store.flush()
        store.fill_stats(result.stats)
        return result
    finally:
        _cleanup_disk(auto_path)


def _explore_sm_frontier(
    programs_factory, inputs, k, t, validity, crash_adversary,
    max_states, max_ticks, dedup, verify, judge,
    jobs: int,
    result: ExplorationResult,
    store: _VisitedStore,
    sym,
    visited_spec: VisitedSpec,
    symmetry: bool,
    stop_on_violation: bool = False,
) -> None:
    from repro.shm.kernel import SMSnapshot

    kernel = _fresh_sm_kernel(
        programs_factory, inputs, t, crash_adversary, max_ticks
    )
    queue: deque = deque([()])
    while queue and len(queue) < _FRONTIER_WIDTH:
        if result.states >= max_states:
            result.exhausted = False
            return
        prefix = queue.popleft()
        kernel.restore(SMSnapshot(choices=prefix))
        result.replays += 1
        result.replayed_steps += len(prefix)
        if dedup:
            if sym is not None:
                fingerprint, identity = sym.canonical(kernel)
                result.stats.canonicalizations += 1
            else:
                fingerprint, identity = _fingerprint_sm(kernel), True
            if store.probe(fingerprint, _NO_SLEEP) is None:
                if not identity:
                    result.stats.orbit_hits += 1
                continue
        result.states += 1
        if kernel.all_correct_decided() or not kernel.runnable_pids():
            _judge_leaf(kernel, prefix, judge, result)
            if stop_on_violation and result.violations:
                result.exhausted = False
                break
            continue
        for pid in sorted(kernel.runnable_pids()):
            queue.append(prefix + (pid,))
    result.cache_hits = store.hits
    result.cache_misses = store.misses
    store.flush()
    store.fill_stats(result.stats)
    if not queue or (stop_on_violation and result.violations):
        return
    tasks = [
        _SMFrontierTask(
            programs_factory=programs_factory,
            inputs=tuple(inputs),
            k=k, t=t, validity=validity,
            crash_adversary=crash_adversary,
            max_states=max_states,
            max_ticks=max_ticks,
            dedup=dedup,
            verify=verify,
            prefix=prefix,
            visited=visited_spec,
            symmetry=symmetry,
            stop_on_violation=stop_on_violation,
        )
        for prefix in queue
    ]
    for part in parallel_map(_sm_frontier_worker, tasks, jobs=jobs):
        _merge_into(result, part)


# ---------------------------------------------------------------------------
# picklable factories and crash-pattern enumeration


class SpecFactory:
    """Picklable process/program-list factory for a registry spec.

    Worker processes cannot unpickle lambdas; frontier exploration with
    ``jobs > 1`` therefore takes its factory in this form.  Calling the
    factory builds ``n`` fresh protocol instances via the spec's
    ``make`` hook.
    """

    def __init__(self, name: str, n: int, k: int, t: int) -> None:
        self.name = name
        self.n = n
        self.k = k
        self.t = t

    def __call__(self):
        import repro.protocols  # noqa: F401 -- populate the registry
        from repro.protocols.base import get_spec

        spec = get_spec(self.name)
        return [spec.make(self.n, self.k, self.t) for _ in range(self.n)]

    def __repr__(self) -> str:
        return (
            f"SpecFactory({self.name!r}, n={self.n}, k={self.k}, t={self.t})"
        )


def crash_patterns(
    n: int,
    t: int,
    max_sends: int,
    include_step_crashes: bool = True,
) -> List[Optional[CrashPlan]]:
    """Enumerate a family of crash plans within budget ``t``.

    Produces the failure-free plan, every single-victim plan crashing a
    process after ``0 .. max_sends`` sends (partial broadcasts), and --
    when ``include_step_crashes`` -- crash-before-step variants.  Combine
    with :func:`explore_mp` to quantify over failures as well as
    schedules.
    """
    plans: List[Optional[CrashPlan]] = [None]
    if t < 1:
        return plans
    for victim in range(n):
        for sends in range(max_sends + 1):
            plans.append(CrashPlan({victim: CrashPoint(after_sends=sends)}))
        if include_step_crashes:
            plans.append(CrashPlan({victim: CrashPoint(after_steps=0)}))
            plans.append(CrashPlan({victim: CrashPoint(after_steps=1)}))
    if t >= 2:
        for v1, v2 in itertools.combinations(range(n), 2):
            plans.append(CrashPlan({
                v1: CrashPoint(after_steps=0),
                v2: CrashPoint(after_sends=max_sends // 2),
            }))
    return plans
