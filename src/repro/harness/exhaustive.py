"""Exhaustive schedule exploration for small instances.

Monte-Carlo sweeps sample the schedule space; for small ``n`` the
message-passing kernel's nondeterminism can be explored *completely*:
every interleaving of pending events (and optionally every crash
pattern) is enumerated by depth-first search over kernel states.  A
protocol property verified here holds for **all** asynchronous runs of
the instance, which is the actual quantifier in the paper's lemmas.

The explorer forks kernel states with ``copy.deepcopy``; protocol
process objects must therefore hold only plain data (all protocols in
this library do).  State deduplication uses a structural fingerprint,
collapsing runs that reach the same configuration through different
event orders.

Typical use::

    outcome = explore_mp(
        lambda: [ProtocolA() for _ in range(3)],
        inputs=["v", "v", "w"],
        k=2, t=1, validity=RV2,
    )
    assert outcome.all_ok

Exploration cost grows factorially; ``max_states`` bounds the search
(the result then reports ``exhausted=False``).
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.problem import Outcome, SCProblem
from repro.core.validity import ValidityCondition
from repro.core.values import Value
from repro.failures.crash import CrashPlan, CrashPoint
from repro.runtime.kernel import MPKernel
from repro.runtime.traces import TraceMode
from repro.runtime.process import Process

__all__ = ["ExplorationResult", "crash_patterns", "explore_mp", "explore_sm"]


class _ScriptScheduler:
    """Feeds the kernel a predetermined next choice (set by the explorer)."""

    def __init__(self) -> None:
        self.next_choice: Optional[int] = None

    def pick(self, kernel) -> Optional[int]:
        return self.next_choice


@dataclasses.dataclass
class ExplorationResult:
    """Aggregate of a complete (or budget-capped) exploration."""

    runs: int
    states: int
    exhausted: bool
    violations: List[Tuple[Tuple[int, ...], Dict[str, object]]]
    max_distinct_decisions: int
    decision_sets: Set[frozenset]

    @property
    def all_ok(self) -> bool:
        return not self.violations


def _make_judge(problem: SCProblem, verify: bool):
    """Leaf judge: name -> description of everything wrong with a run.

    The default judge applies the bare outcome checks
    (:meth:`SCProblem.check`); with ``verify`` the full oracle stack of
    :mod:`repro.verify.oracles` runs instead and findings are keyed by
    oracle name.
    """
    if not verify:
        def judge(execution):
            verdicts = problem.check(execution.outcome)
            return {name: str(v) for name, v in verdicts.items() if not v}

        return judge

    # Function-level import: repro.verify pulls in harness modules.
    from repro.verify.oracles import check_execution

    def oracle_judge(execution):
        findings = {}
        for violation in check_execution(execution, problem):
            findings.setdefault(violation.oracle, str(violation))
        return findings

    return oracle_judge


def _fingerprint(kernel: MPKernel) -> Tuple:
    """Structural state of a kernel: pending events + process states.

    Two kernel states with the same fingerprint have identical futures,
    so only one needs expansion.  Process state is captured via
    ``__dict__`` (sorted, repr-normalized); pending events are a
    multiset of (sender, receiver, payload).
    """
    pending = tuple(sorted(
        (event.sender, event.receiver, repr(event.payload))
        if hasattr(event, "receiver")
        else (-1, event.pid, "start")
        for event in kernel.pending.values()
    ))
    processes = tuple(
        tuple(sorted((key, repr(value)) for key, value in p.__dict__.items()))
        for p in kernel._processes
    )
    contexts = tuple(
        (ctx.decided, repr(ctx.decision)) for ctx in kernel._contexts
    )
    return (pending, processes, contexts, tuple(sorted(kernel.crashed)))


def explore_mp(
    process_factory: Callable[[], Sequence[Process]],
    inputs: Sequence[Value],
    k: int,
    t: int,
    validity: ValidityCondition,
    crash_adversary=None,
    max_states: int = 200_000,
    dedup: bool = True,
    verify: bool = False,
) -> ExplorationResult:
    """Explore *every* delivery order of one message-passing instance.

    Args:
        process_factory: builds the full process list (fresh state).
        inputs, k, t, validity: the ``SC(k, t, C)`` instance.
        crash_adversary: optional fixed crash pattern explored alongside
            the schedules (use :func:`crash_patterns` to enumerate).
        max_states: search budget; when hit, ``exhausted`` is ``False``.
        dedup: collapse states with identical structural fingerprints.
        verify: judge each leaf with the :mod:`repro.verify.oracles`
            stack instead of the bare outcome checks; violation records
            then map oracle names to findings.  Exploration runs with
            ``TraceMode.OFF``, so trace-dependent oracles stay vacuous.
    """
    problem = SCProblem(n=len(inputs), k=k, t=t, validity=validity)
    judge = _make_judge(problem, verify)

    def fresh_kernel() -> Tuple[MPKernel, _ScriptScheduler]:
        scheduler = _ScriptScheduler()
        kernel = MPKernel(
            list(process_factory()),
            list(inputs),
            t=t,
            scheduler=scheduler,
            crash_adversary=copy.deepcopy(crash_adversary),
            stop_when_decided=True,
            # Forked kernels need no event logs, and deep-copying
            # accumulated traces would dominate exploration cost.
            trace_mode=TraceMode.OFF,
        )
        kernel._apply_dynamic_crashes()
        return kernel, scheduler

    result = ExplorationResult(
        runs=0,
        states=0,
        exhausted=True,
        violations=[],
        max_distinct_decisions=0,
        decision_sets=set(),
    )
    seen: Set[Tuple] = set()

    root_kernel, _ = fresh_kernel()
    stack: List[Tuple[MPKernel, Tuple[int, ...]]] = [(root_kernel, ())]

    while stack:
        if result.states >= max_states:
            result.exhausted = False
            break
        kernel, path = stack.pop()
        result.states += 1

        if kernel.all_correct_decided() or not kernel.pending:
            execution = kernel._result()
            result.runs += 1
            failures = judge(execution)
            decided = frozenset(execution.outcome.correct_decision_values())
            result.decision_sets.add(decided)
            result.max_distinct_decisions = max(
                result.max_distinct_decisions, len(decided)
            )
            if failures:
                result.violations.append((path, failures))
            continue

        for seq in sorted(kernel.pending):
            branch = copy.deepcopy(kernel)
            branch._scheduler = _ScriptScheduler()
            event = branch._pending.pop(seq)
            branch._execute(event)
            branch._apply_dynamic_crashes()
            branch.tick += 1
            if dedup:
                fp = _fingerprint(branch)
                if fp in seen:
                    continue
                seen.add(fp)
            stack.append((branch, path + (seq,)))

    return result


def explore_sm(
    programs_factory: Callable[[], Sequence],
    inputs: Sequence[Value],
    k: int,
    t: int,
    validity: ValidityCondition,
    crash_adversary=None,
    max_states: int = 100_000,
    max_ticks_per_run: int = 5_000,
    verify: bool = False,
) -> ExplorationResult:
    """Explore every process interleaving of a shared-memory instance.

    Generator-based SM programs cannot be forked with ``deepcopy``, so
    exploration proceeds by *prefix replay*: the DFS enumerates choice
    prefixes (which runnable process steps next) and re-executes each
    prefix from scratch.  Quadratic in run length per leaf, which is
    fine at the tiny sizes where the interleaving count is tractable
    (``n = 2`` fully, ``n = 3`` for short programs).
    """
    import itertools as _it

    from repro.shm.kernel import SMKernel

    problem = SCProblem(n=len(inputs), k=k, t=t, validity=validity)
    judge = _make_judge(problem, verify)

    class _PrefixScheduler:
        """Replays a choice prefix, then yields control back (None)."""

        def __init__(self, prefix: Tuple[int, ...]) -> None:
            self._prefix = prefix
            self._index = 0
            self.exhausted_cleanly = False

        def pick(self, kernel):
            if self._index >= len(self._prefix):
                self.exhausted_cleanly = True
                return None
            choice = self._prefix[self._index]
            self._index += 1
            if not kernel.is_runnable(choice):
                return None  # diverged (shouldn't happen) -> stall
            return choice

    def run_prefix(prefix: Tuple[int, ...]):
        """Execute a prefix; returns (kernel, finished_flag)."""
        scheduler = _PrefixScheduler(prefix)
        kernel = SMKernel(
            list(programs_factory()),
            list(inputs),
            t=t,
            scheduler=scheduler,
            crash_adversary=copy.deepcopy(crash_adversary),
            stop_when_decided=True,
            max_ticks=max_ticks_per_run,
            trace_mode=TraceMode.OFF,
        )
        try:
            kernel.run()
        except Exception:
            # the prefix ended mid-run (scheduler returned None while
            # correct processes undecided): exploration continues below
            pass
        return kernel

    result = ExplorationResult(
        runs=0,
        states=0,
        exhausted=True,
        violations=[],
        max_distinct_decisions=0,
        decision_sets=set(),
    )

    stack: List[Tuple[int, ...]] = [()]
    while stack:
        if result.states >= max_states:
            result.exhausted = False
            break
        prefix = stack.pop()
        result.states += 1
        kernel = run_prefix(prefix)
        if kernel.all_correct_decided() or not kernel.runnable_pids():
            execution = kernel._result()
            result.runs += 1
            failures = judge(execution)
            decided = frozenset(execution.outcome.correct_decision_values())
            result.decision_sets.add(decided)
            result.max_distinct_decisions = max(
                result.max_distinct_decisions, len(decided)
            )
            if failures:
                result.violations.append((prefix, failures))
            continue
        for pid in sorted(kernel.runnable_pids()):
            stack.append(prefix + (pid,))

    return result


def crash_patterns(
    n: int,
    t: int,
    max_sends: int,
    include_step_crashes: bool = True,
) -> List[Optional[CrashPlan]]:
    """Enumerate a family of crash plans within budget ``t``.

    Produces the failure-free plan, every single-victim plan crashing a
    process after ``0 .. max_sends`` sends (partial broadcasts), and --
    when ``include_step_crashes`` -- crash-before-step variants.  Combine
    with :func:`explore_mp` to quantify over failures as well as
    schedules.
    """
    plans: List[Optional[CrashPlan]] = [None]
    if t < 1:
        return plans
    for victim in range(n):
        for sends in range(max_sends + 1):
            plans.append(CrashPlan({victim: CrashPoint(after_sends=sends)}))
        if include_step_crashes:
            plans.append(CrashPlan({victim: CrashPoint(after_steps=0)}))
            plans.append(CrashPlan({victim: CrashPoint(after_steps=1)}))
    if t >= 2:
        for v1, v2 in itertools.combinations(range(n), 2):
            plans.append(CrashPlan({
                v1: CrashPoint(after_steps=0),
                v2: CrashPoint(after_sends=max_sends // 2),
            }))
    return plans
