"""Run one protocol execution and check the SC conditions against it.

The runner glues together a protocol (by spec or explicit
factory/program), a problem instance ``SC(k, t, C)``, an asynchrony
adversary (scheduler), and a failure adversary (crash plan or Byzantine
substitutions), executes the appropriate kernel, and returns an
:class:`ExperimentReport` with per-condition verdicts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Sequence

from repro.core.problem import Outcome, SCProblem, Verdict
from repro.core.validity import ValidityCondition, by_code
from repro.core.values import Value
from repro.failures.adversary import CrashAdversary
from repro.net.schedulers import FifoScheduler
from repro.protocols.base import ProtocolSpec
from repro.runtime.kernel import ExecutionResult, MPKernel
from repro.runtime.process import Process
from repro.runtime.traces import TraceMode
from repro.shm.kernel import SMKernel, SMProgram
from repro.shm.schedulers import RoundRobinScheduler

__all__ = ["ExperimentReport", "run_mp", "run_sm", "run_spec"]


@dataclasses.dataclass
class ExperimentReport:
    """Execution result plus the three condition verdicts.

    When the run was made with ``verify=True`` the full oracle stack of
    :mod:`repro.verify.oracles` was also applied and its findings are in
    ``oracle_violations`` (``None`` means the oracles were not run).
    """

    problem: SCProblem
    result: ExecutionResult
    verdicts: Dict[str, Verdict]
    oracle_violations: Optional[list] = None

    @property
    def outcome(self) -> Outcome:
        return self.result.outcome

    @property
    def ok(self) -> bool:
        """All of termination, agreement and validity hold (and, when the
        oracle stack ran, it found nothing either)."""
        return all(self.verdicts.values()) and not self.oracle_violations

    def violated(self) -> Dict[str, Verdict]:
        return {name: v for name, v in self.verdicts.items() if not v}

    def summary(self) -> str:
        status = "OK" if self.ok else "VIOLATED"
        details = "; ".join(str(v) for v in self.verdicts.values())
        if self.oracle_violations:
            oracle = "; ".join(str(v) for v in self.oracle_violations)
            details = f"{details}; oracles: {oracle}"
        return f"{self.problem}: {status} ({details})"


def _report(
    problem: SCProblem, result: ExecutionResult, verify: bool = False
) -> ExperimentReport:
    oracle_violations = None
    if verify:
        # Function-level import: repro.verify pulls in harness modules.
        from repro.verify.oracles import check_execution

        oracle_violations = check_execution(result, problem)
    return ExperimentReport(
        problem=problem,
        result=result,
        verdicts=problem.check(result.outcome),
        oracle_violations=oracle_violations,
    )


def run_mp(
    processes: Sequence[Process],
    inputs: Sequence[Value],
    k: int,
    t: int,
    validity: ValidityCondition,
    scheduler=None,
    crash_adversary: Optional[CrashAdversary] = None,
    byzantine: Sequence[int] = (),
    stop_when_decided: bool = True,
    max_ticks: int = 1_000_000,
    trace_mode: TraceMode = TraceMode.FULL,
    verify: bool = False,
) -> ExperimentReport:
    """Run a message-passing execution and check ``SC(k, t, validity)``.

    ``verify=True`` additionally runs the full oracle stack
    (:func:`repro.verify.oracles.check_execution`) over the execution.
    """
    problem = SCProblem(n=len(processes), k=k, t=t, validity=validity)
    kernel = MPKernel(
        processes=processes,
        inputs=inputs,
        t=t,
        scheduler=scheduler or FifoScheduler(),
        crash_adversary=crash_adversary,
        byzantine=byzantine,
        stop_when_decided=stop_when_decided,
        max_ticks=max_ticks,
        trace_mode=trace_mode,
    )
    return _report(problem, kernel.run(), verify=verify)


def run_sm(
    programs: Sequence[SMProgram],
    inputs: Sequence[Value],
    k: int,
    t: int,
    validity: ValidityCondition,
    scheduler=None,
    crash_adversary: Optional[CrashAdversary] = None,
    byzantine: Sequence[int] = (),
    stop_when_decided: bool = True,
    max_ticks: int = 1_000_000,
    trace_mode: TraceMode = TraceMode.FULL,
    verify: bool = False,
) -> ExperimentReport:
    """Run a shared-memory execution and check ``SC(k, t, validity)``.

    ``verify=True`` additionally runs the full oracle stack.
    """
    problem = SCProblem(n=len(programs), k=k, t=t, validity=validity)
    kernel = SMKernel(
        programs=programs,
        inputs=inputs,
        t=t,
        scheduler=scheduler or RoundRobinScheduler(),
        crash_adversary=crash_adversary,
        byzantine=byzantine,
        stop_when_decided=stop_when_decided,
        max_ticks=max_ticks,
        trace_mode=trace_mode,
    )
    return _report(problem, kernel.run(), verify=verify)


def run_spec(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    inputs: Sequence[Value],
    scheduler=None,
    crash_adversary: Optional[CrashAdversary] = None,
    byzantine_behaviours: Optional[Mapping[int, object]] = None,
    max_ticks: int = 1_000_000,
    trace_mode: TraceMode = TraceMode.FULL,
    verify: bool = False,
) -> ExperimentReport:
    """Run a registered protocol spec on one problem instance.

    Args:
        spec: the protocol to run; its ``validity`` is what gets checked.
        byzantine_behaviours: process id -> replacement behaviour (an MP
            :class:`~repro.runtime.process.Process` or SM program,
            matching the spec's model); only meaningful in the Byzantine
            models.
        trace_mode: trace retention of the underlying kernel; use
            ``TraceMode.COUNTERS`` on Monte-Carlo paths that never read
            individual records.
        verify: also run the full oracle stack over the execution and
            attach its findings to the report.
    """
    if len(inputs) != n:
        raise ValueError("inputs must have length n")
    byz = dict(byzantine_behaviours or {})
    if byz and spec.model.is_crash:
        raise ValueError(f"{spec.name} is a crash-model spec; use crash_adversary")
    validity = by_code(spec.validity)
    if spec.is_shared_memory:
        base_program = spec.make(n, k, t)
        programs = [byz.get(pid, base_program) for pid in range(n)]
        return run_sm(
            programs,
            inputs,
            k,
            t,
            validity,
            scheduler=scheduler,
            crash_adversary=crash_adversary,
            byzantine=sorted(byz),
            max_ticks=max_ticks,
            trace_mode=trace_mode,
            verify=verify,
        )
    processes = [byz.get(pid) or spec.make(n, k, t) for pid in range(n)]
    return run_mp(
        processes,
        inputs,
        k,
        t,
        validity,
        scheduler=scheduler,
        crash_adversary=crash_adversary,
        byzantine=sorted(byz),
        max_ticks=max_ticks,
        trace_mode=trace_mode,
        verify=verify,
    )
