"""Pluggable visited-state stores for the exhaustive explorer.

The explorer's visited store maps structural state fingerprints to the
sleep-set coverage they were expanded under (Godefroid's combination of
state caching with sleep sets; see
:class:`repro.harness.exhaustive._VisitedStore`'s original docstring,
now :class:`ExactStore`).  At ``n = 6`` the exact store's fingerprints
dominate memory, so the store is now pluggable:

* ``exact``    -- the reference store: full fingerprints, full sleep
  multisets, exact Godefroid semantics.  Lossless.
* ``compact``  -- same semantics on 8-byte BLAKE2b digests of the
  fingerprints and sleep signatures.  A digest collision could cut an
  unexplored branch, but with 64-bit digests the expected collision
  count is ``~states^2 / 2^65`` -- negligible at any reachable state
  count -- and the memory per entry drops by an order of magnitude.
* ``bitstate`` -- bitstate hashing (Holzmann): ``hashes`` bit positions
  per ``(fingerprint, sleep)`` key in a fixed ``bits``-wide bit array.
  Constant memory, but false positives are *expected* once the array
  fills; the store therefore records its saturation and an accumulated
  false-positive budget (the sum over hits of the probability that the
  hit was spurious), which certification uses to decide when a lossy
  "no violation found" verdict must be escalated to an exact re-run.
* ``disk``     -- a sqlite-backed cross-process membership table over
  ``(fingerprint, sleep)`` digests (:class:`DiskBackedStore`), layered
  on a worker-local :class:`CompactStore`.  The sqlite file survives
  worker crashes (WAL journaling -- a SIGKILLed writer loses at most
  its uncommitted batch, never corrupts the table) and lets runs that
  outgrow RAM spill the cross-worker table to disk.

The **shared-frontier** mode (``explore_mp(shared=True)``) additionally
wraps the worker-local store with a lock-free shared-memory digest
table (:class:`SharedVisitedStore` over :class:`SharedTables`): local
probes keep the exact Godefroid subset semantics inside each worker,
and the shared table adds identical-``(fingerprint, sleep)`` cuts
*across* workers.  The table is deliberately lock-free -- a SIGKILLed
worker can therefore never wedge survivors on a dead lock holder -- at
the price of racy lost inserts, which only ever cause re-exploration,
never a false hit beyond the 64-bit digest collision odds.

All digests are deterministic BLAKE2b over ``repr`` (never Python's
per-process-randomized ``hash``), so parallel frontier workers using
private stores still merge bit-identically for every worker count.

Soundness of every cross-worker layer follows the bitstate discipline:
keys include the sleep multiset, so a probe only ever hits a state some
worker expanded under the *identical* sleep coverage (or, for a leaf
cover, the empty one) -- extra re-exploration is possible, an unsound
cut is not.  Membership is recorded at expansion *start* (exactly like
the in-memory stores), so a cut against an expansion that never
finished (budget cap, early exit, killed worker) is only trusted when
the merged result reports ``exhausted=True`` -- which those events all
clear.

Sleep-set soundness of ``bitstate``: the bit positions key the sleep
multiset *together with* the fingerprint, so a probe only ever hits a
state recorded under the identical sleep coverage -- the partial
re-expansion machinery (which needs per-fingerprint coverage deltas) is
simply never exercised, trading extra re-exploration for bounded
memory, never soundness of a hit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import sqlite3
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "BitstateStore",
    "CompactStore",
    "DiskBackedStore",
    "DiskPairTable",
    "EXPAND_ALL",
    "ExactStore",
    "NO_SLEEP",
    "SharedBitstateStore",
    "SharedTables",
    "SharedVisitedStore",
    "VisitedSpec",
    "make_shared_store",
    "make_shared_tables",
    "make_visited_store",
]

#: Sentinel returned by ``probe`` for brand-new or fully re-expandable
#: nodes ("expand every non-slept choice").
EXPAND_ALL = object()

NO_SLEEP: Counter = Counter()


def _digest64(value: Any) -> int:
    """Deterministic 64-bit digest of a plain-data value via ``repr``."""
    raw = hashlib.blake2b(repr(value).encode(), digest_size=8).digest()
    return int.from_bytes(raw, "big")


class ExactStore:
    """The reference visited store: exact Godefroid sleep-set caching.

    Maps each structural fingerprint to the sleep set (a multiset of
    event signatures) its expansion is known to *cover*: the subtree
    explored every continuation except those in the stored set.

    * probe sleep ⊇ stored sleep -- the cached expansion covered every
      continuation the revisit needs; cut (a cache *hit*);
    * otherwise -- re-expand only the difference ``stored - probe`` and
      shrink the stored entry to the intersection, which the state is
      covered for from now on.

    Leaves are marked covered unconditionally (an ended run has no
    continuations to miss).  Without POR every sleep set is empty and
    the store degenerates to plain fingerprint membership.
    """

    kind = "exact"
    lossy = False

    __slots__ = ("_sleeps", "hits", "misses")

    def __init__(self) -> None:
        self._sleeps: Dict[Any, Counter] = {}
        self.hits = 0
        self.misses = 0

    def sig_key(self, sig: Tuple) -> Any:
        """Store-internal key for one event signature (identity here)."""
        return sig

    def fingerprint_key(self, fingerprint: Tuple) -> Any:
        return fingerprint

    def probe(self, fingerprint: Tuple, sleep: Counter):
        """Record a visit; says what (if anything) needs expansion.

        Returns ``None`` for a cache hit, :data:`EXPAND_ALL` for a new
        state, or the multiset of slept-at-first-visit event signature
        keys that the current visit must still expand.
        """
        key = self.fingerprint_key(fingerprint)
        stored = self._sleeps.get(key)
        if stored is None:
            self._sleeps[key] = +sleep
            self.misses += 1
            return EXPAND_ALL
        if all(sleep[sig] >= need for sig, need in stored.items()):
            self.hits += 1
            return None
        missing = stored - sleep
        self._sleeps[key] = stored & sleep
        self.misses += 1
        return missing

    def set_covered(self, fingerprint: Tuple) -> None:
        """Mark a state fully covered (every future probe hits)."""
        self._sleeps[self.fingerprint_key(fingerprint)] = NO_SLEEP

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    def flush(self) -> None:
        """Persist buffered membership (no-op for in-memory stores)."""

    def fill_stats(self, stats) -> None:
        """Contribute store-specific counters to an ExplorationStats."""


class CompactStore(ExactStore):
    """Godefroid caching on 64-bit digests of fingerprints and sigs.

    Sleep multisets must be keyed consistently with the store --
    partial re-expansion matches pending events by signature key -- so
    :meth:`sig_key` digests signatures too.
    """

    kind = "compact"
    lossy = True

    __slots__ = ("_memo_fp", "_memo_key")

    def __init__(self) -> None:
        super().__init__()
        self._memo_fp: Any = None
        self._memo_key = 0

    def sig_key(self, sig: Tuple) -> Any:
        return _digest64(sig)

    def fingerprint_key(self, fingerprint: Tuple) -> Any:
        # One-entry identity memo: the shared-frontier hybrid store
        # re-keys the same fingerprint object several times per
        # expansion (local probe, pair digest, bare-fp digest), and the
        # full-fingerprint repr+BLAKE2b dominates its per-state
        # overhead.  ``is`` keeps the memo exact.
        if fingerprint is self._memo_fp:
            return self._memo_key
        key = _digest64(fingerprint)
        self._memo_fp = fingerprint
        self._memo_key = key
        return key


class BitstateStore:
    """Bitstate (Bloom-filter) membership over ``(fingerprint, sleep)``.

    ``bits`` is the bit-array width (a power of two); each key sets
    ``hashes`` positions derived from one 16-byte BLAKE2b digest.  A
    probe whose positions are all already set is reported as a hit --
    possibly falsely, with probability ``saturation ** hashes`` -- so
    the accumulated expected number of false hits is tracked in
    ``false_positive_budget`` and surfaced through the exploration
    stats.  ``set_covered`` is a no-op: leaves were already recorded by
    their probe, and widening coverage cannot be represented in a bit.
    """

    kind = "bitstate"
    lossy = True

    __slots__ = (
        "bits", "hashes", "_array", "set_bits", "hits", "misses",
        "false_positive_budget",
    )

    def __init__(self, bits: int = 1 << 23, hashes: int = 4) -> None:
        if bits <= 0 or bits & (bits - 1):
            raise ValueError("bits must be a positive power of two")
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray(bits // 8)
        self.set_bits = 0
        self.hits = 0
        self.misses = 0
        self.false_positive_budget = 0.0

    def sig_key(self, sig: Tuple) -> Any:
        return _digest64(sig)

    def _positions(self, fingerprint: Tuple, sleep: Counter):
        key = (fingerprint, tuple(sorted(sleep.items())))
        raw = hashlib.blake2b(repr(key).encode(), digest_size=16).digest()
        mask = self.bits - 1
        value = int.from_bytes(raw, "big")
        positions = []
        for _ in range(self.hashes):
            positions.append(value & mask)
            value >>= 24
        return positions

    def probe(self, fingerprint: Tuple, sleep: Counter):
        positions = self._positions(fingerprint, sleep)
        array = self._array
        hit = True
        for position in positions:
            byte, bit = position >> 3, 1 << (position & 7)
            if not array[byte] & bit:
                hit = False
                array[byte] |= bit
                self.set_bits += 1
        if hit:
            self.hits += 1
            self.false_positive_budget += self.saturation ** self.hashes
            return None
        self.misses += 1
        return EXPAND_ALL

    def set_covered(self, fingerprint: Tuple) -> None:
        pass

    @property
    def saturation(self) -> float:
        return self.set_bits / self.bits

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    def flush(self) -> None:
        """Persist buffered membership (no-op for in-memory stores)."""

    def fill_stats(self, stats) -> None:
        stats.bitstate_bits = self.bits
        stats.bitstate_set_bits += self.set_bits
        stats.bitstate_saturation = max(
            stats.bitstate_saturation, self.saturation
        )
        stats.bitstate_fp_budget += self.false_positive_budget


# --------------------------------------------------------------------------
# Cross-worker stores (shared-frontier mode and the disk-backed table)
# --------------------------------------------------------------------------

#: Open-addressing probe chain cap.  A saturated chain reports "absent"
#: without inserting -- more re-exploration, never an unsound cut.
_PROBE_LIMIT = 128


def _table_probe(array, digest: int, insert: bool = True) -> bool:
    """Lock-free open-addressed membership probe over a RawArray('Q').

    Returns True iff ``digest`` was already present.  Absent digests
    are written into the first empty slot when ``insert`` is set.  The
    read/write pair is deliberately unsynchronized: two workers racing
    on one empty slot lose one insert, which only costs a future
    re-exploration (aligned 8-byte loads/stores are atomic on every
    platform CPython runs multiprocessing on, so no torn digests).
    """
    slots = len(array)
    digest = digest or 1  # slot value 0 marks "empty"
    index = digest % slots
    for _ in range(min(_PROBE_LIMIT, slots)):
        value = array[index]
        if value == digest:
            return True
        if value == 0:
            if insert:
                array[index] = digest
            return False
        index += 1
        if index == slots:
            index = 0
    return False


class SharedTables:
    """Fork-inherited lock-free digest tables for the shared frontier.

    ``pairs`` keys (fingerprint, sleep) expansions; ``fps`` keys bare
    fingerprints and only feeds the duplicate-work counter.  For the
    bitstate kind a shared bit array replaces both.  RawArrays are not
    picklable over pipes: this object must be handed to workers at
    ``Process(...)`` creation under the fork start method.
    """

    __slots__ = ("slots", "pairs", "fps", "bitstate")

    def __init__(self, slots: int = 1 << 21, bits: Optional[int] = None):
        if slots <= 0:
            raise ValueError("slots must be positive")
        self.slots = slots
        if bits is None:
            self.pairs = multiprocessing.RawArray("Q", slots)
            self.fps = multiprocessing.RawArray("Q", slots)
            self.bitstate = None
        else:
            if bits <= 0 or bits & (bits - 1):
                raise ValueError("bits must be a positive power of two")
            self.pairs = None
            self.fps = None
            self.bitstate = multiprocessing.RawArray("B", bits // 8)


class _HybridStore:
    """Worker-local Godefroid store layered over a cross-worker table.

    Probes hit the local store first, preserving exact subset-hit
    semantics within a worker (a lone worker behaves like the serial
    store).  On a local miss, a hit in the cross-worker table for the
    identical ``(fingerprint, sleep)`` digest means some worker already
    expanded this state under the same coverage, so the subtree is
    cut.  Genuine expansions record the pair digest; the bare
    fingerprint table answers "has *any* worker expanded this state
    before" for the ``reexplored_states`` duplicate-work counter.
    """

    lossy = True
    shared = True

    __slots__ = ("local", "shared_hits", "reexplored")

    def __init__(self, local: ExactStore) -> None:
        self.local = local
        self.shared_hits = 0
        self.reexplored = 0

    # -- subclass hooks: cross-worker membership (probe-and-insert) --
    def _pair_seen(self, digest: int) -> bool:
        raise NotImplementedError

    def _fp_seen(self, digest: int) -> bool:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        return self.local.kind

    def sig_key(self, sig: Tuple) -> Any:
        return self.local.sig_key(sig)

    def fingerprint_key(self, fingerprint: Tuple) -> Any:
        return self.local.fingerprint_key(fingerprint)

    def _pair_digest(self, fingerprint: Tuple, sleep: Counter) -> int:
        # sorted by repr: sig keys may be raw tuples (exact local) or
        # 64-bit digests (compact local); repr orders both totally.
        items = tuple(sorted(sleep.items(), key=repr))
        return _digest64((self.local.fingerprint_key(fingerprint), items))

    def probe(self, fingerprint: Tuple, sleep: Counter):
        verdict = self.local.probe(fingerprint, sleep)
        if verdict is None:
            return None
        if self._pair_seen(self._pair_digest(fingerprint, sleep)):
            # Another worker expanded this state under identical sleep
            # coverage; the local store already recorded the visit, so
            # its coverage claim is backed by that worker's expansion.
            self.shared_hits += 1
            return None
        if verdict is EXPAND_ALL:
            fp_digest = _digest64(self.local.fingerprint_key(fingerprint))
            if self._fp_seen(fp_digest):
                self.reexplored += 1
        return verdict

    def set_covered(self, fingerprint: Tuple) -> None:
        self.local.set_covered(fingerprint)
        self._pair_seen(self._pair_digest(fingerprint, NO_SLEEP))

    @property
    def hits(self) -> int:
        return self.local.hits + self.shared_hits

    @property
    def misses(self) -> int:
        return max(0, self.local.misses - self.shared_hits)

    @property
    def probes(self) -> int:
        return self.local.probes

    def flush(self) -> None:
        """Persist buffered cross-worker membership (no-op in memory)."""

    def fill_stats(self, stats) -> None:
        self.local.fill_stats(stats)
        stats.shared_store = True
        stats.shared_hits += self.shared_hits
        stats.reexplored_states += self.reexplored


class SharedVisitedStore(_HybridStore):
    """Hybrid store over fork-shared lock-free digest tables."""

    __slots__ = ("_tables",)

    def __init__(self, local: ExactStore, tables: SharedTables) -> None:
        super().__init__(local)
        if tables.pairs is None:
            raise ValueError("SharedVisitedStore needs digest tables")
        self._tables = tables

    def _pair_seen(self, digest: int) -> bool:
        return _table_probe(self._tables.pairs, digest)

    def _fp_seen(self, digest: int) -> bool:
        return _table_probe(self._tables.fps, digest)


class SharedBitstateStore(BitstateStore):
    """Bitstate membership over a fork-shared byte array.

    The read-modify-write on shared bytes is unsynchronized: a racy
    lost bit only weakens the filter.  ``set_bits`` counts only this
    worker's sets, so saturation and the false-positive budget are
    per-worker lower bounds -- certification treats every shared store
    as lossy regardless, so the escalation path does not depend on
    their precision.
    """

    shared = True

    __slots__ = ("shared_hits", "reexplored")

    def __init__(self, array, bits: int, hashes: int = 4) -> None:
        if bits <= 0 or bits & (bits - 1):
            raise ValueError("bits must be a positive power of two")
        if len(array) != bits // 8:
            raise ValueError("shared array does not match bits")
        self.bits = bits
        self.hashes = hashes
        self._array = array
        self.set_bits = 0
        self.hits = 0
        self.misses = 0
        self.false_positive_budget = 0.0
        self.shared_hits = 0
        self.reexplored = 0

    def fill_stats(self, stats) -> None:
        super().fill_stats(stats)
        stats.shared_store = True


_DISK_SCHEMA = """
CREATE TABLE IF NOT EXISTS pairs (d INTEGER PRIMARY KEY) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS fps (d INTEGER PRIMARY KEY) WITHOUT ROWID;
"""


def _signed(digest: int) -> int:
    """Map an unsigned 64-bit digest into sqlite's signed INTEGER."""
    return digest - (1 << 64) if digest >= (1 << 63) else digest


class DiskPairTable:
    """Sqlite-backed cross-process digest membership.

    WAL journaling makes concurrent multi-process access safe and a
    SIGKILLed writer lose at most its uncommitted batch -- committed
    rows can never be corrupted.  Inserts are buffered and flushed in
    short ``executemany`` transactions so the write lock is never held
    across exploration work; buffered rows are visible to their own
    worker through the positive cache before they reach the file, and
    to other workers only after the flush (a visibility delay costs
    duplicate work, never soundness).  Connections are lazy and
    re-opened after fork (sqlite connections must not cross one).
    """

    _FLUSH = 256
    _CACHE_CAP = 1 << 16

    __slots__ = (
        "path", "_conn", "_pid", "_pending_pairs", "_pending_fps", "_cache",
    )

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None
        self._pending_pairs: List[Tuple[int]] = []
        self._pending_fps: List[Tuple[int]] = []
        self._cache: set = set()

    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            with conn:
                conn.executescript(_DISK_SCHEMA)
            self._conn = conn
            self._pid = pid
            self._pending_pairs = []
            self._pending_fps = []
            self._cache = set()
        return self._conn

    def _seen(self, table: str, digest: int) -> bool:
        conn = self._connection()
        pending = self._pending_pairs if table == "pairs" else self._pending_fps
        key = _signed(digest)
        mark = (table, key)
        if mark in self._cache:
            return True
        row = conn.execute(
            f"SELECT 1 FROM {table} WHERE d = ?", (key,)
        ).fetchone()
        if row is not None:
            self._mark(mark)
            return True
        pending.append((key,))
        self._mark(mark)
        if len(pending) >= self._FLUSH:
            self.flush()
        return False

    def _mark(self, mark) -> None:
        if len(self._cache) >= self._CACHE_CAP:
            self.flush()
            self._cache.clear()
        self._cache.add(mark)

    def seen_pair(self, digest: int) -> bool:
        return self._seen("pairs", digest)

    def seen_fp(self, digest: int) -> bool:
        return self._seen("fps", digest)

    def flush(self) -> None:
        if not self._pending_pairs and not self._pending_fps:
            return
        conn = self._connection()
        with conn:
            if self._pending_pairs:
                conn.executemany(
                    "INSERT OR IGNORE INTO pairs (d) VALUES (?)",
                    self._pending_pairs,
                )
                self._pending_pairs.clear()
            if self._pending_fps:
                conn.executemany(
                    "INSERT OR IGNORE INTO fps (d) VALUES (?)",
                    self._pending_fps,
                )
                self._pending_fps.clear()


class DiskBackedStore(_HybridStore):
    """Hybrid store whose cross-worker table lives in a sqlite file.

    The file is shared by *path* (picklable), so this store works in
    every execution mode: serial, private frontier, and shared
    frontier.  Workers that fork or unpickle the spec each open their
    own WAL connection against the same file.
    """

    kind = "disk"

    __slots__ = ("table",)

    def __init__(self, path: str) -> None:
        super().__init__(CompactStore())
        self.table = DiskPairTable(path)

    def _pair_seen(self, digest: int) -> bool:
        return self.table.seen_pair(digest)

    def _fp_seen(self, digest: int) -> bool:
        return self.table.seen_fp(digest)

    def flush(self) -> None:
        self.table.flush()


@dataclasses.dataclass(frozen=True)
class VisitedSpec:
    """Picklable visited-store configuration (threaded to workers)."""

    kind: str = "exact"
    bitstate_bits: int = 1 << 23
    bitstate_hashes: int = 4
    disk_path: Optional[str] = None
    shared_slots: int = 1 << 21

    def build(self) -> Union[ExactStore, BitstateStore, DiskBackedStore]:
        if self.kind == "exact":
            return ExactStore()
        if self.kind == "compact":
            return CompactStore()
        if self.kind == "bitstate":
            return BitstateStore(self.bitstate_bits, self.bitstate_hashes)
        if self.kind == "disk":
            if not self.disk_path:
                raise ValueError(
                    "disk visited store requires disk_path; explore_mp/"
                    "explore_sm fill in a temporary file when omitted"
                )
            return DiskBackedStore(self.disk_path)
        raise ValueError(f"unknown visited store kind {self.kind!r}")


def make_shared_tables(spec: VisitedSpec) -> Optional[SharedTables]:
    """Allocate the fork-shared tables the spec's shared store needs."""
    if spec.kind == "disk":
        return None  # the sqlite file is the shared medium
    if spec.kind == "bitstate":
        return SharedTables(slots=1, bits=spec.bitstate_bits)
    return SharedTables(slots=spec.shared_slots)


def make_shared_store(spec: VisitedSpec, tables: Optional[SharedTables]):
    """Build one worker's store for shared-frontier exploration."""
    if spec.kind == "disk":
        return spec.build()
    if tables is None:
        raise ValueError(f"shared {spec.kind} store needs SharedTables")
    if spec.kind == "bitstate":
        return SharedBitstateStore(
            tables.bitstate, spec.bitstate_bits, spec.bitstate_hashes
        )
    return SharedVisitedStore(spec.build(), tables)


def make_visited_store(
    visited: Union[str, VisitedSpec]
) -> Tuple[Union[ExactStore, BitstateStore], VisitedSpec]:
    """Resolve a kind string or spec into (store, normalized spec)."""
    spec = VisitedSpec(kind=visited) if isinstance(visited, str) else visited
    return spec.build(), spec
