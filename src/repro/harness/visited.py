"""Pluggable visited-state stores for the exhaustive explorer.

The explorer's visited store maps structural state fingerprints to the
sleep-set coverage they were expanded under (Godefroid's combination of
state caching with sleep sets; see
:class:`repro.harness.exhaustive._VisitedStore`'s original docstring,
now :class:`ExactStore`).  At ``n = 6`` the exact store's fingerprints
dominate memory, so the store is now pluggable:

* ``exact``    -- the reference store: full fingerprints, full sleep
  multisets, exact Godefroid semantics.  Lossless.
* ``compact``  -- same semantics on 8-byte BLAKE2b digests of the
  fingerprints and sleep signatures.  A digest collision could cut an
  unexplored branch, but with 64-bit digests the expected collision
  count is ``~states^2 / 2^65`` -- negligible at any reachable state
  count -- and the memory per entry drops by an order of magnitude.
* ``bitstate`` -- bitstate hashing (Holzmann): ``hashes`` bit positions
  per ``(fingerprint, sleep)`` key in a fixed ``bits``-wide bit array.
  Constant memory, but false positives are *expected* once the array
  fills; the store therefore records its saturation and an accumulated
  false-positive budget (the sum over hits of the probability that the
  hit was spurious), which certification uses to decide when a lossy
  "no violation found" verdict must be escalated to an exact re-run.

All digests are deterministic BLAKE2b over ``repr`` (never Python's
per-process-randomized ``hash``), so parallel frontier workers using
private stores still merge bit-identically for every worker count.

Sleep-set soundness of ``bitstate``: the bit positions key the sleep
multiset *together with* the fingerprint, so a probe only ever hits a
state recorded under the identical sleep coverage -- the partial
re-expansion machinery (which needs per-fingerprint coverage deltas) is
simply never exercised, trading extra re-exploration for bounded
memory, never soundness of a hit.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import Counter
from typing import Any, Dict, Tuple, Union

__all__ = [
    "BitstateStore",
    "CompactStore",
    "EXPAND_ALL",
    "ExactStore",
    "NO_SLEEP",
    "VisitedSpec",
    "make_visited_store",
]

#: Sentinel returned by ``probe`` for brand-new or fully re-expandable
#: nodes ("expand every non-slept choice").
EXPAND_ALL = object()

NO_SLEEP: Counter = Counter()


def _digest64(value: Any) -> int:
    """Deterministic 64-bit digest of a plain-data value via ``repr``."""
    raw = hashlib.blake2b(repr(value).encode(), digest_size=8).digest()
    return int.from_bytes(raw, "big")


class ExactStore:
    """The reference visited store: exact Godefroid sleep-set caching.

    Maps each structural fingerprint to the sleep set (a multiset of
    event signatures) its expansion is known to *cover*: the subtree
    explored every continuation except those in the stored set.

    * probe sleep ⊇ stored sleep -- the cached expansion covered every
      continuation the revisit needs; cut (a cache *hit*);
    * otherwise -- re-expand only the difference ``stored - probe`` and
      shrink the stored entry to the intersection, which the state is
      covered for from now on.

    Leaves are marked covered unconditionally (an ended run has no
    continuations to miss).  Without POR every sleep set is empty and
    the store degenerates to plain fingerprint membership.
    """

    kind = "exact"
    lossy = False

    __slots__ = ("_sleeps", "hits", "misses")

    def __init__(self) -> None:
        self._sleeps: Dict[Any, Counter] = {}
        self.hits = 0
        self.misses = 0

    def sig_key(self, sig: Tuple) -> Any:
        """Store-internal key for one event signature (identity here)."""
        return sig

    def fingerprint_key(self, fingerprint: Tuple) -> Any:
        return fingerprint

    def probe(self, fingerprint: Tuple, sleep: Counter):
        """Record a visit; says what (if anything) needs expansion.

        Returns ``None`` for a cache hit, :data:`EXPAND_ALL` for a new
        state, or the multiset of slept-at-first-visit event signature
        keys that the current visit must still expand.
        """
        key = self.fingerprint_key(fingerprint)
        stored = self._sleeps.get(key)
        if stored is None:
            self._sleeps[key] = +sleep
            self.misses += 1
            return EXPAND_ALL
        if all(sleep[sig] >= need for sig, need in stored.items()):
            self.hits += 1
            return None
        missing = stored - sleep
        self._sleeps[key] = stored & sleep
        self.misses += 1
        return missing

    def set_covered(self, fingerprint: Tuple) -> None:
        """Mark a state fully covered (every future probe hits)."""
        self._sleeps[self.fingerprint_key(fingerprint)] = NO_SLEEP

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    def fill_stats(self, stats) -> None:
        """Contribute store-specific counters to an ExplorationStats."""


class CompactStore(ExactStore):
    """Godefroid caching on 64-bit digests of fingerprints and sigs.

    Sleep multisets must be keyed consistently with the store --
    partial re-expansion matches pending events by signature key -- so
    :meth:`sig_key` digests signatures too.
    """

    kind = "compact"
    lossy = True

    __slots__ = ()

    def sig_key(self, sig: Tuple) -> Any:
        return _digest64(sig)

    def fingerprint_key(self, fingerprint: Tuple) -> Any:
        return _digest64(fingerprint)


class BitstateStore:
    """Bitstate (Bloom-filter) membership over ``(fingerprint, sleep)``.

    ``bits`` is the bit-array width (a power of two); each key sets
    ``hashes`` positions derived from one 16-byte BLAKE2b digest.  A
    probe whose positions are all already set is reported as a hit --
    possibly falsely, with probability ``saturation ** hashes`` -- so
    the accumulated expected number of false hits is tracked in
    ``false_positive_budget`` and surfaced through the exploration
    stats.  ``set_covered`` is a no-op: leaves were already recorded by
    their probe, and widening coverage cannot be represented in a bit.
    """

    kind = "bitstate"
    lossy = True

    __slots__ = (
        "bits", "hashes", "_array", "set_bits", "hits", "misses",
        "false_positive_budget",
    )

    def __init__(self, bits: int = 1 << 23, hashes: int = 4) -> None:
        if bits <= 0 or bits & (bits - 1):
            raise ValueError("bits must be a positive power of two")
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray(bits // 8)
        self.set_bits = 0
        self.hits = 0
        self.misses = 0
        self.false_positive_budget = 0.0

    def sig_key(self, sig: Tuple) -> Any:
        return _digest64(sig)

    def _positions(self, fingerprint: Tuple, sleep: Counter):
        key = (fingerprint, tuple(sorted(sleep.items())))
        raw = hashlib.blake2b(repr(key).encode(), digest_size=16).digest()
        mask = self.bits - 1
        value = int.from_bytes(raw, "big")
        positions = []
        for _ in range(self.hashes):
            positions.append(value & mask)
            value >>= 24
        return positions

    def probe(self, fingerprint: Tuple, sleep: Counter):
        positions = self._positions(fingerprint, sleep)
        array = self._array
        hit = True
        for position in positions:
            byte, bit = position >> 3, 1 << (position & 7)
            if not array[byte] & bit:
                hit = False
                array[byte] |= bit
                self.set_bits += 1
        if hit:
            self.hits += 1
            self.false_positive_budget += self.saturation ** self.hashes
            return None
        self.misses += 1
        return EXPAND_ALL

    def set_covered(self, fingerprint: Tuple) -> None:
        pass

    @property
    def saturation(self) -> float:
        return self.set_bits / self.bits

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    def fill_stats(self, stats) -> None:
        stats.bitstate_bits = self.bits
        stats.bitstate_set_bits += self.set_bits
        stats.bitstate_saturation = max(
            stats.bitstate_saturation, self.saturation
        )
        stats.bitstate_fp_budget += self.false_positive_budget


@dataclasses.dataclass(frozen=True)
class VisitedSpec:
    """Picklable visited-store configuration (threaded to workers)."""

    kind: str = "exact"
    bitstate_bits: int = 1 << 23
    bitstate_hashes: int = 4

    def build(self) -> Union[ExactStore, BitstateStore]:
        if self.kind == "exact":
            return ExactStore()
        if self.kind == "compact":
            return CompactStore()
        if self.kind == "bitstate":
            return BitstateStore(self.bitstate_bits, self.bitstate_hashes)
        raise ValueError(f"unknown visited store kind {self.kind!r}")


def make_visited_store(
    visited: Union[str, VisitedSpec]
) -> Tuple[Union[ExactStore, BitstateStore], VisitedSpec]:
    """Resolve a kind string or spec into (store, normalized spec)."""
    spec = VisitedSpec(kind=visited) if isinstance(visited, str) else visited
    return spec.build(), spec
