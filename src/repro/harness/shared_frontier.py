"""Work-stealing shared-frontier engine for the exhaustive explorer.

The private-store frontier (``explore_mp(jobs=...)``) buys determinism
with duplicate work: every worker re-explores whatever its subtree
shares with the others, and the one-shot fixed-width decomposition
leaves late workers idle while one deep subtree finishes.  This engine
trades bit-identity for throughput (the result is *verdict-identical*:
same violations verdict, state counts may vary):

* **One cross-worker visited table.**  Every worker's store is built by
  :func:`repro.harness.visited.make_shared_store`: a private Godefroid
  store layered over a fork-shared lock-free digest table (or the
  sqlite-backed disk table), so a subtree another worker already
  expanded under the same sleep coverage is cut instead of re-explored.

* **Work stealing.**  The parent process is a pipe-based scheduler: a
  deque of pending subtree roots is dealt to idle workers, and when it
  runs dry, busy workers are asked to shed the shallowest frame of
  their DFS stack (the largest pending subtree) for reassignment.

* **Cross-worker cancellation.**  ``stop_on_violation`` and the global
  ``max_states`` budget broadcast a stop; workers poll their pipe every
  :data:`repro.harness.exhaustive._CONTROL_INTERVAL` DFS iterations.

Crash-safety is structural: there are **no shared locks anywhere** --
the digest tables are lock-free, the disk table is WAL sqlite, and all
coordination runs over per-worker pipes owned by the parent -- so a
SIGKILLed worker can never wedge survivors on a dead lock holder.  The
scheduler detects the EOF on the dead worker's pipe, counts it in
``stats.worker_failures``, and clears ``exhausted`` (the dead worker's
assigned subtree is lost, so the search cannot claim completeness).

Workers are forked, not spawned: the shared RawArray tables are not
picklable and must be inherited at ``Process`` creation.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Callable, List, Optional, Tuple

from repro.core.problem import SCProblem
from repro.harness import exhaustive as _ex
from repro.harness.parallel import resolve_jobs
from repro.harness.visited import (
    VisitedSpec, make_shared_store, make_shared_tables,
)

__all__ = ["explore_shared_mp", "explore_shared_sm"]

#: Test seam: when set, called with the list of worker ``Process``
#: objects right after they start (the chaos suite uses it to SIGKILL
#: a worker mid-run and assert the shared store survives).
_CHAOS_HOOK: Optional[Callable[[List[multiprocessing.Process]], None]] = None


@dataclasses.dataclass(frozen=True)
class _SharedSetup:
    """Everything a forked worker needs to build its exploration."""

    mode: str  # "mp" | "sm"
    factory: Any
    inputs: Tuple
    k: int
    t: int
    validity: Any
    crash_adversary: Any
    max_states: int
    max_ticks: int  # sm only
    dedup: bool
    verify: bool
    por: bool  # mp only
    visited: VisitedSpec
    symmetry: bool
    stop_on_violation: bool


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _shed_mp(stack) -> Optional[Tuple]:
    """Detach the shallowest still-expandable frame (largest subtree).

    The top frame is never shed -- it is the one the live kernel is
    driving.  Frames are self-contained (own snapshot and choice list),
    so deleting one from the middle of the stack does not disturb the
    frames above or below it.
    """
    for i in range(len(stack) - 1):
        frame = stack[i]
        if frame.idx < len(frame.choices):
            del stack[i]
            return (
                "frame", frame.snapshot, frame.path, tuple(frame.sleep),
                tuple(frame.choices), frame.idx, dict(frame.target),
                dict(frame.may_crash),
            )
    return None


def _shed_sm(stack) -> Optional[Tuple]:
    """Detach the oldest pending choice prefix (shallowest subtree)."""
    if len(stack) < 2:
        return None
    return ("prefix", stack.pop(0))


class _Control:
    """Worker-side control hook plugged into the DFS loops.

    Called every ``_CONTROL_INTERVAL`` iterations with the live DFS
    stack: reports the progress delta (the scheduler enforces the
    global state budget from these), answers ``feed`` requests by
    shedding a subtree, and latches ``stop``.  Returning ``True``
    aborts the current task with ``exhausted=False``.
    """

    __slots__ = ("conn", "shed", "reported", "stop")

    def __init__(self, conn, shed) -> None:
        self.conn = conn
        self.shed = shed
        self.reported = 0
        self.stop = False

    def begin(self) -> None:
        self.reported = 0

    def __call__(self, stack, result) -> bool:
        conn = self.conn
        delta = result.states - self.reported
        if delta:
            conn.send(("prog", delta))
            self.reported = result.states
        while conn.poll():
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                self.stop = True
            elif kind == "feed":
                conn.send(("shed", self.shed(stack)))
        return self.stop


def _worker_main(conn, tables, setup: _SharedSetup) -> None:
    try:
        if setup.mode == "mp":
            _mp_worker_loop(conn, tables, setup)
        else:
            _sm_worker_loop(conn, tables, setup)
    except (EOFError, OSError, KeyboardInterrupt):  # repro: noqa[ROB001]
        # Scheduler went away; there is nothing left to report to.  The
        # parent counts the dead pipe as a worker failure on its side.
        pass
    finally:
        try:
            conn.close()
        except OSError:  # repro: noqa[ROB001] -- already torn down
            pass


def _finish_worker(conn, store) -> None:
    """Send the once-per-worker store counters and exit."""
    tail = _ex._empty_result()
    store.flush()
    tail.cache_hits = store.hits
    tail.cache_misses = store.misses
    store.fill_stats(tail.stats)
    conn.send(("final", tail))


def _mp_worker_loop(conn, tables, setup: _SharedSetup) -> None:
    problem = SCProblem(
        n=len(setup.inputs), k=setup.k, t=setup.t, validity=setup.validity
    )
    store = make_shared_store(setup.visited, tables)
    kernel = _ex._fresh_mp_kernel(
        setup.factory, setup.inputs, setup.t, setup.crash_adversary
    )
    sym = _ex._mp_symmetry_for(
        kernel, setup.inputs, setup.t, setup.crash_adversary,
        setup.symmetry, "snapshot", setup.dedup, _ex.ExplorationStats(),
    )
    cfg = _ex._MPConfig(
        judge=_ex._make_judge(problem, setup.verify),
        max_states=setup.max_states,
        dedup=setup.dedup,
        por=setup.por,
        include_counters=_ex._mp_counters_matter(setup.crash_adversary),
        may_crash=_ex._may_crash_set(setup.crash_adversary),
        sym=sym,
        stop_on_violation=setup.stop_on_violation,
    )
    control = _Control(conn, _shed_mp)
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "exit":
            break
        if kind == "feed":
            conn.send(("shed", None))  # idle: nothing to shed
            continue
        if kind != "task":
            continue  # late "stop" while idle
        payload = message[1]
        part = _ex._empty_result()
        control.begin()
        if payload[0] == "root":
            _, snapshot, path, sleep = payload
            kernel.restore(snapshot)
            _ex._run_mp_dfs(
                kernel, tuple(path), set(sleep), cfg, part, store,
                control=control,
            )
        else:  # a stolen frame: already probed/counted by its producer
            (_, snapshot, path, sleep, choices, idx, target,
             may_crash) = payload
            frame = _ex._Frame(
                snapshot, tuple(path), set(sleep), list(choices),
                dict(target), dict(may_crash),
            )
            frame.idx = idx
            frame.fresh = False
            _ex._drive_mp_stack(
                kernel, [frame], cfg, part, store, control=control
            )
        store.flush()
        conn.send(("done", part, control.reported))
    _finish_worker(conn, store)


def _sm_worker_loop(conn, tables, setup: _SharedSetup) -> None:
    from repro.shm.kernel import SMSnapshot

    problem = SCProblem(
        n=len(setup.inputs), k=setup.k, t=setup.t, validity=setup.validity
    )
    judge = _ex._make_judge(problem, setup.verify)
    store = make_shared_store(setup.visited, tables)
    kernel = _ex._fresh_sm_kernel(
        setup.factory, setup.inputs, setup.t, setup.crash_adversary,
        setup.max_ticks,
    )
    sym = _ex._sm_symmetry_for(
        kernel, setup.inputs, setup.t, setup.crash_adversary,
        setup.symmetry, setup.dedup, _ex.ExplorationStats(),
    )
    control = _Control(conn, _shed_sm)
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "exit":
            break
        if kind == "feed":
            conn.send(("shed", None))
            continue
        if kind != "task":
            continue
        prefix = tuple(message[1][1])
        part = _ex._empty_result()
        control.begin()
        kernel.restore(SMSnapshot(choices=prefix))
        part.replays += 1
        part.replayed_steps += len(prefix)
        _ex._run_sm_dfs(
            kernel, judge, setup.max_states, setup.dedup, part, store, sym,
            control=control, stop_on_violation=setup.stop_on_violation,
        )
        store.flush()
        conn.send(("done", part, control.reported))
    _finish_worker(conn, store)


# ---------------------------------------------------------------------------
# scheduler (parent) side
# ---------------------------------------------------------------------------


class _Handle:
    """Scheduler-side view of one worker."""

    __slots__ = ("index", "proc", "conn", "busy", "dead", "feed_sent",
                 "no_shed")

    def __init__(self, index, proc, conn) -> None:
        self.index = index
        self.proc = proc
        self.conn = conn
        self.busy = False
        self.dead = False
        self.feed_sent = False  # one outstanding feed request at a time
        self.no_shed = False    # last feed came back empty; wait for prog


def _run_scheduler(
    setup: _SharedSetup,
    jobs: Optional[int],
    result,
    root_payload: Tuple,
) -> None:
    workers = max(1, resolve_jobs(jobs))
    ctx = multiprocessing.get_context("fork")
    tables = make_shared_tables(setup.visited)
    handles: List[_Handle] = []
    for index in range(workers):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, tables, setup),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handles.append(_Handle(index, proc, parent_conn))
    if _CHAOS_HOOK is not None:
        _CHAOS_HOOK([handle.proc for handle in handles])

    #: (payload, producer worker index or None for the root)
    pending: deque = deque([(root_payload, None)])
    progress = 0
    stolen = 0
    failures = 0
    stopping = False
    dropped = False

    def mark_dead(handle: _Handle) -> None:
        nonlocal failures
        if handle.dead:
            return
        handle.dead = True
        handle.busy = False
        failures += 1
        try:
            handle.conn.close()
        except OSError:  # repro: noqa[ROB001] -- failure already counted
            pass

    def broadcast_stop() -> None:
        nonlocal stopping, dropped
        if stopping:
            return
        stopping = True
        if pending:
            dropped = True
            pending.clear()
        for handle in handles:
            if handle.busy and not handle.dead:
                try:
                    handle.conn.send(("stop",))
                except OSError:
                    mark_dead(handle)

    while True:
        if not stopping:
            for handle in handles:
                if not pending:
                    break
                if handle.dead or handle.busy:
                    continue
                payload, producer = pending[0]
                try:
                    handle.conn.send(("task", payload))
                except OSError:
                    mark_dead(handle)
                    continue
                pending.popleft()
                if producer is not None and producer != handle.index:
                    stolen += 1
                handle.busy = True
                handle.no_shed = False
        busy = [h for h in handles if h.busy and not h.dead]
        if not busy:
            if (pending and not stopping
                    and any(not h.dead for h in handles)):
                continue  # workers freed up above; deal the queue again
            break
        idle_exists = any(not h.dead and not h.busy for h in handles)
        if not pending and not stopping and idle_exists:
            for handle in busy:
                if not handle.feed_sent and not handle.no_shed:
                    try:
                        handle.conn.send(("feed",))
                        handle.feed_sent = True
                    except OSError:
                        mark_dead(handle)
        busy = [h for h in handles if h.busy and not h.dead]
        if not busy:
            continue
        ready = mp_connection.wait([h.conn for h in busy], timeout=5.0)
        for conn in ready:
            handle = next(h for h in handles if h.conn is conn)
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # The worker died mid-task (chaos kill, OOM, crash).
                # Its assigned subtree is lost; completeness is gone.
                mark_dead(handle)
                continue
            kind = message[0]
            if kind == "prog":
                progress += message[1]
                handle.no_shed = False  # stack likely regrown; retry feeds
                if progress >= setup.max_states:
                    broadcast_stop()
            elif kind == "shed":
                handle.feed_sent = False
                if message[1] is None:
                    handle.no_shed = True
                elif stopping:
                    dropped = True
                else:
                    pending.append((message[1], handle.index))
            elif kind == "done":
                part, reported = message[1], message[2]
                progress += part.states - reported
                handle.busy = False
                handle.feed_sent = False
                _ex._merge_into(result, part)
                if setup.stop_on_violation and part.violations:
                    broadcast_stop()
                if progress >= setup.max_states:
                    broadcast_stop()

    if pending:
        dropped = True
    for handle in handles:
        if not handle.dead:
            try:
                handle.conn.send(("exit",))
            except OSError:
                mark_dead(handle)
    for handle in handles:
        if handle.dead:
            continue
        while True:  # drain stragglers until the final store counters
            if not handle.conn.poll(10.0):
                mark_dead(handle)
                break
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                mark_dead(handle)
                break
            if message[0] == "final":
                _ex._merge_into(result, message[1])
                break
            if message[0] == "done":
                _ex._merge_into(result, message[1])
            elif message[0] == "shed" and message[1] is not None:
                dropped = True  # late shed: that subtree never ran
    for handle in handles:
        handle.proc.join(timeout=10.0)
        if handle.proc.is_alive():
            handle.proc.kill()
            handle.proc.join(timeout=10.0)

    result.stats.stolen_subtrees += stolen
    result.stats.worker_failures += failures
    result.exhausted = (
        result.exhausted and not dropped and failures == 0 and not stopping
    )


# ---------------------------------------------------------------------------
# entry points (called by explore_mp / explore_sm)
# ---------------------------------------------------------------------------


def explore_shared_mp(
    process_factory, inputs, k, t, validity, crash_adversary,
    max_states, dedup, verify, por, visited_spec, symmetry,
    stop_on_violation, jobs, kernel, result,
) -> None:
    setup = _SharedSetup(
        mode="mp",
        factory=process_factory,
        inputs=tuple(inputs),
        k=k, t=t, validity=validity,
        crash_adversary=crash_adversary,
        max_states=max_states,
        max_ticks=0,
        dedup=dedup,
        verify=verify,
        por=por,
        visited=visited_spec,
        symmetry=symmetry,
        stop_on_violation=stop_on_violation,
    )
    _run_scheduler(setup, jobs, result, ("root", kernel.snapshot(), (), ()))


def explore_shared_sm(
    programs_factory, inputs, k, t, validity, crash_adversary,
    max_states, max_ticks, dedup, verify, visited_spec, symmetry,
    stop_on_violation, jobs, result,
) -> None:
    setup = _SharedSetup(
        mode="sm",
        factory=programs_factory,
        inputs=tuple(inputs),
        k=k, t=t, validity=validity,
        crash_adversary=crash_adversary,
        max_states=max_states,
        max_ticks=max_ticks,
        dedup=dedup,
        verify=verify,
        por=False,
        visited=visited_spec,
        symmetry=symmetry,
        stop_on_violation=stop_on_violation,
    )
    _run_scheduler(setup, jobs, result, ("prefix", ()))
