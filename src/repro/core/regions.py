"""Solvability region maps over the ``(k, t)`` grid.

The paper's evaluation artifacts (Figs. 2, 4, 5 and 6) are, for each
model, six panels -- one per validity condition -- shading the
``(k, t)`` plane at ``n = 64`` into solvable, impossible, and open
regions.  :func:`region_map` reproduces one panel as data;
:mod:`repro.analysis.figures` renders it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.solvability import Classification, Solvability, classify
from repro.core.validity import ValidityCondition
from repro.models import Model

__all__ = ["RegionMap", "frontier", "region_map", "separation_points"]


@dataclasses.dataclass(frozen=True)
class RegionMap:
    """Classification of every grid point of one figure panel."""

    model: Model
    validity: ValidityCondition
    n: int
    k_values: Tuple[int, ...]
    t_values: Tuple[int, ...]
    grid: Dict[Tuple[int, int], Classification]

    def status(self, k: int, t: int) -> Solvability:
        return self.grid[(k, t)].status

    def points(self, status: Solvability) -> List[Tuple[int, int]]:
        """All ``(k, t)`` points with the given status."""
        return sorted(
            point for point, c in self.grid.items() if c.status is status
        )

    def count(self, status: Solvability) -> int:
        return sum(1 for c in self.grid.values() if c.status is status)

    def citations_used(self) -> Tuple[str, ...]:
        """All lemma ids that decide at least one point, sorted."""
        seen = set()
        for c in self.grid.values():
            seen.update(c.citations)
        return tuple(sorted(seen))


def region_map(
    model: Model,
    validity: ValidityCondition,
    n: int,
    k_values: Optional[Iterable[int]] = None,
    t_values: Optional[Iterable[int]] = None,
) -> RegionMap:
    """Classify a ``(k, t)`` grid for one model and validity condition.

    Defaults reproduce the paper's panels: ``2 <= k <= n - 1`` and
    ``1 <= t <= n``.
    """
    ks = tuple(k_values) if k_values is not None else tuple(range(2, n))
    ts = tuple(t_values) if t_values is not None else tuple(range(1, n + 1))
    grid = {
        (k, t): classify(model, validity, n, k, t)
        for k in ks
        for t in ts
    }
    return RegionMap(
        model=model,
        validity=validity,
        n=n,
        k_values=ks,
        t_values=ts,
        grid=grid,
    )


def separation_points(
    weaker_model: Model,
    stronger_model: Model,
    validity: ValidityCondition,
    n: int,
) -> List[Tuple[int, int]]:
    """Points solvable in ``stronger_model`` but impossible in ``weaker_model``.

    The paper's model-separation headlines are exactly these sets: e.g.
    for RV2, shared memory strictly beats message passing on the whole
    band above ``t = (k-1)n/k`` (PROTOCOL E vs. Lemma 3.3).
    """
    weaker = region_map(weaker_model, validity, n)
    stronger = region_map(stronger_model, validity, n)
    return sorted(
        point
        for point in weaker.grid
        if weaker.grid[point].status is Solvability.IMPOSSIBLE
        and stronger.grid[point].status is Solvability.POSSIBLE
    )


def frontier(region: RegionMap) -> Dict[int, Dict[str, Optional[int]]]:
    """Per-``k`` crossover thresholds of one panel.

    For each ``k``, reports ``max_possible_t`` (largest ``t`` still
    solvable), ``min_impossible_t`` (smallest ``t`` already impossible),
    and ``open_ts`` count.  These are the series EXPERIMENTS.md compares
    against the paper's closed-form bounds.
    """
    out: Dict[int, Dict[str, Optional[int]]] = {}
    for k in region.k_values:
        possible = [t for t in region.t_values if region.status(k, t) is Solvability.POSSIBLE]
        impossible = [t for t in region.t_values if region.status(k, t) is Solvability.IMPOSSIBLE]
        open_ts = [t for t in region.t_values if region.status(k, t) is Solvability.OPEN]
        out[k] = {
            "max_possible_t": max(possible) if possible else None,
            "min_impossible_t": min(impossible) if impossible else None,
            "open_count": len(open_ts),
        }
    return out
