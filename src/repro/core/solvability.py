"""The solvability classifier: POSSIBLE / IMPOSSIBLE / OPEN per variant.

This module reproduces the paper's headline result -- the demarcation
between possible and impossible for all 24 problem variants (four models
x six validity conditions) -- as an executable function.
:func:`classify` answers, for any ``(model, validity, n, k, t)``,
whether ``SC(k, t, C)`` is solvable, citing the lemmas that decide it.

The classifier works exactly the way the paper argues:

1. degenerate cases first (Section 2): ``t = 0`` and ``k >= n`` are
   trivially solvable; ``k = 1`` with ``t >= 1`` is the classical
   consensus impossibility [17], [24];
2. otherwise, every registered lemma whose claim *carries* to the
   queried model and validity (via the Fig. 1 lattice and the
   model-strength relations, see :mod:`repro.core.lemmas`) is evaluated
   on ``(n, k, t)``; any applicable possibility yields POSSIBLE, any
   applicable impossibility yields IMPOSSIBLE, neither yields OPEN.

A point classified both ways would mean the lemma set is inconsistent;
:class:`ClassificationConflict` is raised then (and the test suite
brute-forces wide ranges to show it never happens).
"""

from __future__ import annotations

import dataclasses
import enum
import functools
from typing import Iterable, Optional, Tuple

from repro.core.lemmas import ALL_LEMMAS, Lemma, LemmaKind, z_function
from repro.core.validity import ValidityCondition, by_code
from repro.models import Model

__all__ = [
    "Classification",
    "ClassificationConflict",
    "Solvability",
    "classify",
    "is_open",
    "is_possible",
    "possibility_lemmas_for",
    "z_function",
]


class ClassificationConflict(RuntimeError):
    """A point was derivable both possible and impossible (lemma bug)."""


class Solvability(enum.Enum):
    POSSIBLE = "possible"
    IMPOSSIBLE = "impossible"
    OPEN = "open"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class Classification:
    """The verdict for one ``SC(k, t, C)`` instance in one model."""

    status: Solvability
    citations: Tuple[str, ...]
    note: str = ""

    def __str__(self) -> str:
        cites = ", ".join(self.citations) if self.citations else "-"
        return f"{self.status.value} [{cites}]"


def _possibility_carries(source: Model, target: Model) -> bool:
    """Whether a protocol for ``source`` is also one for ``target``.

    Message-passing protocols run in shared memory via SIMULATION;
    Byzantine-tolerant protocols tolerate crashes.
    """
    comm_ok = source.communication is target.communication or (
        source.is_message_passing and target.is_shared_memory
    )
    fail_ok = source.failure_mode is target.failure_mode or (
        source.is_byzantine and target.is_crash
    )
    return comm_ok and fail_ok


def _impossibility_carries(source: Model, target: Model) -> bool:
    """Whether an impossibility in ``source`` applies in ``target``.

    Dual of :func:`_possibility_carries`: shared-memory impossibilities
    apply to message passing, crash impossibilities to Byzantine.
    """
    return _possibility_carries(target, source)


def _applicable(
    target_model: Model,
    target_validity: ValidityCondition,
    kind: str,
) -> Iterable[Lemma]:
    for entry in ALL_LEMMAS:
        if entry.kind != kind:
            continue
        source_validity = by_code(entry.validity)
        if kind == LemmaKind.POSSIBILITY:
            if not _possibility_carries(entry.model, target_model):
                continue
            # A protocol guaranteeing the (stronger) source validity also
            # guarantees any weaker target validity.
            if not source_validity.implies(target_validity):
                continue
        else:
            if not _impossibility_carries(entry.model, target_model):
                continue
            # Impossibility of a weaker problem implies impossibility of
            # any stronger one.
            if not target_validity.implies(source_validity):
                continue
        yield entry


def possibility_lemmas_for(
    model: Model, validity: ValidityCondition
) -> Tuple[Lemma, ...]:
    """All possibility lemmas whose claim carries to ``(model, validity)``."""
    return tuple(_applicable(model, validity, LemmaKind.POSSIBILITY))


def impossibility_lemmas_for(
    model: Model, validity: ValidityCondition
) -> Tuple[Lemma, ...]:
    """All impossibility lemmas whose claim carries to ``(model, validity)``."""
    return tuple(_applicable(model, validity, LemmaKind.IMPOSSIBILITY))


__all__.append("impossibility_lemmas_for")


def _unique(items: Iterable[str]) -> Tuple[str, ...]:
    seen = []
    for item in items:
        if item not in seen:
            seen.append(item)
    return tuple(seen)


@functools.lru_cache(maxsize=None)
def classify(
    model: Model,
    validity: ValidityCondition,
    n: int,
    k: int,
    t: int,
) -> Classification:
    """Classify ``SC(k, t, validity)`` over ``n`` processes in ``model``.

    Memoized: every argument is hashable (validity conditions are
    module-level singletons) and :class:`Classification` is immutable,
    so region sweeps that revisit the same ``(model, validity, n, k,
    t)`` point skip re-deriving the exact :class:`~fractions.Fraction`
    bounds.  Use ``classify.cache_clear()`` to reset.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 1 <= k:
        raise ValueError("k must be at least 1")
    if t < 0:
        raise ValueError("t must be non-negative")

    if t == 0:
        return Classification(
            Solvability.POSSIBLE,
            ("Section 2",),
            "t = 0: trivially solvable (adopt any fixed process's input).",
        )
    if k >= n:
        return Classification(
            Solvability.POSSIBLE,
            ("Section 2",),
            "k >= n: each process decides its own input, even under "
            "Byzantine failures and validity SV1.",
        )
    if k == 1:
        return Classification(
            Solvability.IMPOSSIBLE,
            ("Section 2", "[17] FLP", "[24] Loui-AbuAmara"),
            "k = 1 is consensus: unsolvable for t >= 1 under any "
            "nontrivial validity condition.",
        )

    possible_by = tuple(
        entry
        for entry in _applicable(model, validity, LemmaKind.POSSIBILITY)
        if entry.applies(n, k, t)
    )
    impossible_by = tuple(
        entry
        for entry in _applicable(model, validity, LemmaKind.IMPOSSIBILITY)
        if entry.applies(n, k, t)
    )

    if possible_by and impossible_by:
        raise ClassificationConflict(
            f"SC(k={k}, t={t}, {validity.code}) in {model} derived both "
            f"possible ({[str(e) for e in possible_by]}) and impossible "
            f"({[str(e) for e in impossible_by]})"
        )
    if possible_by:
        return Classification(
            Solvability.POSSIBLE,
            _unique(entry.lemma_id for entry in possible_by),
        )
    if impossible_by:
        return Classification(
            Solvability.IMPOSSIBLE,
            _unique(entry.lemma_id for entry in impossible_by),
        )
    return Classification(
        Solvability.OPEN,
        (),
        "no lemma covers this point; the paper leaves it open",
    )


def is_possible(model: Model, validity: ValidityCondition, n: int, k: int, t: int) -> bool:
    return classify(model, validity, n, k, t).status is Solvability.POSSIBLE


def is_open(model: Model, validity: ValidityCondition, n: int, k: int, t: int) -> bool:
    return classify(model, validity, n, k, t).status is Solvability.OPEN
