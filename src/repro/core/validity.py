"""The six validity conditions and their "weaker than" lattice (Fig. 1).

Section 2 of the paper defines six validity conditions for ``SC(k)``:

=====  ==========  =========================================================
Code   Name        Statement
=====  ==========  =========================================================
SV1    strong V1   The decision of any correct process equals the input of
                   some *correct* process.
SV2    strong V2   If all correct processes start with ``v`` then correct
                   processes decide ``v``.
RV1    regular V1  The decision of any correct process equals the input of
                   some process.
RV2    regular V2  If *all* processes start with ``v`` then correct
                   processes decide ``v``.
WV1    weak V1     If there are no failures, then the decision of any
                   process equals the input of some process.
WV2    weak V2     If there are no failures and all processes start with
                   ``v``, then the decision of any process is ``v``.
=====  ==========  =========================================================

``SC(C)`` is *weaker* than ``SC(D)`` when the validity condition ``C`` is
logically implied by ``D``; any run of a protocol solving ``SC(D)`` then
also solves ``SC(C)``, and any impossibility for ``SC(C)`` carries over to
``SC(D)``.  Fig. 1 of the paper draws this partial order; it is exposed
here via :meth:`ValidityCondition.implies` and :func:`weaker_than`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.core.problem import Outcome, Verdict
from repro.core.values import Value

__all__ = [
    "ALL_VALIDITY_CONDITIONS",
    "RV1",
    "RV2",
    "SV1",
    "SV2",
    "ValidityCondition",
    "WV1",
    "WV2",
    "by_code",
    "implication_pairs",
    "stronger_than",
    "weaker_than",
]


def _single_common_value(values) -> Tuple[bool, Value]:
    """Whether all ``values`` coincide; returns (flag, the value or None)."""
    distinct = set(values)
    if len(distinct) == 1:
        return True, next(iter(distinct))
    return False, None


class ValidityCondition:
    """One of the paper's six validity conditions.

    Instances are module-level singletons (:data:`SV1` ... :data:`WV2`);
    compare them with ``is`` or ``==`` (identity-based).
    """

    def __init__(self, code: str, name: str, statement: str) -> None:
        self.code = code
        self.name = name
        self.statement = statement

    def check(self, outcome: Outcome) -> Verdict:
        """Evaluate the condition on an execution outcome."""
        raise NotImplementedError

    def implies(self, other: "ValidityCondition") -> bool:
        """Whether every outcome satisfying ``self`` satisfies ``other``.

        Equivalently (Fig. 1): ``SC(other)`` is weaker than ``SC(self)``.
        Reflexive: every condition implies itself.
        """
        return (self.code, other.code) in _IMPLIES or self is other

    def __repr__(self) -> str:
        return f"ValidityCondition({self.code})"

    def __str__(self) -> str:
        return self.code


class _SV1(ValidityCondition):
    def check(self, outcome: Outcome) -> Verdict:
        allowed = outcome.correct_input_values()
        bad = {
            p: v
            for p, v in outcome.correct_decisions().items()
            if v not in allowed
        }
        if bad:
            return Verdict(
                False,
                "validity:SV1",
                f"correct decisions not among correct inputs: {bad}",
            )
        return Verdict(True, "validity:SV1")


class _SV2(ValidityCondition):
    def check(self, outcome: Outcome) -> Verdict:
        unanimous, v = _single_common_value(
            outcome.inputs[p] for p in outcome.correct
        )
        if not unanimous:
            return Verdict(True, "validity:SV2", "correct inputs not unanimous")
        bad = {p: d for p, d in outcome.correct_decisions().items() if d != v}
        if bad:
            return Verdict(
                False,
                "validity:SV2",
                f"all correct started with {v!r} but decided: {bad}",
            )
        return Verdict(True, "validity:SV2")


class _RV1(ValidityCondition):
    def check(self, outcome: Outcome) -> Verdict:
        allowed = outcome.input_values()
        bad = {
            p: v
            for p, v in outcome.correct_decisions().items()
            if v not in allowed
        }
        if bad:
            return Verdict(
                False,
                "validity:RV1",
                f"correct decisions not among inputs: {bad}",
            )
        return Verdict(True, "validity:RV1")


class _RV2(ValidityCondition):
    def check(self, outcome: Outcome) -> Verdict:
        unanimous, v = _single_common_value(outcome.inputs.values())
        if not unanimous:
            return Verdict(True, "validity:RV2", "inputs not unanimous")
        bad = {p: d for p, d in outcome.correct_decisions().items() if d != v}
        if bad:
            return Verdict(
                False,
                "validity:RV2",
                f"all started with {v!r} but decided: {bad}",
            )
        return Verdict(True, "validity:RV2")


class _WV1(ValidityCondition):
    def check(self, outcome: Outcome) -> Verdict:
        if not outcome.failure_free:
            return Verdict(True, "validity:WV1", "failures occurred")
        allowed = outcome.input_values()
        bad = {p: v for p, v in outcome.decisions.items() if v not in allowed}
        if bad:
            return Verdict(
                False,
                "validity:WV1",
                f"decisions not among inputs in failure-free run: {bad}",
            )
        return Verdict(True, "validity:WV1")


class _WV2(ValidityCondition):
    def check(self, outcome: Outcome) -> Verdict:
        if not outcome.failure_free:
            return Verdict(True, "validity:WV2", "failures occurred")
        unanimous, v = _single_common_value(outcome.inputs.values())
        if not unanimous:
            return Verdict(True, "validity:WV2", "inputs not unanimous")
        bad = {p: d for p, d in outcome.decisions.items() if d != v}
        if bad:
            return Verdict(
                False,
                "validity:WV2",
                f"failure-free unanimous run with input {v!r} decided: {bad}",
            )
        return Verdict(True, "validity:WV2")


SV1 = _SV1(
    "SV1",
    "strong V1",
    "The decision of any correct process is equal to the input of some "
    "correct process.",
)
SV2 = _SV2(
    "SV2",
    "strong V2",
    "If all correct processes start with v then correct processes decide v.",
)
RV1 = _RV1(
    "RV1",
    "regular V1",
    "The decision of any correct process is equal to the input of some "
    "process.",
)
RV2 = _RV2(
    "RV2",
    "regular V2",
    "If all processes start with v then correct processes decide v.",
)
WV1 = _WV1(
    "WV1",
    "weak V1",
    "If there are no failures, then the decision of any process is equal "
    "to the input of some process.",
)
WV2 = _WV2(
    "WV2",
    "weak V2",
    "If there are no failures and all processes start with v, then the "
    "decision of any process is equal to v.",
)

#: All six conditions, strongest first (the order the paper lists them in).
ALL_VALIDITY_CONDITIONS = (SV1, SV2, RV1, RV2, WV1, WV2)

_BY_CODE: Dict[str, ValidityCondition] = {c.code: c for c in ALL_VALIDITY_CONDITIONS}

# Direct edges of Fig. 1, as (stronger, weaker) code pairs.  An arrow in
# the figure from C to D means SC(C) is weaker than SC(D), i.e. D implies C.
_DIRECT_EDGES = (
    ("SV1", "SV2"),
    ("SV1", "RV1"),
    ("SV2", "RV2"),
    ("RV1", "RV2"),
    ("RV1", "WV1"),
    ("RV2", "WV2"),
    ("WV1", "WV2"),
)


def _transitive_closure(edges) -> FrozenSet[Tuple[str, str]]:
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return frozenset(closure)


_IMPLIES = _transitive_closure(_DIRECT_EDGES)


def by_code(code: str) -> ValidityCondition:
    """Look a condition up by its paper code, e.g. ``"RV1"``."""
    try:
        return _BY_CODE[code.upper()]
    except KeyError:
        raise ValueError(f"unknown validity condition: {code!r}") from None


def weaker_than(c: ValidityCondition, d: ValidityCondition) -> bool:
    """Whether ``SC(c)`` is weaker than ``SC(d)`` (strictly), per Fig. 1."""
    return c is not d and d.implies(c)


def stronger_than(c: ValidityCondition, d: ValidityCondition) -> bool:
    """Whether ``SC(c)`` is stronger than ``SC(d)`` (strictly)."""
    return weaker_than(d, c)


def implication_pairs() -> FrozenSet[Tuple[str, str]]:
    """All (stronger, weaker) code pairs in the closure of Fig. 1."""
    return _IMPLIES
