"""Core problem definitions: values, validity conditions, solvability."""

from repro.core.bounds import Thresholds, threshold
from repro.core.lemmas import ALL_LEMMAS, Lemma, v_function, z_function
from repro.core.problem import Outcome, SCProblem, Verdict
from repro.core.regions import RegionMap, frontier, region_map, separation_points
from repro.core.solvability import Classification, Solvability, classify
from repro.core.validity import (
    ALL_VALIDITY_CONDITIONS,
    RV1,
    RV2,
    SV1,
    SV2,
    WV1,
    WV2,
    ValidityCondition,
    by_code,
)
from repro.core.values import DEFAULT, EMPTY

__all__ = [
    "ALL_LEMMAS",
    "ALL_VALIDITY_CONDITIONS",
    "Classification",
    "DEFAULT",
    "EMPTY",
    "Lemma",
    "Outcome",
    "RV1",
    "RV2",
    "RegionMap",
    "SCProblem",
    "Thresholds",
    "SV1",
    "SV2",
    "Solvability",
    "ValidityCondition",
    "Verdict",
    "WV1",
    "WV2",
    "by_code",
    "classify",
    "frontier",
    "region_map",
    "separation_points",
    "threshold",
    "v_function",
    "z_function",
]
