"""Problem statement: ``SC(k, t, C)`` and execution outcomes.

Section 2 of the paper defines the k-set consensus problem ``SC(k)``:
every correct process starts with an input value and must irreversibly
decide so that

* **Termination** -- every correct process eventually decides;
* **Agreement** -- the set of values decided by correct processes has
  size at most ``k``;
* **Validity** -- one of the six conditions of
  :mod:`repro.core.validity` holds.

This module defines the immutable problem specification
(:class:`SCProblem`) and the :class:`Outcome` record that a simulated
execution produces, together with checkers that turn an outcome into a
:class:`Verdict` for each of the three conditions.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, FrozenSet, Mapping, Optional, Set

from repro.core.values import Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.validity import ValidityCondition

__all__ = [
    "Outcome",
    "SCProblem",
    "Verdict",
    "check_agreement",
    "check_termination",
]


@dataclasses.dataclass(frozen=True)
class Outcome:
    """The observable result of one execution.

    Attributes:
        n: number of processes (identified ``0 .. n-1``).
        inputs: the initial value assigned to each process.  For Byzantine
            processes this is the *nominal* input -- what the adversary was
            handed -- even though the process may lie about it.
        decisions: decided value per process, or absent if the process
            never decided.  Decisions of faulty processes are recorded when
            they occur (crash processes may decide before crashing;
            Byzantine "decisions" are whatever the adversary reports) but
            agreement and most validity clauses only constrain correct
            processes.
        faulty: identifiers of the processes that were faulty in this
            execution.
    """

    n: int
    inputs: Mapping[int, Value]
    decisions: Mapping[int, Value]
    faulty: FrozenSet[int]

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if set(self.inputs) != set(range(self.n)):
            raise ValueError("inputs must cover process ids 0..n-1 exactly")
        unknown = set(self.decisions) - set(range(self.n))
        if unknown:
            raise ValueError(f"decisions for unknown processes: {sorted(unknown)}")
        bad_faulty = set(self.faulty) - set(range(self.n))
        if bad_faulty:
            raise ValueError(f"faulty ids out of range: {sorted(bad_faulty)}")
        # Freeze the mappings so outcomes are safely shareable.
        object.__setattr__(self, "inputs", dict(self.inputs))
        object.__setattr__(self, "decisions", dict(self.decisions))
        object.__setattr__(self, "faulty", frozenset(self.faulty))

    @property
    def processes(self) -> range:
        return range(self.n)

    @property
    def correct(self) -> FrozenSet[int]:
        """Processes that followed their specification throughout."""
        return frozenset(range(self.n)) - self.faulty

    @property
    def failure_count(self) -> int:
        """``f`` -- the number of *actual* failures in this execution."""
        return len(self.faulty)

    @property
    def failure_free(self) -> bool:
        return not self.faulty

    def correct_decisions(self) -> Dict[int, Value]:
        """Decisions of correct processes only."""
        return {p: v for p, v in self.decisions.items() if p not in self.faulty}

    def correct_decision_values(self) -> Set[Value]:
        return set(self.correct_decisions().values())

    def all_decision_values(self) -> Set[Value]:
        return set(self.decisions.values())

    def input_values(self) -> Set[Value]:
        return set(self.inputs.values())

    def correct_input_values(self) -> Set[Value]:
        return {self.inputs[p] for p in self.correct}

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        """Serialize for storage or transport.

        Values are stored via ``repr`` (inputs/decisions may be arbitrary
        hashable objects); :meth:`from_json` restores primitive values
        (str/int/float/bool/None) and the DEFAULT/EMPTY sentinels exactly,
        and leaves other reprs as strings.
        """
        import json

        from repro.core.values import encode_value

        return json.dumps({
            "n": self.n,
            "inputs": {str(p): encode_value(v) for p, v in self.inputs.items()},
            "decisions": {
                str(p): encode_value(v) for p, v in self.decisions.items()
            },
            "faulty": sorted(self.faulty),
        })

    @classmethod
    def from_json(cls, blob: str) -> "Outcome":
        """Inverse of :meth:`to_json` (non-primitive values come back as
        their repr strings)."""
        import json

        from repro.core.values import decode_value

        data = json.loads(blob)
        return cls(
            n=data["n"],
            inputs={int(p): decode_value(v) for p, v in data["inputs"].items()},
            decisions={
                int(p): decode_value(v) for p, v in data["decisions"].items()
            },
            faulty=frozenset(data["faulty"]),
        )


@dataclasses.dataclass(frozen=True)
class Verdict:
    """The result of checking one condition against one outcome."""

    holds: bool
    condition: str
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:
        status = "OK" if self.holds else "VIOLATED"
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.condition} {status}{suffix}"


def check_termination(outcome: Outcome) -> Verdict:
    """Termination: every correct process decided."""
    undecided = sorted(p for p in outcome.correct if p not in outcome.decisions)
    if undecided:
        return Verdict(False, "termination", f"undecided correct processes: {undecided}")
    return Verdict(True, "termination")


def check_agreement(outcome: Outcome, k: int) -> Verdict:
    """Agreement: at most ``k`` distinct values decided by correct processes."""
    values = outcome.correct_decision_values()
    if len(values) > k:
        return Verdict(
            False,
            "agreement",
            f"{len(values)} distinct correct decisions, allowed {k}",
        )
    return Verdict(True, "agreement", f"{len(values)} distinct decisions <= k={k}")


@dataclasses.dataclass(frozen=True)
class SCProblem:
    """The problem ``SC(k, t, C)`` over ``n`` processes.

    The paper writes ``SC(k, t, C)`` for k-set consensus with at most
    ``t`` failures under validity condition ``C``; ``n`` is implicit
    there and explicit here.
    """

    n: int
    k: int
    t: int
    validity: "ValidityCondition"

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("need at least one process")
        if not 1 <= self.k <= self.n:
            raise ValueError(f"k must be in 1..n, got k={self.k}, n={self.n}")
        if self.t < 0:
            raise ValueError("t must be non-negative")

    def check(self, outcome: Outcome) -> Dict[str, Verdict]:
        """Check all three conditions, returning one verdict per condition.

        Raises:
            ValueError: if the outcome exceeds the failure budget ``t``
                (such an execution is outside the problem's adversary
                model, so no conclusion about the protocol follows).
        """
        if outcome.failure_count > self.t:
            raise ValueError(
                f"execution has {outcome.failure_count} failures, budget is t={self.t}"
            )
        return {
            "termination": check_termination(outcome),
            "agreement": check_agreement(outcome, self.k),
            "validity": self.validity.check(outcome),
        }

    def satisfied_by(self, outcome: Outcome) -> bool:
        """``True`` when all three conditions hold for ``outcome``."""
        return all(self.check(outcome).values())

    def violations(self, outcome: Outcome) -> Dict[str, Verdict]:
        """The subset of conditions that failed."""
        return {name: v for name, v in self.check(outcome).items() if not v}

    def describe(self) -> str:
        return (
            f"SC(k={self.k}, t={self.t}, {self.validity.code}) "
            f"over n={self.n} processes"
        )

    def __str__(self) -> str:
        return self.describe()
