"""O(log n) frontier queries via bisection.

:func:`repro.core.regions.frontier` scans the whole ``t`` axis; for
large ``n`` (the classifier is exact at any size -- nothing in it is
grid-bound) that is wasteful.  The structural monotonicity verified by
the test suite -- status rank POSSIBLE < OPEN < IMPOSSIBLE is
non-decreasing in ``t`` at fixed ``k`` -- makes the three regions
contiguous segments of the ``t`` axis, so both frontiers are found by
binary search with ``O(log n)`` classifier calls.

    >>> threshold(Model.MP_CR, RV2, n=10**6, k=2)
    Thresholds(max_possible_t=499999, min_impossible_t=500001)
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.solvability import Solvability, classify
from repro.core.validity import ValidityCondition
from repro.models import Model

__all__ = ["Thresholds", "threshold"]

_RANK = {
    Solvability.POSSIBLE: 0,
    Solvability.OPEN: 1,
    Solvability.IMPOSSIBLE: 2,
}


@dataclasses.dataclass(frozen=True)
class Thresholds:
    """Frontiers of one (model, validity, n, k) column.

    ``max_possible_t`` is the largest ``t >= 1`` still solvable (``None``
    when nothing is); ``min_impossible_t`` the smallest ``t <= n``
    already impossible (``None`` when nothing is).  Open points, if any,
    are exactly the integers strictly between the two.
    """

    max_possible_t: Optional[int]
    min_impossible_t: Optional[int]

    @property
    def open_count(self) -> Optional[int]:
        """Number of open t values between the frontiers (None if unbounded)."""
        if self.max_possible_t is None or self.min_impossible_t is None:
            return None
        return self.min_impossible_t - self.max_possible_t - 1


def _rank(model: Model, validity: ValidityCondition, n: int, k: int, t: int) -> int:
    return _RANK[classify(model, validity, n, k, t).status]


def _largest_below(model, validity, n, k, rank_bound: int) -> Optional[int]:
    """Largest t in [1, n] whose rank is <= rank_bound, by bisection."""
    low, high = 1, n
    if _rank(model, validity, n, k, low) > rank_bound:
        return None
    best = low
    while low <= high:
        mid = (low + high) // 2
        if _rank(model, validity, n, k, mid) <= rank_bound:
            best = mid
            low = mid + 1
        else:
            high = mid - 1
    return best


def threshold(
    model: Model,
    validity: ValidityCondition,
    n: int,
    k: int,
) -> Thresholds:
    """Both frontiers of one column, in O(log n) classifier calls.

    Valid for the paper's non-degenerate range ``2 <= k <= n - 1``.
    """
    if not 2 <= k <= n - 1:
        raise ValueError(f"k must be in 2..n-1, got k={k}, n={n}")
    max_possible = _largest_below(model, validity, n, k, _RANK[Solvability.POSSIBLE])
    last_non_impossible = _largest_below(
        model, validity, n, k, _RANK[Solvability.OPEN]
    )
    if last_non_impossible is None:
        min_impossible: Optional[int] = 1
    elif last_non_impossible >= n:
        min_impossible = None
    else:
        min_impossible = last_non_impossible + 1
    return Thresholds(
        max_possible_t=max_possible,
        min_impossible_t=min_impossible,
    )
