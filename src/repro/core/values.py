"""Value domain for k-set consensus.

The paper allows the input domain to be unconstrained (Section 2): inputs
may come from a set of cardinality ``n`` or larger.  We therefore treat
values as opaque hashable Python objects.  Two distinguished sentinels are
defined here:

* :data:`DEFAULT` -- the default decision value ``v0`` used by Protocols
  A, B, C(l), E and F when a process cannot safely decide a "real" value.
* :data:`EMPTY` -- the initial content of an unwritten shared register
  (the bottom value, written as an empty register in the paper's shared
  memory protocols).
"""

from __future__ import annotations

from typing import Any, Hashable

__all__ = [
    "DEFAULT",
    "EMPTY",
    "Default",
    "Empty",
    "Value",
    "decode_value",
    "encode_value",
    "is_default",
    "is_empty",
    "order_key",
]

#: Type alias for decision/input values.  Values must be hashable so they
#: can be collected in sets when checking agreement.
Value = Hashable


class _Sentinel:
    """Base class for module-level singleton sentinels."""

    _slug = "sentinel"
    _instance: "_Sentinel | None" = None

    def __new__(cls) -> "_Sentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return f"<{self._slug}>"

    def __reduce__(self):  # keep singleton identity across pickling
        return (self.__class__, ())


class Default(_Sentinel):
    """The default decision value ``v0`` of the paper's protocols.

    ``v0`` is assumed to differ from every input value; making it a
    dedicated singleton type guarantees that without constraining the
    input domain.
    """

    _slug = "default:v0"
    _instance = None


class Empty(_Sentinel):
    """Content of a shared register that has never been written."""

    _slug = "empty-register"
    _instance = None


DEFAULT = Default()
EMPTY = Empty()


def is_default(value: Any) -> bool:
    """Whether ``value`` is the default decision value ``v0``."""
    return value is DEFAULT


def is_empty(value: Any) -> bool:
    """Whether ``value`` is the unwritten-register sentinel."""
    return value is EMPTY


def encode_value(value: Any) -> Any:
    """JSON-safe encoding of one value.

    Primitives pass through; the DEFAULT/EMPTY sentinels become tagged
    dictionaries; anything else is stored via ``repr``.  Shared by
    :meth:`repro.core.problem.Outcome.to_json` and the witness files of
    :mod:`repro.verify`.
    """
    if value is DEFAULT:
        return {"$sentinel": "default"}
    if value is EMPTY:
        return {"$sentinel": "empty"}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return {"$repr": repr(value)}


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (non-primitive values come back as
    their repr strings)."""
    if isinstance(value, dict):
        if value.get("$sentinel") == "default":
            return DEFAULT
        if value.get("$sentinel") == "empty":
            return EMPTY
        return value.get("$repr")
    return value


def order_key(value: Any) -> tuple:
    """A total order over arbitrary values.

    Chaudhuri's protocol decides the *minimum* of a set of received
    values, which requires a total order on the input domain.  Natural
    Python ordering is used within a type; values of different types are
    ordered by type name first.  The sentinels sort after everything else
    so they are never mistaken for the minimum of a set of real inputs.
    """
    if isinstance(value, _Sentinel):
        return ("~sentinel", value._slug)
    try:
        hash(value)
    except TypeError:
        raise TypeError(f"consensus values must be hashable, got {value!r}")
    return (type(value).__name__, value)
