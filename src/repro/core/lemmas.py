"""Registry of the paper's possibility and impossibility lemmas.

Each lemma is recorded with the exact ``(n, k, t)`` region it covers
(evaluated with exact rational arithmetic) in the model and validity
condition it is stated for.  The classifier in
:mod:`repro.core.solvability` then *carries* lemmas across models and
validity conditions the same way the paper does:

* a possibility for ``SC(D)`` applies to any weaker ``SC(C)``; an
  impossibility for ``SC(C)`` applies to any stronger ``SC(D)``
  (Section 2, Fig. 1);
* a protocol for a message-passing model runs in the corresponding
  shared-memory model via SIMULATION, and a Byzantine-tolerant protocol
  tolerates crashes; dually, shared-memory impossibilities apply to
  message passing, and crash impossibilities apply to the Byzantine
  models (Sections 3 and 4).

All region predicates assume the non-degenerate range the paper studies
(``2 <= k <= n-1``, ``t >= 1``); the classifier handles the degenerate
cases separately.
"""

from __future__ import annotations

import dataclasses
import functools
from fractions import Fraction
from typing import Callable, Dict, Tuple

from repro.models import Model

__all__ = [
    "ALL_LEMMAS",
    "Lemma",
    "LemmaKind",
    "lemma",
    "v_function",
    "z_function",
]


def v_function(n: int, t: int, f: int) -> int:
    """``V(n, t, f)`` as defined before Lemma 3.16.

    ``V(n, t, f) = n - f`` when ``n - t - f <= 0``, else
    ``t + 1 - f + f * floor((n - f) / (n - t - f))``.
    """
    if n - t - f <= 0:
        return n - f
    return t + 1 - f + f * ((n - f) // (n - t - f))


@functools.lru_cache(maxsize=None)
def z_function(n: int, t: int) -> int:
    """``Z(n, t) = max_{0 <= f <= t} min{V(n, t, f), n - f}``."""
    return max(min(v_function(n, t, f), n - f) for f in range(t + 1))


@dataclasses.dataclass(frozen=True)
class Lemma:
    """One lemma of the paper, as a machine-checkable region claim."""

    lemma_id: str
    kind: str  # "possibility" | "impossibility"
    model: Model
    validity: str
    region: Callable[[int, int, int], bool]
    statement: str
    protocol: str = ""  # the protocol realizing a possibility

    def applies(self, n: int, k: int, t: int) -> bool:
        return self.region(n, k, t)

    def __str__(self) -> str:
        return f"{self.lemma_id} [{self.kind}, {self.model}, {self.validity}]"


class LemmaKind:
    POSSIBILITY = "possibility"
    IMPOSSIBILITY = "impossibility"


_REGISTRY: Dict[str, Lemma] = {}


def _register(entry: Lemma) -> Lemma:
    key = f"{entry.lemma_id}/{entry.model.shorthand}/{entry.validity}"
    if key in _REGISTRY:
        raise ValueError(f"duplicate lemma registration: {key}")
    _REGISTRY[key] = entry
    return entry


def lemma(lemma_id: str) -> Tuple[Lemma, ...]:
    """All registry entries for one lemma id (some lemmas span models)."""
    found = tuple(
        entry for entry in _REGISTRY.values() if entry.lemma_id == lemma_id
    )
    if not found:
        raise ValueError(f"unknown lemma: {lemma_id!r}")
    return found


def _frac(a: int, b: int) -> Fraction:
    return Fraction(a, b)


def _protocol_c_region(n: int, k: int, t: int) -> bool:
    from repro.protocols.protocol_c import best_ell

    return best_ell(n, k, t) is not None


# --------------------------------------------------------------------------
# Possibility lemmas (protocols).
# --------------------------------------------------------------------------

_register(Lemma(
    "Lemma 3.1", LemmaKind.POSSIBILITY, Model.MP_CR, "RV1",
    lambda n, k, t: t < k,
    "In MP/CR there is a protocol for SC(k, t, RV1) for t < k.",
    protocol="Chaudhuri's k-set consensus [13]",
))

_register(Lemma(
    "Lemma 3.7", LemmaKind.POSSIBILITY, Model.MP_CR, "RV2",
    lambda n, k, t: Fraction(t) < _frac((k - 1) * n, k),
    "PROTOCOL A solves SC(k, t, RV2) in MP/CR for t < (k-1)n/k.",
    protocol="PROTOCOL A",
))

_register(Lemma(
    "Lemma 3.8", LemmaKind.POSSIBILITY, Model.MP_CR, "SV2",
    lambda n, k, t: Fraction(t) < _frac((k - 1) * n, 2 * k),
    "PROTOCOL B solves SC(k, t, SV2) in MP/CR for t < (k-1)n/(2k).",
    protocol="PROTOCOL B",
))

_register(Lemma(
    "Lemma 3.12", LemmaKind.POSSIBILITY, Model.MP_BYZ, "WV2",
    lambda n, k, t: (
        Fraction(t) < _frac(n, 2)
        and Fraction(k) >= _frac(n - t, n - 2 * t) + 1
    ),
    "PROTOCOL A solves SC(k, t, WV2) in MP/Byz for t < n/2 and "
    "k >= (n-t)/(n-2t) + 1.",
    protocol="PROTOCOL A",
))

_register(Lemma(
    "Lemma 3.13", LemmaKind.POSSIBILITY, Model.MP_BYZ, "WV2",
    lambda n, k, t: Fraction(t) >= _frac(n, 2) and k >= t + 1,
    "PROTOCOL A solves SC(k, t, WV2) in MP/Byz for t >= n/2 and k >= t + 1.",
    protocol="PROTOCOL A",
))

_register(Lemma(
    "Lemma 3.15", LemmaKind.POSSIBILITY, Model.MP_BYZ, "SV2",
    _protocol_c_region,
    "PROTOCOL C(l) solves SC(k, t, SV2) in MP/Byz for t < (k-1)n/(2k+l-1) "
    "and t < ln/(2l+1).",
    protocol="PROTOCOL C(l)",
))

_register(Lemma(
    "Lemma 3.16", LemmaKind.POSSIBILITY, Model.MP_BYZ, "WV1",
    lambda n, k, t: k >= z_function(n, t),
    "PROTOCOL D solves SC(k, t, WV1) in MP/Byz for k >= Z(n, t).",
    protocol="PROTOCOL D",
))

_register(Lemma(
    "Lemma 4.4", LemmaKind.POSSIBILITY, Model.SM_CR, "RV1",
    lambda n, k, t: t < k,
    "SIMULATION of Chaudhuri's protocol solves SC(k, t, RV1) in SM/CR "
    "for t < k.",
    protocol="SIMULATION of Chaudhuri's k-set consensus",
))

_register(Lemma(
    "Lemma 4.5", LemmaKind.POSSIBILITY, Model.SM_CR, "RV2",
    lambda n, k, t: k >= 2,
    "PROTOCOL E solves SC(k, t, RV2) in SM/CR for k >= 2 (any t).",
    protocol="PROTOCOL E",
))

_register(Lemma(
    "Lemma 4.6", LemmaKind.POSSIBILITY, Model.SM_CR, "SV2",
    lambda n, k, t: Fraction(t) < _frac((k - 1) * n, 2 * k),
    "SIMULATION of PROTOCOL B solves SC(k, t, SV2) in SM/CR for "
    "t < (k-1)n/(2k).",
    protocol="SIMULATION of PROTOCOL B",
))

_register(Lemma(
    "Lemma 4.7", LemmaKind.POSSIBILITY, Model.SM_CR, "SV2",
    lambda n, k, t: k > t + 1,
    "PROTOCOL F solves SC(k, t, SV2) in SM/CR for all k > t + 1.",
    protocol="PROTOCOL F",
))

_register(Lemma(
    "Lemma 4.10", LemmaKind.POSSIBILITY, Model.SM_BYZ, "WV2",
    lambda n, k, t: k >= 2,
    "PROTOCOL E solves SC(k, t, WV2) in SM/Byz for k >= 2 (any t).",
    protocol="PROTOCOL E",
))

_register(Lemma(
    "Lemma 4.11", LemmaKind.POSSIBILITY, Model.SM_BYZ, "SV2",
    _protocol_c_region,
    "SIMULATION of PROTOCOL C(l) solves SC(k, t, SV2) in SM/Byz for "
    "t < (k-1)n/(2k+l-1) and t < ln/(2l+1).",
    protocol="SIMULATION of PROTOCOL C(l)",
))

_register(Lemma(
    "Lemma 4.12", LemmaKind.POSSIBILITY, Model.SM_BYZ, "SV2",
    lambda n, k, t: k > t + 1,
    "PROTOCOL F solves SC(k, t, SV2) in SM/Byz for k > t + 1.",
    protocol="PROTOCOL F",
))

_register(Lemma(
    "Lemma 4.13", LemmaKind.POSSIBILITY, Model.SM_BYZ, "WV1",
    lambda n, k, t: k >= z_function(n, t),
    "SIMULATION of PROTOCOL D solves SC(k, t, WV1) in SM/Byz for "
    "k >= Z(n, t).",
    protocol="SIMULATION of PROTOCOL D",
))

# --------------------------------------------------------------------------
# Impossibility lemmas.
# --------------------------------------------------------------------------

# Lemma 3.2 is stated for both crash models ("In the crash models ...").
for _model in (Model.MP_CR, Model.SM_CR):
    _register(Lemma(
        "Lemma 3.2", LemmaKind.IMPOSSIBILITY, _model, "RV1",
        lambda n, k, t: t >= k,
        "In the crash models there is no protocol for SC(k, t, RV1) for "
        "t >= k ([9], [20], [30]).",
    ))

_register(Lemma(
    "Lemma 3.3", LemmaKind.IMPOSSIBILITY, Model.MP_CR, "WV2",
    lambda n, k, t: Fraction(t) >= _frac((k - 1) * n + 1, k),
    "In MP/CR there is no protocol for SC(k, t, WV2) for "
    "t >= ((k-1)n + 1)/k.",
))

_register(Lemma(
    "Lemma 3.4", LemmaKind.IMPOSSIBILITY, Model.MP_CR, "WV1",
    lambda n, k, t: t >= k,
    "In MP/CR there is no protocol for SC(k, t, WV1) for t >= k.",
))

_register(Lemma(
    "Lemma 3.5", LemmaKind.IMPOSSIBILITY, Model.MP_CR, "SV1",
    lambda n, k, t: True,
    "In MP/CR there is no protocol for SC(k, t, SV1) (any t >= 1).",
))

_register(Lemma(
    "Lemma 3.6", LemmaKind.IMPOSSIBILITY, Model.MP_CR, "SV2",
    lambda n, k, t: Fraction(t) >= _frac(k * n, 2 * k + 1),
    "In MP/CR there is no protocol for SC(k, t, SV2) for t >= kn/(2k+1).",
))

_register(Lemma(
    "Lemma 3.9", LemmaKind.IMPOSSIBILITY, Model.MP_BYZ, "WV2",
    lambda n, k, t: Fraction(t) >= _frac(k * n, 2 * k + 1) and t >= k,
    "In MP/Byz there is no protocol for SC(k, t, WV2) for t >= kn/(2k+1) "
    "and t >= k.",
))

_register(Lemma(
    "Lemma 3.10", LemmaKind.IMPOSSIBILITY, Model.MP_BYZ, "RV1",
    lambda n, k, t: True,
    "In MP/Byz there is no protocol for SC(k, t, RV1) (any t >= 1).",
))

_register(Lemma(
    "Lemma 3.11", LemmaKind.IMPOSSIBILITY, Model.MP_BYZ, "RV2",
    lambda n, k, t: Fraction(t) >= _frac(k * n, 2 * (k + 1)),
    "In MP/Byz there is no protocol for SC(k, t, RV2) for t >= kn/(2(k+1)).",
))

_register(Lemma(
    "Lemma 4.1", LemmaKind.IMPOSSIBILITY, Model.SM_CR, "WV1",
    lambda n, k, t: k <= t,
    "In SM/CR there is no protocol for SC(k, t, WV1) for k <= t.",
))

_register(Lemma(
    "Lemma 4.2", LemmaKind.IMPOSSIBILITY, Model.SM_CR, "SV1",
    lambda n, k, t: True,
    "In SM/CR there is no protocol for SC(k, t, SV1) (any t >= 1).",
))

_register(Lemma(
    "Lemma 4.3", LemmaKind.IMPOSSIBILITY, Model.SM_CR, "SV2",
    lambda n, k, t: Fraction(t) >= _frac(n, 2) and t >= k,
    "In SM/CR there is no protocol for SC(k, t, SV2) when t >= n/2 and "
    "t >= k.",
))

_register(Lemma(
    "Lemma 4.8", LemmaKind.IMPOSSIBILITY, Model.SM_BYZ, "RV1",
    lambda n, k, t: True,
    "In SM/Byz there is no protocol for SC(k, t, RV1) (any t >= 1).",
))

_register(Lemma(
    "Lemma 4.9", LemmaKind.IMPOSSIBILITY, Model.SM_BYZ, "RV2",
    lambda n, k, t: Fraction(t) >= _frac(n, 2) and t >= k,
    "In SM/Byz there is no protocol for SC(k, t, RV2) for t >= n/2 and "
    "t >= k.",
))

#: All registered lemmas, in registration (paper) order.
ALL_LEMMAS: Tuple[Lemma, ...] = tuple(_REGISTRY.values())
