"""Protocol registry and shared helpers.

Every protocol module registers a :class:`ProtocolSpec` describing

* how to build it (a process factory for message passing, a program for
  shared memory),
* which models it is claimed correct in,
* which validity condition it guarantees there, and
* its solvable region -- the ``(n, k, t)`` predicate from the paper's
  possibility lemma.

The harness and the figure benchmarks drive everything through this
registry, so adding a protocol automatically enrolls it in the sweeps.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.models import Model

__all__ = [
    "ProtocolSpec",
    "all_specs",
    "get_spec",
    "register",
    "tagged",
]


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """Metadata for one (protocol, model, validity) possibility claim.

    Attributes:
        name: registry key, e.g. ``"protocol-a@mp-cr"``.
        title: human-readable name as in the paper, e.g. ``"PROTOCOL A"``.
        model: the model the claim is about.
        validity: code of the guaranteed validity condition.
        lemma: the paper lemma making the claim, e.g. ``"Lemma 3.7"``.
        solvable: predicate ``(n, k, t) -> bool`` -- the claimed region.
        make: factory.  For message-passing models it returns a fresh
            :class:`~repro.runtime.process.Process` given ``(n, k, t)``;
            for shared-memory models it returns an
            :data:`~repro.shm.kernel.SMProgram`.
        notes: interpretation notes (deviations, parameter choices).
    """

    name: str
    title: str
    model: Model
    validity: str
    lemma: str
    solvable: Callable[[int, int, int], bool]
    make: Callable[[int, int, int], Any]
    notes: str = ""

    @property
    def is_shared_memory(self) -> bool:
        return self.model.is_shared_memory


_REGISTRY: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add a spec to the registry (idempotent for identical names)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise ValueError(f"duplicate protocol spec name: {spec.name}")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ProtocolSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_specs(
    model: Optional[Model] = None,
    validity: Optional[str] = None,
) -> Tuple[ProtocolSpec, ...]:
    """All registered specs, optionally filtered by model and validity."""
    specs = sorted(_REGISTRY.values(), key=lambda s: s.name)
    if model is not None:
        specs = [s for s in specs if s.model is model]
    if validity is not None:
        specs = [s for s in specs if s.validity == validity.upper()]
    return tuple(specs)


def tagged(payload: Any, tag: str, arity: int) -> bool:
    """Validate an incoming payload as ``(tag, field_1 ... field_arity)``.

    Byzantine processes may send arbitrary garbage; correct processes
    accept only well-formed messages.  The check also requires the value
    fields to be hashable, since protocols aggregate them in sets and
    dictionaries.
    """
    if not isinstance(payload, tuple) or len(payload) != arity + 1:
        return False
    if payload[0] != tag:
        return False
    for field in payload[1:]:
        try:
            hash(field)
        except TypeError:
            return False
    return True
