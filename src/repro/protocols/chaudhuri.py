"""Chaudhuri's k-set consensus protocol for ``SC(k, t, RV1)``, t < k.

Lemma 3.1 of the paper (due to Chaudhuri [13]) states that in the
MP/CR model there is a protocol for ``SC(k, t, RV1)`` whenever
``t < k``.  The classic flood-and-pick-minimum protocol realizes it:

1. broadcast the input value;
2. wait for values from ``n - t`` distinct processes (counting one's
   own);
3. decide the minimum value received.

Why at most ``t + 1 <= k`` distinct decisions: each process's received
set omits at most ``t`` of the ``n`` inputs, so its minimum is among the
``t + 1`` smallest inputs overall.  RV1 holds because in the crash model
every received value is some process's genuine input.

Values are compared with :func:`repro.core.values.order_key`, a total
order over arbitrary (hashable) inputs.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.values import Value, order_key
from repro.models import Model
from repro.protocols.base import ProtocolSpec, register, tagged
from repro.runtime.process import Context, Process

__all__ = ["ChaudhuriKSet", "MP_CR_SPEC"]

_VAL = "CH-VAL"


class ChaudhuriKSet(Process):
    """Flood inputs; decide the minimum of the first ``n - t`` values."""

    def __init__(self) -> None:
        self._values: Dict[int, Value] = {}

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast((_VAL, ctx.input))

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if ctx.decided or not tagged(payload, _VAL, 1):
            return
        if sender in self._values:
            return  # at most one input per process
        self._values[sender] = payload[1]
        if len(self._values) >= ctx.n - ctx.t:
            ctx.decide(min(self._values.values(), key=order_key))


MP_CR_SPEC = register(
    ProtocolSpec(
        name="chaudhuri@mp-cr",
        title="Chaudhuri's k-set consensus",
        model=Model.MP_CR,
        validity="RV1",
        lemma="Lemma 3.1",
        solvable=lambda n, k, t: t < k,
        make=lambda n, k, t: ChaudhuriKSet(),
    )
)
