"""The trivial protocol for ``k = n``: decide your own input.

Section 2: "if k = n, then SC(k) is trivially solvable (each process
decides its own value), even in the Byzantine setting, for any t and
with the strongest validity condition we are considering, that is,
validity SV1."

Provided in both communication flavours so every model has a registered
protocol at ``k = n`` and so tests can pin the degenerate corner of the
classifier to an actual run.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.models import Model
from repro.protocols.base import ProtocolSpec, register
from repro.runtime.process import Context, Process
from repro.shm.kernel import SMContext
from repro.shm.ops import Decide, Op

__all__ = [
    "MP_BYZ_SPEC",
    "MP_CR_SPEC",
    "SM_BYZ_SPEC",
    "SM_CR_SPEC",
    "TrivialOwnValue",
    "trivial_own_value_sm",
]


class TrivialOwnValue(Process):
    """Decide own input immediately; send nothing."""

    def on_start(self, ctx: Context) -> None:
        ctx.decide(ctx.input)


def trivial_own_value_sm(ctx: SMContext) -> Generator[Op, Any, None]:
    """Shared-memory flavour of the trivial protocol."""
    yield Decide(ctx.input)


def _region(n: int, k: int, t: int) -> bool:
    return k >= n


MP_CR_SPEC = register(
    ProtocolSpec(
        name="trivial@mp-cr",
        title="trivial (decide own value)",
        model=Model.MP_CR,
        validity="SV1",
        lemma="Section 2",
        solvable=_region,
        make=lambda n, k, t: TrivialOwnValue(),
    )
)

MP_BYZ_SPEC = register(
    ProtocolSpec(
        name="trivial@mp-byz",
        title="trivial (decide own value)",
        model=Model.MP_BYZ,
        validity="SV1",
        lemma="Section 2",
        solvable=_region,
        make=lambda n, k, t: TrivialOwnValue(),
    )
)

SM_CR_SPEC = register(
    ProtocolSpec(
        name="trivial@sm-cr",
        title="trivial (decide own value)",
        model=Model.SM_CR,
        validity="SV1",
        lemma="Section 2",
        solvable=_region,
        make=lambda n, k, t: trivial_own_value_sm,
    )
)

SM_BYZ_SPEC = register(
    ProtocolSpec(
        name="trivial@sm-byz",
        title="trivial (decide own value)",
        model=Model.SM_BYZ,
        validity="SV1",
        lemma="Section 2",
        solvable=_region,
        make=lambda n, k, t: trivial_own_value_sm,
    )
)
