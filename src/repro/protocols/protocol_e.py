"""PROTOCOL E (Section 4.1.2) -- wait-free 2-set consensus in shared memory.

    "Each process writes its own input into a single-writer register.
    The process then scans the registers of all other processes exactly
    once.  If all the values it reads in this single scan (including
    its own) are identical, it decides that value, otherwise it decides
    v0 (a default value)."

Lemma 4.5: solves ``SC(k, t, RV2)`` in SM/CR for ``k >= 2`` -- for *any*
``t``, including ``t = n``: the protocol never waits.
Lemma 4.10: solves ``SC(k, t, WV2)`` in SM/Byz for ``k >= 2``.

Interpretation note: a register that has never been written reads as the
distinguished empty sentinel, which is not a value; the "values it
reads" are the non-empty ones.  (The agreement proof relies only on the
first completed write being seen by everyone -- each process writes
before scanning -- and the validity proof needs unwritten registers not
to spoil unanimity.)
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.core.values import DEFAULT, is_empty
from repro.models import Model
from repro.protocols.base import ProtocolSpec, register
from repro.shm.kernel import SMContext
from repro.shm.ops import Decide, Op, Read, Write

__all__ = ["SM_BYZ_WV2_SPEC", "SM_CR_RV2_SPEC", "protocol_e"]


def protocol_e(ctx: SMContext) -> Generator[Op, Any, None]:
    """Write input; one scan; decide the common value or the default."""
    yield Write(ctx.input)
    seen: List[Any] = []
    for owner in range(ctx.n):
        value = yield Read(owner)
        if not is_empty(value):
            seen.append(value)
    # Own register was written before the scan, so ``seen`` is non-empty.
    try:
        unanimous = len(set(seen)) == 1
    except TypeError:
        unanimous = False  # a Byzantine neighbour wrote something unhashable
    if unanimous:
        yield Decide(seen[0])
    else:
        yield Decide(DEFAULT)


SM_CR_RV2_SPEC = register(
    ProtocolSpec(
        name="protocol-e@sm-cr",
        title="PROTOCOL E",
        model=Model.SM_CR,
        validity="RV2",
        lemma="Lemma 4.5",
        solvable=lambda n, k, t: k >= 2,
        make=lambda n, k, t: protocol_e,
    )
)

SM_BYZ_WV2_SPEC = register(
    ProtocolSpec(
        name="protocol-e@sm-byz",
        title="PROTOCOL E",
        model=Model.SM_BYZ,
        validity="WV2",
        lemma="Lemma 4.10",
        solvable=lambda n, k, t: k >= 2,
        make=lambda n, k, t: protocol_e,
    )
)
