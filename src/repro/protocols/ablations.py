"""Ablated protocol variants: what each design ingredient buys.

Each construct here alters exactly one ingredient of a paper protocol.
Three of them fail demonstrably under the right adversary (the tests
and ``benchmarks/bench_ablation_ingredients.py`` exhibit the runs);
one turns out to be safety-conservative against every adversary we
field -- an honest ablation finding, recorded as such.

* :class:`ProtocolBStrictQuorum` replaces PROTOCOL B's ``n − 2t``
  matching quorum with full unanimity of the received values (i.e.
  PROTOCOL A's decision rule where SV2 is required).  A single
  divergent faulty input then drives correct processes to the default,
  violating SV2 -- this is precisely the A-versus-B difference.
* :class:`ProtocolCPlainBroadcast` removes PROTOCOL C's ℓ-echo layer
  (PROTOCOL B run in the Byzantine model).  An equivocating sender then
  inflates every value's quorum, and ``k + 1`` distinct decisions
  become schedulable inside C's solvable region.
* :class:`CredulousProcess` removes payload validation from flood-min.
  A garbage Byzantine payload raises inside the handler -- a remote
  crash vector that the ``tagged`` checks in every real protocol
  prevent.
* :func:`protocol_f_single_scan` removes PROTOCOL F's re-scan loop.
  Finding: no safety violation was discovered by adversarial search --
  the loop is what makes the *proof's* ``r = t + i`` accounting sound
  (it guarantees ``r >= n − t``), but against our adversaries the
  single-scan variant's decisions stayed within bounds.  The bench
  reports this as an observation, not a theorem.

None of these are registered in the protocol registry: they are not the
paper's protocols, they are its design rationale made executable.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.core.values import DEFAULT, Value, is_empty
from repro.protocols.base import tagged
from repro.runtime.process import Context, Process
from repro.shm.kernel import SMContext
from repro.shm.ops import Decide, Op, Read, Write

__all__ = [
    "CredulousProcess",
    "ProtocolBStrictQuorum",
    "ProtocolCPlainBroadcast",
    "protocol_f_single_scan",
]

_VAL = "B-VAL"  # same wire format as PROTOCOL B


class ProtocolBStrictQuorum(Process):
    """PROTOCOL B with the quorum tightened from ``n − 2t`` to unanimity.

    Decides its own input only when *every* received value matches it.
    The ``n − 2t`` margin exists exactly to absorb up to ``t`` divergent
    values from faulty processes; without it, one faulty input that
    reaches a correct process forces the default and breaks SV2.
    """

    def __init__(self) -> None:
        self._values: Dict[int, Value] = {}

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast((_VAL, ctx.input))

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if ctx.decided or not tagged(payload, _VAL, 1):
            return
        if sender in self._values:
            return
        self._values[sender] = payload[1]
        if len(self._values) >= ctx.n - ctx.t and ctx.pid in self._values:
            if all(v == ctx.input for v in self._values.values()):
                ctx.decide(ctx.input)
            else:
                ctx.decide(DEFAULT)


class ProtocolCPlainBroadcast(Process):
    """PROTOCOL C with the ℓ-echo layer removed (plain broadcasts).

    Equivalent to running PROTOCOL B against Byzantine failures: an
    equivocating sender shows a different value to every receiver and
    joins every value's quorum, which the echo filter would prevent
    (Lemma 3.14 caps a sender at ℓ accepted values).
    """

    def __init__(self) -> None:
        self._values: Dict[int, Value] = {}

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast((_VAL, ctx.input))

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if ctx.decided or not tagged(payload, _VAL, 1):
            return
        if sender in self._values:
            return
        self._values[sender] = payload[1]
        if len(self._values) >= ctx.n - ctx.t and ctx.pid in self._values:
            matching = sum(1 for v in self._values.values() if v == ctx.input)
            if matching >= ctx.n - 2 * ctx.t:
                ctx.decide(ctx.input)
            else:
                ctx.decide(DEFAULT)


class CredulousProcess(Process):
    """Flood-min without payload validation.

    Treats every payload as ``(tag, value)`` and every value as
    hashable/orderable; malformed Byzantine payloads raise inside the
    handler -- in a real deployment, a remote crash vector.
    """

    def __init__(self) -> None:
        self._values: Dict[int, Value] = {}

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast((_VAL, ctx.input))

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if ctx.decided:
            return
        value = payload[1]  # no shape check: may raise
        self._values.setdefault(sender, value)
        if len(self._values) >= ctx.n - ctx.t:
            ctx.decide(min(self._values.values()))  # may raise on mixed types


def divergent_crash_run(make_process):
    """The run that separates PROTOCOL B from its strict-quorum ablation.

    ``n = 5, t = 1``: all correct processes start with ``v``; one faulty
    process starts with ``w``, broadcasts fully, then crashes, so every
    correct process hears the divergent value.  PROTOCOL B's ``n − 2t``
    margin absorbs it; the unanimity variant falls to the default and
    violates SV2.
    """
    from repro.core.validity import SV2
    from repro.failures.crash import CrashPlan, CrashPoint
    from repro.harness.runner import run_mp

    n, k, t = 5, 3, 1
    inputs = ["w"] + ["v"] * (n - 1)
    return run_mp(
        [make_process() for _ in range(n)],
        inputs, k, t, SV2,
        crash_adversary=CrashPlan({0: CrashPoint(after_steps=1)}),
        stop_when_decided=False,
    )


def plain_broadcast_attack_run(make_process):
    """The run that separates PROTOCOL C(1) from its echo-less ablation.

    ``n = 7, k = 4, t = 2`` -- inside C(1)'s solvable region.  The two
    Byzantine processes run five faces, showing value ``v_i`` to correct
    ``p_i``; delivery into ``p_i`` is restricted to
    ``{p_i, p_{i+1}, p_{i+2}, byz}`` until it decides.  Without the echo
    filter every correct process reaches an ``n − 2t`` quorum for its own
    value (own + two Byzantine endorsements): five distinct decisions,
    ``> k``.  With ℓ-echo, the split endorsements never reach the
    acceptance threshold and everyone falls back to the default.
    """
    from repro.core.validity import SV2
    from repro.failures.byzantine import MultiFaceProcess
    from repro.harness.runner import run_mp
    from repro.net.schedulers import PredicateScheduler

    n, k, t = 7, 4, 2
    byz = [5, 6]
    inputs = [f"v{i}" for i in range(5)] + ["z", "z"]

    def make_byz():
        return MultiFaceProcess(
            make_process,
            {f"f{i}": f"v{i}" for i in range(5)},
            lambda peer: f"f{peer}" if peer < 5 else None,
        )

    def allow(kernel, delivery):
        receiver, sender = delivery.receiver, delivery.sender
        if receiver in byz or kernel.has_decided(receiver):
            return True
        allowed = {receiver, (receiver + 1) % 5, (receiver + 2) % 5, 5, 6}
        return sender in allowed

    processes = [
        make_byz() if pid in byz else make_process() for pid in range(n)
    ]
    return run_mp(
        processes, inputs, k, t, SV2,
        byzantine=byz,
        scheduler=PredicateScheduler(allow, release_on_stall=True),
        stop_when_decided=False,
        max_ticks=400_000,
    )


__all__.extend(["divergent_crash_run", "plain_broadcast_attack_run"])


def protocol_f_single_scan(ctx: SMContext) -> Generator[Op, Any, None]:
    """PROTOCOL F without the re-scan loop: one scan, then decide.

    See the module docstring: adversarial search found no safety
    violation for this variant; it exists to separate what the loop
    does for the proof from what it does for observed behaviour.
    """
    yield Write(ctx.input)
    seen: List[Any] = []
    for owner in range(ctx.n):
        value = yield Read(owner)
        if not is_empty(value):
            seen.append(value)
    r = len(seen)
    if r <= ctx.t:
        yield Decide(ctx.input)
        return
    i = r - ctx.t
    matching = sum(1 for value in seen if value == ctx.input)
    if matching >= i:
        yield Decide(ctx.input)
    else:
        yield Decide(DEFAULT)
