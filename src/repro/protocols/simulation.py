"""SIMULATION: run any message-passing protocol over shared memory.

Section 4 of the paper:

    "Whenever protocol X prescribes that p send its i-th message m to
    process q, p writes m to a single-writer single-reader register
    designated for p's i-th message to q; q repeatedly reads the
    register until it reads a value there."

Hence every MP/CR (resp. MP/Byz) algorithm works in SM/CR (SM/Byz).

Implementation note -- register folding: instead of one register per
(sender, receiver, index) triple, each process's unbounded outbox is
folded into its *one* single-writer register as an append-only log of
``(destination, payload)`` entries.  Receivers track how many entries of
each log they have consumed; an entry is acted upon at most once, which
is exactly the semantics of reading a per-message register once.  A
Byzantine owner may overwrite its log arbitrarily (as it may write its
registers arbitrarily in the paper's scheme); readers ignore malformed
logs, already-consumed prefixes, and entries addressed elsewhere, so the
owner's power is the same in both formulations: it chooses, per
receiver, which message (if any) that receiver consumes next.

The resulting program serves the wrapped protocol forever (it keeps
polling and echoing after deciding); runs end when the kernel's
``stop_when_decided`` condition fires.  This matches the paper's
Section 5 remark that the Byzantine protocols' termination is "correct
processes decide", not "correct processes halt".
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Tuple

from repro.models import Model
from repro.protocols.base import ProtocolSpec, register
from repro.runtime.process import Context, Process
from repro.shm.kernel import SMContext
from repro.shm.ops import Decide, Op, Read, Write

__all__ = ["simulate_mp_over_sm"]


class _SimContext(Context):
    """Context that buffers sends into an outbox list."""

    def __init__(self, pid: int, n: int, t: int, input_value) -> None:
        super().__init__(pid, n, t, input_value)
        self.outbox: List[Tuple[int, Any]] = []

    def _emit_send(self, dst: int, payload: Any) -> None:
        self.outbox.append((dst, payload))


def _well_formed_entry(entry: Any) -> bool:
    return (
        isinstance(entry, tuple)
        and len(entry) == 2
        and isinstance(entry[0], int)
    )


def simulate_mp_over_sm(
    process_factory: Callable[[], Process],
) -> Callable[[SMContext], Generator[Op, Any, None]]:
    """Build the shared-memory program simulating an MP protocol.

    Args:
        process_factory: builds a fresh instance of the message-passing
            protocol process for each simulated process.

    Returns:
        An :data:`~repro.shm.kernel.SMProgram` suitable for
        :class:`~repro.shm.kernel.SMKernel`.
    """

    def program(ctx: SMContext) -> Generator[Op, Any, None]:
        inner = process_factory()
        mp_ctx = _SimContext(ctx.pid, ctx.n, ctx.t, ctx.input)
        consumed = [0] * ctx.n
        published = 0
        decided_reported = False

        inner.on_start(mp_ctx)

        while True:
            if len(mp_ctx.outbox) > published:
                yield Write(tuple(mp_ctx.outbox))
                published = len(mp_ctx.outbox)
            if mp_ctx.decided and not decided_reported:
                decided_reported = True
                yield Decide(mp_ctx.decision)
            for owner in range(ctx.n):
                log = yield Read(owner)
                if not isinstance(log, tuple) or len(log) <= consumed[owner]:
                    continue
                fresh = log[consumed[owner]:]
                consumed[owner] = len(log)
                for entry in fresh:
                    if _well_formed_entry(entry) and entry[0] == ctx.pid:
                        inner.on_message(mp_ctx, owner, entry[1])
                # Publish promptly so replies (echoes) are visible to
                # processes scheduled before our next loop iteration.
                if len(mp_ctx.outbox) > published:
                    yield Write(tuple(mp_ctx.outbox))
                    published = len(mp_ctx.outbox)
                if mp_ctx.decided and not decided_reported:
                    decided_reported = True
                    yield Decide(mp_ctx.decision)

    return program


def _register_simulations() -> None:
    """Register the paper's four SIMULATION possibility claims."""
    from repro.core.lemmas import z_function
    from repro.protocols.chaudhuri import ChaudhuriKSet
    from repro.protocols.protocol_b import ProtocolB, lemma_3_8
    from repro.protocols.protocol_c import ProtocolC, best_ell
    from repro.protocols.protocol_d import ProtocolD

    register(ProtocolSpec(
        name="sim-chaudhuri@sm-cr",
        title="SIMULATION of Chaudhuri's protocol",
        model=Model.SM_CR,
        validity="RV1",
        lemma="Lemma 4.4",
        solvable=lambda n, k, t: t < k,
        make=lambda n, k, t: simulate_mp_over_sm(ChaudhuriKSet),
    ))

    register(ProtocolSpec(
        name="sim-protocol-b@sm-cr",
        title="SIMULATION of PROTOCOL B",
        model=Model.SM_CR,
        validity="SV2",
        lemma="Lemma 4.6",
        solvable=lemma_3_8,
        make=lambda n, k, t: simulate_mp_over_sm(ProtocolB),
    ))

    def _make_sim_c(n: int, k: int, t: int):
        ell = best_ell(n, k, t)
        if ell is None:
            raise ValueError(
                f"(n={n}, k={k}, t={t}) outside PROTOCOL C's solvable region"
            )
        return simulate_mp_over_sm(lambda: ProtocolC(ell))

    register(ProtocolSpec(
        name="sim-protocol-c@sm-byz",
        title="SIMULATION of PROTOCOL C(l)",
        model=Model.SM_BYZ,
        validity="SV2",
        lemma="Lemma 4.11",
        solvable=lambda n, k, t: best_ell(n, k, t) is not None,
        make=_make_sim_c,
    ))

    register(ProtocolSpec(
        name="sim-protocol-d@sm-byz",
        title="SIMULATION of PROTOCOL D",
        model=Model.SM_BYZ,
        validity="WV1",
        lemma="Lemma 4.13",
        solvable=lambda n, k, t: k >= z_function(n, t),
        make=lambda n, k, t: simulate_mp_over_sm(ProtocolD),
    ))


_register_simulations()
