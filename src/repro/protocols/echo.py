"""The ℓ-echo broadcast protocol (Section 3.2.2, Lemma 3.14).

A generalization of Bracha and Toueg's echo protocol [11]; the 1-echo
instance is exactly theirs.  To ℓ-echo broadcast a message ``m``:

* the sender sends ``<init, s, m>`` to all other processes;
* on the *first* ``<init, s, m>`` from ``s``, a process sends
  ``<echo, s, m>`` to all (subsequent inits from ``s`` are ignored);
* a process *accepts* ``m`` from ``s`` once it received ``<echo, s, m>``
  from more than ``(n + ℓt)/(ℓ + 1)`` distinct processes.

Lemma 3.14: if ``t < ℓn/(2ℓ+1)`` then (1) correct processes accept at
most ``ℓ`` different messages per sender, and (2) if the sender is
correct every correct process accepts its message.

The engine is transport-agnostic: protocols embed an
:class:`LEchoEngine` and feed it every incoming payload; accepted
``(sender, message)`` pairs are surfaced through a callback.  Because
the paper's network is authenticated (no forgery), the transport-level
sender identifies who an init is from, and who each echo vote is from.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.protocols.base import tagged
from repro.runtime.process import Context

__all__ = ["LEchoEngine", "accept_threshold", "lemma_3_14_region"]

INIT = "EC-INIT"
ECHO = "EC-ECHO"


def accept_threshold(n: int, t: int, ell: int) -> int:
    """Minimum echo count that exceeds ``(n + ℓt)/(ℓ + 1)``.

    Acceptance requires *more than* ``(n + ℓt)/(ℓ+1)`` echoes; this
    returns the smallest integer count satisfying that strict bound.
    """
    bound = Fraction(n + ell * t, ell + 1)
    count = int(bound) + 1
    return count


def lemma_3_14_region(n: int, t: int, ell: int) -> bool:
    """The premise of Lemma 3.14: ``t < ℓn/(2ℓ + 1)``."""
    return Fraction(t) < Fraction(ell * n, 2 * ell + 1)


class LEchoEngine:
    """Per-process state of the ℓ-echo broadcast protocol.

    Args:
        ell: the ℓ parameter (``ell >= 1``).
        on_accept: invoked as ``on_accept(ctx, sender, message)`` each
            time a new ``(sender, message)`` pair is accepted.
    """

    def __init__(
        self,
        ell: int,
        on_accept: Callable[[Context, int, Any], None],
    ) -> None:
        if ell < 1:
            raise ValueError("ell must be at least 1")
        self.ell = ell
        self._on_accept = on_accept
        self._echoed_for: Set[int] = set()
        self._echoers: Dict[Tuple[int, Any], Set[int]] = {}
        self._accepted: Dict[int, List[Any]] = {}

    # -- sending ------------------------------------------------------------

    def broadcast(self, ctx: Context, message: Any) -> None:
        """ℓ-echo broadcast ``message`` as the sender."""
        ctx.broadcast((INIT, message))

    # -- receiving ------------------------------------------------------------

    def handle(self, ctx: Context, sender: int, payload: Any) -> bool:
        """Feed one incoming payload; returns ``True`` if it was consumed."""
        if tagged(payload, INIT, 1):
            self._handle_init(ctx, sender, payload[1])
            return True
        if tagged(payload, ECHO, 2):
            origin = payload[1]
            if isinstance(origin, int) and 0 <= origin < ctx.n:
                self._handle_echo(ctx, sender, origin, payload[2])
            return True
        return False

    def _handle_init(self, ctx: Context, sender: int, message: Any) -> None:
        if sender in self._echoed_for:
            return  # never echo twice for the same sender
        self._echoed_for.add(sender)
        ctx.broadcast((ECHO, sender, message))

    def _handle_echo(
        self, ctx: Context, voter: int, origin: int, message: Any
    ) -> None:
        key = (origin, message)
        votes = self._echoers.setdefault(key, set())
        if voter in votes:
            return  # one echo per voter per (sender, message)
        votes.add(voter)
        already = self._accepted.setdefault(origin, [])
        if message in already:
            return
        if len(votes) >= accept_threshold(ctx.n, ctx.t, self.ell):
            already.append(message)
            self._on_accept(ctx, origin, message)

    # -- snapshot protocol ---------------------------------------------------

    def __copy_plain__(self) -> "LEchoEngine":
        """Fork hook for the exhaustive explorer's snapshot protocol.

        Returns an engine with independent bookkeeping; the
        ``on_accept`` callback is shared, which is correct because the
        kernel restores state *in place* -- the process a bound callback
        points at is the same object before and after a restore.
        """
        fork = LEchoEngine(self.ell, self._on_accept)
        fork._echoed_for = set(self._echoed_for)
        fork._echoers = {
            key: set(votes) for key, votes in self._echoers.items()
        }
        fork._accepted = {
            origin: list(msgs) for origin, msgs in self._accepted.items()
        }
        return fork

    def __fingerprint__(self) -> Any:
        """Structural identity (plain data) for explorer deduplication.

        Excludes the ``on_accept`` callback: it is code, not state, and
        its binding differs between independently built kernels that
        are otherwise in identical configurations.
        """
        return (self.ell, self._echoed_for, self._echoers, self._accepted)

    # -- introspection ------------------------------------------------------

    def accepted_from(self, origin: int) -> Tuple[Any, ...]:
        """Messages accepted from ``origin`` so far, in acceptance order."""
        return tuple(self._accepted.get(origin, ()))

    def first_accepted_from(self, origin: int) -> Optional[Any]:
        accepted = self._accepted.get(origin)
        return accepted[0] if accepted else None

    def accepted_count(self) -> int:
        """Number of senders from which at least one message was accepted."""
        return sum(1 for msgs in self._accepted.values() if msgs)
