"""PROTOCOL C(ℓ) (Section 3.2.2).

    "Each process broadcasts its input using the ℓ-echo protocol and
    waits for n - t messages to be accepted, where one of these n - t
    messages is the process' own message.  If n - 2t messages contain
    the same value v, then the process decides v, else it decides a
    default value v0."

Lemma 3.15: solves ``SC(k, t, SV2)`` in MP/Byz for
``t < (k-1)n/(2k+ℓ-1)`` and ``t < ℓn/(2ℓ+1)``.
Lemma 4.11: its SIMULATION solves the same in SM/Byz.

Interpretation note: the validity proof of Lemma 3.15 observes that a
process "either decides v or v0" where v is *its own* input, so -- as in
PROTOCOL B, of which this is the Byzantine-hardened version -- the
non-default decision test is "at least ``n - 2t`` accepted values equal
the process's own input".  Per sender, the first accepted value counts
(a Byzantine sender can get up to ℓ values accepted).

Since ``SC(RV2)`` is weaker than ``SC(SV2)``, the same protocol also
carries the RV2 claims used by Figs. 4 and 6.
"""

from __future__ import annotations

import functools
from fractions import Fraction
from typing import Any, Dict, Optional

from repro.core.values import DEFAULT, Value
from repro.models import Model
from repro.protocols.base import ProtocolSpec, register
from repro.protocols.echo import LEchoEngine, lemma_3_14_region
from repro.runtime.process import Context, Process

__all__ = [
    "MP_BYZ_RV2_SPEC",
    "MP_BYZ_SV2_SPEC",
    "ProtocolC",
    "best_ell",
    "lemma_3_15_region",
]


class ProtocolC(Process):
    """ℓ-echo broadcast inputs; decide own input on an ``n - 2t`` quorum."""

    def __init__(self, ell: int) -> None:
        self.ell = ell
        self._engine = LEchoEngine(ell, self._accepted)
        self._first_value: Dict[int, Value] = {}

    def on_start(self, ctx: Context) -> None:
        self._engine.broadcast(ctx, ctx.input)

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        self._engine.handle(ctx, sender, payload)

    def _accepted(self, ctx: Context, origin: int, message: Any) -> None:
        if origin not in self._first_value:
            self._first_value[origin] = message
        if ctx.decided:
            return  # keep participating in echoes for others' termination
        if len(self._first_value) >= ctx.n - ctx.t and ctx.pid in self._first_value:
            matching = sum(
                1 for v in self._first_value.values() if v == ctx.input
            )
            if matching >= ctx.n - 2 * ctx.t:
                ctx.decide(ctx.input)
            else:
                ctx.decide(DEFAULT)


def lemma_3_15_region(n: int, k: int, t: int, ell: int) -> bool:
    """``t < (k-1)n/(2k+ℓ-1)`` and ``t < ℓn/(2ℓ+1)``."""
    return (
        Fraction(t) < Fraction((k - 1) * n, 2 * k + ell - 1)
        and lemma_3_14_region(n, t, ell)
    )


@functools.lru_cache(maxsize=None)
def best_ell(n: int, k: int, t: int) -> Optional[int]:
    """Smallest ℓ making ``(n, k, t)`` solvable by PROTOCOL C(ℓ).

    The echo-quality bound ``t < ℓn/(2ℓ+1)`` improves with larger ℓ
    while the agreement bound ``t < (k-1)n/(2k+ℓ-1)`` degrades, so the
    feasible ℓ form an interval; the smallest feasible ℓ also minimizes
    message processing (fewer distinct messages can be accepted per
    Byzantine sender).  Returns ``None`` when no ℓ works.
    """
    for ell in range(1, 2 * n + 2):
        if lemma_3_15_region(n, k, t, ell):
            return ell
        if Fraction(t) >= Fraction((k - 1) * n, 2 * k + ell - 1):
            # The agreement bound only gets worse with larger ell.
            return None
    return None


def _solvable(n: int, k: int, t: int) -> bool:
    return best_ell(n, k, t) is not None


def _make(n: int, k: int, t: int) -> ProtocolC:
    ell = best_ell(n, k, t)
    if ell is None:
        raise ValueError(
            f"(n={n}, k={k}, t={t}) is outside PROTOCOL C's solvable region"
        )
    return ProtocolC(ell)


MP_BYZ_SV2_SPEC = register(
    ProtocolSpec(
        name="protocol-c@mp-byz",
        title="PROTOCOL C(l)",
        model=Model.MP_BYZ,
        validity="SV2",
        lemma="Lemma 3.15",
        solvable=_solvable,
        make=_make,
        notes="l chosen per (n, k, t) by best_ell().",
    )
)

MP_BYZ_RV2_SPEC = register(
    ProtocolSpec(
        name="protocol-c-rv2@mp-byz",
        title="PROTOCOL C(l)",
        model=Model.MP_BYZ,
        validity="RV2",
        lemma="Lemma 3.15 (RV2 weaker than SV2)",
        solvable=_solvable,
        make=_make,
        notes="SC(RV2) is weaker than SC(SV2); the SV2 region carries over.",
    )
)
