"""PROTOCOL B (Section 3.1.2).

    "Each process broadcasts its input and waits for n - t messages.
    One of these n - t messages is the process' own message.  If
    n - 2t messages contain the same value as its own, say v, the
    process decides v, else it decides a default value v0."

Lemma 3.8: solves ``SC(k, t, SV2)`` in MP/CR for ``t < (k-1)n/(2k)``.
Lemma 4.6: its SIMULATION solves the same in SM/CR.

The wait condition is implemented as "at least ``n - t`` values
received, among which the process's own"; the decision test counts, at
that moment, how many received values (including its own) equal its own
input.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict

from repro.core.values import DEFAULT, Value
from repro.models import Model
from repro.protocols.base import ProtocolSpec, register, tagged
from repro.runtime.process import Context, Process

__all__ = ["MP_CR_SPEC", "ProtocolB"]

_VAL = "B-VAL"


class ProtocolB(Process):
    """Decide own input iff ``n - 2t`` of the first ``n - t`` values match it."""

    def __init__(self) -> None:
        self._values: Dict[int, Value] = {}

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast((_VAL, ctx.input))

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if ctx.decided or not tagged(payload, _VAL, 1):
            return
        if sender in self._values:
            return
        self._values[sender] = payload[1]
        if len(self._values) >= ctx.n - ctx.t and ctx.pid in self._values:
            matching = sum(1 for v in self._values.values() if v == ctx.input)
            if matching >= ctx.n - 2 * ctx.t:
                ctx.decide(ctx.input)
            else:
                ctx.decide(DEFAULT)


def lemma_3_8(n: int, k: int, t: int) -> bool:
    """t < (k-1)n/(2k)."""
    return Fraction(t) < Fraction((k - 1) * n, 2 * k)


MP_CR_SPEC = register(
    ProtocolSpec(
        name="protocol-b@mp-cr",
        title="PROTOCOL B",
        model=Model.MP_CR,
        validity="SV2",
        lemma="Lemma 3.8",
        solvable=lemma_3_8,
        make=lambda n, k, t: ProtocolB(),
    )
)
