"""PROTOCOL D (Section 3.2.2) -- ``SC(k, t, WV1)`` in MP/Byz.

    "Processes p1, p2, ..., p_{t+1} each broadcasts its input value.  A
    process that receives a value vi from pi, i in {1, ..., t+1},
    broadcasts an <echo, vi, pi> message and never echos a value for pi
    again.  [The broadcasters decide] on [their] own value.  Every
    other process decides the first value vi, i in {1, ..., t+1}, for
    which it receives identical <echo, vi, pi> from n - t processes."

Lemma 3.16: PROTOCOL D solves ``SC(k, t, WV1)`` in MP/Byz for
``k >= Z(n, t)`` where ``Z`` is defined in
:func:`repro.core.solvability.z_function` (and before Lemma 3.16 in the
paper).

Interpretation note: the paper's text says "each process p1, ..., pk
decides on its own value", but its agreement proof counts the distinct
decisions as (values of correct broadcasters) + (values faulty
broadcasters get accepted), i.e. it accounts only for the ``t + 1``
*broadcasters* deciding their own values.  When ``k > t + 1``, letting
the extra ``k - t - 1`` non-broadcasters decide their own values can
exceed ``k`` distinct decisions (their inputs are not among the
broadcasters' accepted values), so we implement the proof-consistent
reading: exactly the broadcasters ``p_0 ... p_t`` decide their own
values.  This is recorded in DESIGN.md as a deliberate deviation.
"""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

from repro.core.values import Value
from repro.models import Model
from repro.protocols.base import ProtocolSpec, register, tagged
from repro.runtime.process import Context, Process

__all__ = ["MP_BYZ_SPEC", "ProtocolD"]

_VAL = "D-VAL"
_ECHO = "D-ECHO"


class ProtocolD(Process):
    """Broadcasters decide their input; others adopt an ``n - t``-echo value."""

    def __init__(self) -> None:
        self._echoed_for: Set[int] = set()
        self._echoers: Dict[Tuple[int, Value], Set[int]] = {}

    @staticmethod
    def _is_broadcaster(ctx: Context, pid: int) -> bool:
        return pid <= ctx.t  # p_0 ... p_t are the t + 1 broadcasters

    def on_start(self, ctx: Context) -> None:
        if self._is_broadcaster(ctx, ctx.pid):
            ctx.broadcast((_VAL, ctx.input))
            ctx.decide(ctx.input)

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if tagged(payload, _VAL, 1):
            self._handle_value(ctx, sender, payload[1])
        elif tagged(payload, _ECHO, 2):
            origin = payload[1]
            if isinstance(origin, int) and self._is_broadcaster(ctx, origin):
                self._handle_echo(ctx, sender, origin, payload[2])

    def _handle_value(self, ctx: Context, sender: int, value: Value) -> None:
        if not self._is_broadcaster(ctx, sender):
            return  # only the designated broadcasters' values are echoed
        if sender in self._echoed_for:
            return  # never echo a value for the same broadcaster again
        self._echoed_for.add(sender)
        ctx.broadcast((_ECHO, sender, value))

    def _handle_echo(
        self, ctx: Context, voter: int, origin: int, value: Value
    ) -> None:
        key = (origin, value)
        votes = self._echoers.setdefault(key, set())
        if voter in votes:
            return
        votes.add(voter)
        if (
            not ctx.decided
            and not self._is_broadcaster(ctx, ctx.pid)
            and len(votes) >= ctx.n - ctx.t
        ):
            ctx.decide(value)


def _solvable(n: int, k: int, t: int) -> bool:
    from repro.core.solvability import z_function

    return k >= z_function(n, t)


MP_BYZ_SPEC = register(
    ProtocolSpec(
        name="protocol-d@mp-byz",
        title="PROTOCOL D",
        model=Model.MP_BYZ,
        validity="WV1",
        lemma="Lemma 3.16",
        solvable=_solvable,
        make=lambda n, k, t: ProtocolD(),
        notes=(
            "Proof-consistent reading: the t+1 broadcasters decide their "
            "own values (see module docstring)."
        ),
    )
)
