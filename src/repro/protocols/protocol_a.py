"""PROTOCOL A (Section 3.1.2).

    "Each process broadcasts its input and waits for n - t messages.
    If all n - t messages contain the same value v, then the process
    decides v, else it decides a default value v0."

Claims reproduced here:

* Lemma 3.7 -- solves ``SC(k, t, RV2)`` in MP/CR for ``t < (k-1)n/k``
  (and hence ``SC(WV2)`` too, WV2 being weaker than RV2).
* Lemma 3.12 -- solves ``SC(k, t, WV2)`` in MP/Byz for ``t < n/2`` and
  ``k >= (n-t)/(n-2t) + 1``.
* Lemma 3.13 -- solves ``SC(k, t, WV2)`` in MP/Byz for ``t >= n/2`` and
  ``k >= t + 1``.

The decision uses exactly the first ``n - t`` well-formed values
received (one per sender), matching the paper's "waits for n - t
messages" phrasing.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict

from repro.core.values import DEFAULT, Value
from repro.models import Model
from repro.protocols.base import ProtocolSpec, register, tagged
from repro.runtime.process import Context, Process

__all__ = ["MP_BYZ_WV2_SPEC", "MP_CR_RV2_SPEC", "MP_CR_WV2_SPEC", "ProtocolA"]

_VAL = "A-VAL"


class ProtocolA(Process):
    """Broadcast input; decide it if the first ``n - t`` values agree."""

    def __init__(self) -> None:
        self._values: Dict[int, Value] = {}

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast((_VAL, ctx.input))

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if ctx.decided or not tagged(payload, _VAL, 1):
            return
        if sender in self._values:
            return
        self._values[sender] = payload[1]
        if len(self._values) >= ctx.n - ctx.t:
            distinct = set(self._values.values())
            if len(distinct) == 1:
                # Singleton unpack: order-insensitive, unlike next(iter(..)).
                (common,) = distinct
                ctx.decide(common)
            else:
                ctx.decide(DEFAULT)


def _lemma_3_7(n: int, k: int, t: int) -> bool:
    """t < (k-1)n/k."""
    return Fraction(t) < Fraction((k - 1) * n, k)


def _lemma_3_12_or_3_13(n: int, k: int, t: int) -> bool:
    """Byzantine WV2 region: Lemma 3.12 (t < n/2) or Lemma 3.13 (t >= n/2)."""
    if Fraction(t) < Fraction(n, 2):
        return Fraction(k) >= Fraction(n - t, n - 2 * t) + 1
    return k >= t + 1


MP_CR_RV2_SPEC = register(
    ProtocolSpec(
        name="protocol-a@mp-cr",
        title="PROTOCOL A",
        model=Model.MP_CR,
        validity="RV2",
        lemma="Lemma 3.7",
        solvable=_lemma_3_7,
        make=lambda n, k, t: ProtocolA(),
    )
)

MP_CR_WV2_SPEC = register(
    ProtocolSpec(
        name="protocol-a-wv2@mp-cr",
        title="PROTOCOL A",
        model=Model.MP_CR,
        validity="WV2",
        lemma="Lemma 3.7 (WV2 weaker than RV2)",
        solvable=_lemma_3_7,
        make=lambda n, k, t: ProtocolA(),
        notes="SC(WV2) is weaker than SC(RV2); the RV2 region carries over.",
    )
)

MP_BYZ_WV2_SPEC = register(
    ProtocolSpec(
        name="protocol-a@mp-byz",
        title="PROTOCOL A",
        model=Model.MP_BYZ,
        validity="WV2",
        lemma="Lemmas 3.12 and 3.13",
        solvable=_lemma_3_12_or_3_13,
        make=lambda n, k, t: ProtocolA(),
    )
)
