"""PROTOCOL F (Section 4.1.2) -- ``SC(k, t, SV2)`` for ``k > t + 1``.

    "Each process writes its own input into a single-writer register.
    The process then scans the registers of all other processes
    repeatedly, until in a single scan of all registers it successfully
    reads from some r >= n - t process' registers.  If r <= t (possible
    if n <= 2t), then the process decides on its own input.  Otherwise,
    i.e., if r = t + i for some i >= 1, then it decides its own input
    if at least i registers of these r (including its own) hold its
    input value, and a default value v0 otherwise."

Lemma 4.7: solves ``SC(k, t, SV2)`` in SM/CR for all ``k > t + 1``.
Lemma 4.12: the same in SM/Byz.

"Successfully reads" means the register is non-empty (its owner has
written).  Note that ``r >= n - t`` always holds eventually because
correct processes write before scanning; the loop exists because early
scans may find fewer than ``n - t`` registers written.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.core.values import DEFAULT, is_empty
from repro.models import Model
from repro.protocols.base import ProtocolSpec, register
from repro.shm.kernel import SMContext
from repro.shm.ops import Decide, Op, Read, Write

__all__ = ["SM_BYZ_SPEC", "SM_CR_SPEC", "protocol_f"]


def protocol_f(ctx: SMContext) -> Generator[Op, Any, None]:
    """Scan until ``n - t`` registers are written; quorum-check own input."""
    yield Write(ctx.input)
    while True:
        seen: List[Any] = []
        for owner in range(ctx.n):
            value = yield Read(owner)
            if not is_empty(value):
                seen.append(value)
        if len(seen) >= ctx.n - ctx.t:
            break
    r = len(seen)
    if r <= ctx.t:  # possible only if n <= 2t
        yield Decide(ctx.input)
        return
    i = r - ctx.t  # r = t + i with i >= 1
    matching = sum(1 for value in seen if value == ctx.input)
    if matching >= i:
        yield Decide(ctx.input)
    else:
        yield Decide(DEFAULT)


SM_CR_SPEC = register(
    ProtocolSpec(
        name="protocol-f@sm-cr",
        title="PROTOCOL F",
        model=Model.SM_CR,
        validity="SV2",
        lemma="Lemma 4.7",
        solvable=lambda n, k, t: k > t + 1,
        make=lambda n, k, t: protocol_f,
    )
)

SM_BYZ_SPEC = register(
    ProtocolSpec(
        name="protocol-f@sm-byz",
        title="PROTOCOL F",
        model=Model.SM_BYZ,
        validity="SV2",
        lemma="Lemma 4.12",
        solvable=lambda n, k, t: k > t + 1,
        make=lambda n, k, t: protocol_f,
    )
)
