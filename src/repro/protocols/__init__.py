"""The paper's protocols (possibility side).

Importing this package registers every protocol specification with the
registry in :mod:`repro.protocols.base`; the harness and benchmarks
discover protocols through :func:`repro.protocols.base.all_specs`.
"""

from repro.protocols import (  # noqa: F401  (imported for registration)
    chaudhuri,
    protocol_a,
    protocol_b,
    protocol_c,
    protocol_d,
    protocol_e,
    protocol_f,
    simulation,
    trivial,
)
from repro.protocols.base import ProtocolSpec, all_specs, get_spec
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.echo import LEchoEngine, accept_threshold
from repro.protocols.protocol_a import ProtocolA
from repro.protocols.protocol_b import ProtocolB
from repro.protocols.protocol_c import ProtocolC, best_ell
from repro.protocols.protocol_d import ProtocolD
from repro.protocols.protocol_e import protocol_e
from repro.protocols.protocol_f import protocol_f
from repro.protocols.select import (
    NoProtocolAvailable,
    candidates,
    recommend,
    solve,
)
from repro.protocols.simulation import simulate_mp_over_sm
from repro.protocols.trivial import TrivialOwnValue, trivial_own_value_sm

__all__ = [
    "ChaudhuriKSet",
    "LEchoEngine",
    "NoProtocolAvailable",
    "ProtocolA",
    "ProtocolB",
    "ProtocolC",
    "ProtocolD",
    "ProtocolSpec",
    "TrivialOwnValue",
    "accept_threshold",
    "all_specs",
    "best_ell",
    "candidates",
    "get_spec",
    "protocol_e",
    "recommend",
    "solve",
    "protocol_f",
    "simulate_mp_over_sm",
    "trivial_own_value_sm",
]
