"""Halting protocol variants: probing the paper's open problem.

Section 5 of the paper:

    "In most of our protocols for the Byzantine failure model,
    processes are required to 'help' other processes by continually
    participating in the (echo) protocol.  Therefore, termination is
    satisfied only in the sense that correct processes decide, but not
    in the sense that they are guaranteed to eventually stop.  It is
    currently open whether there exists terminating protocols for the
    same settings."

This module makes the obstacle concrete.  :class:`HaltingProtocolC`
behaves exactly like PROTOCOL C(ℓ) except that a process *stops
participating* (ignores all further messages, echoes nothing) once it
has decided.  :func:`straggler_run` then builds the schedule that
defeats it: one correct process's messages are delayed until everyone
else has decided and halted; the halted majority never echoes the
straggler's init, so the straggler can never accept its own value and
never decides -- a termination violation that the non-halting PROTOCOL C
does not suffer under the identical schedule.

This is evidence about *this* protocol shape, not a proof that no
terminating protocol exists (the question remains open).
"""

from __future__ import annotations

from typing import Any

from repro.core.validity import SV2
from repro.harness.runner import ExperimentReport, run_mp
from repro.net.schedulers import PredicateScheduler
from repro.protocols.protocol_c import ProtocolC
from repro.runtime.events import Delivery
from repro.runtime.process import Context, Process

__all__ = ["HaltingProtocolC", "straggler_run"]


class HaltingProtocolC(Process):
    """PROTOCOL C(ℓ) that stops participating once it has decided."""

    def __init__(self, ell: int) -> None:
        self._inner = ProtocolC(ell)
        self.halted = False

    def on_start(self, ctx: Context) -> None:
        self._inner.on_start(ctx)

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if self.halted:
            return
        self._inner.on_message(ctx, sender, payload)
        if ctx.decided:
            self.halted = True


def straggler_run(
    n: int = 7,
    t: int = 1,
    k: int = 4,
    ell: int = 1,
    halting: bool = True,
    max_ticks: int = 500_000,
) -> ExperimentReport:
    """The schedule that defeats halting echo protocols.

    The last process's outgoing messages are delayed until every other
    process has decided.  With ``halting=True`` the others have stopped
    echoing by then and the straggler never terminates; with
    ``halting=False`` (plain PROTOCOL C) the same schedule is harmless.
    """
    straggler = n - 1
    others = set(range(n - 1))

    def allow(kernel, delivery: Delivery) -> bool:
        if delivery.sender != straggler or delivery.receiver == straggler:
            return True
        return all(kernel.has_decided(p) for p in others)

    make = (lambda: HaltingProtocolC(ell)) if halting else (lambda: ProtocolC(ell))
    return run_mp(
        [make() for _ in range(n)],
        ["v"] * n,
        k,
        t,
        SV2,
        scheduler=PredicateScheduler(allow, release_on_stall=True),
        stop_when_decided=True,
        max_ticks=max_ticks,
    )
