"""Protocol selection: which protocol solves my instance, and best?

Several registered protocols can cover the same ``(model, validity,
n, k, t)`` point (e.g. in SM/CR SV2 both PROTOCOL F and the SIMULATION
of PROTOCOL B may apply).  :func:`candidates` lists all of them;
:func:`recommend` picks one by a cost heuristic:

1. native protocols beat SIMULATION-wrapped ones (polling overhead);
2. protocols with lower measured message/ops growth beat heavier ones
   (flood-family n^2 beats echo-family n^3);
3. ties break on the registry name for determinism.

:func:`solve` composes selection with execution -- the "just give me a
decision" entry point for library users.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from typing import TYPE_CHECKING

from repro.core.solvability import Solvability, classify
from repro.core.validity import ValidityCondition, by_code
from repro.core.values import Value
from repro.models import Model
from repro.protocols.base import ProtocolSpec, all_specs

if TYPE_CHECKING:  # pragma: no cover - the runner import would be circular
    from repro.harness.runner import ExperimentReport

__all__ = ["NoProtocolAvailable", "candidates", "recommend", "solve"]

#: Cost rank by protocol family (lower is cheaper); measured by
#: repro.analysis.complexity (n^2 flood family, ~n^3 echo family).
_COST_RANK = {
    "trivial": 0,
    "protocol-e": 1,       # wait-free, n reads per process
    "protocol-f": 1,
    "chaudhuri": 2,        # one broadcast each
    "protocol-a": 2,
    "protocol-a-wv2": 2,
    "protocol-b": 2,
    "protocol-d": 3,       # echo per broadcaster
    "protocol-c": 4,       # full l-echo
    "protocol-c-rv2": 4,
}


class NoProtocolAvailable(LookupError):
    """No registered protocol covers the requested instance."""


def _family(spec: ProtocolSpec) -> str:
    name = spec.name.split("@")[0]
    return name[4:] if name.startswith("sim-") else name


def _cost_key(spec: ProtocolSpec):
    simulated = spec.name.startswith("sim-")
    return (
        int(simulated),
        _COST_RANK.get(_family(spec), 9),
        spec.name,
    )


def candidates(
    model: Model,
    validity: ValidityCondition,
    n: int,
    k: int,
    t: int,
) -> List[ProtocolSpec]:
    """All registered protocols solving the instance, cheapest first.

    A protocol qualifies if it is registered for ``model``, guarantees a
    condition at least as strong as ``validity``, and its region
    contains ``(n, k, t)``.
    """
    found = [
        spec
        for spec in all_specs(model=model)
        if by_code(spec.validity).implies(validity)
        and spec.solvable(n, k, t)
    ]
    return sorted(found, key=_cost_key)


def recommend(
    model: Model,
    validity: ValidityCondition,
    n: int,
    k: int,
    t: int,
) -> ProtocolSpec:
    """The cheapest registered protocol for the instance.

    Raises:
        NoProtocolAvailable: when nothing covers the point.  The message
            distinguishes "provably impossible" from "open" from
            "possible but the possibility is carried from another model,
            so no protocol object is registered here".
    """
    options = candidates(model, validity, n, k, t)
    if options:
        return options[0]
    verdict = classify(model, validity, n, k, t)
    if verdict.status is Solvability.IMPOSSIBLE:
        raise NoProtocolAvailable(
            f"SC(k={k}, t={t}, {validity.code}) in {model} (n={n}) is "
            f"provably impossible [{', '.join(verdict.citations)}]"
        )
    if verdict.status is Solvability.OPEN:
        raise NoProtocolAvailable(
            f"SC(k={k}, t={t}, {validity.code}) in {model} (n={n}) is an "
            "open problem -- no protocol is known"
        )
    raise NoProtocolAvailable(  # pragma: no cover - registry is complete
        f"solvable per {verdict}, but no registered protocol covers it"
    )


def solve(
    model: Model,
    validity: ValidityCondition,
    inputs: Sequence[Value],
    k: int,
    t: int,
    scheduler=None,
    crash_adversary=None,
    seed: Optional[int] = None,
) -> "ExperimentReport":
    """Pick the best protocol for the instance and run it once.

    When ``scheduler`` is omitted, a seeded-random one is used (the
    ``seed`` argument controls it).
    """
    from repro.harness.runner import run_spec

    n = len(inputs)
    spec = recommend(model, validity, n, k, t)
    if scheduler is None:
        if spec.is_shared_memory:
            from repro.shm.schedulers import RandomProcessScheduler

            scheduler = RandomProcessScheduler(seed or 0)
        else:
            from repro.net.schedulers import RandomScheduler

            scheduler = RandomScheduler(seed or 0)
    return run_spec(
        spec, n, k, t, list(inputs),
        scheduler=scheduler,
        crash_adversary=crash_adversary,
    )
