"""Deterministic fault injection aimed at the harness itself.

The repo spends most of its code adversarially scheduling *protocols*;
this module points the same mindset at the execution layer.  A
:class:`ChaosPolicy` decides -- as a pure function of ``(policy.seed,
shard_id, attempt)``, via the same SHA-256 mix every other seed in the
repo uses -- whether a given shard attempt should be SIGKILLed, hung
past its timeout, or failed with a transient exception.  Determinism
matters twice over:

* the chaos-smoke CI job and the test suite reproduce the exact same
  fault schedule on every run and platform;
* because injection is keyed by *attempt*, a shard killed on its first
  attempt runs clean on the retry, which is precisely the
  crash-recover-converge scenario the supervisor exists to handle.

Injection happens inside the worker child (:func:`apply_chaos` is
called before the real payload runs), so a SIGKILL exercises the
supervisor's genuine dead-worker path -- no mocking.  In serial
(in-process) execution only transient exceptions are injected: a
SIGKILL there would kill the supervisor itself, which is the scenario
``--resume`` (not retry) covers, and tests simulate it by stopping the
supervisor between shards instead.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from typing import Optional

from repro.harness.parallel import derive_seed

__all__ = ["ChaosError", "ChaosPolicy", "apply_chaos"]

#: Actions a policy can inject, in evaluation order.
KILL, HANG, ERROR = "kill", "hang", "error"


class ChaosError(RuntimeError):
    """The injected transient failure (retryable by design)."""


@dataclasses.dataclass(frozen=True)
class ChaosPolicy:
    """Deterministic per-attempt fault schedule.

    Rates are probabilities over the shard/attempt space; they are
    evaluated against one uniform draw, so ``kill_rate + hang_rate +
    error_rate`` must stay <= 1.  ``max_chaos_attempts`` bounds how many
    attempts of one shard can be sabotaged (default 1: first attempt
    may fail, retries run clean), keeping every chaos run convergent.
    """

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    max_chaos_attempts: int = 1
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        total = self.kill_rate + self.hang_rate + self.error_rate
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                f"chaos rates must sum to [0, 1], got {total}"
            )

    @property
    def active(self) -> bool:
        return (self.kill_rate or self.hang_rate or self.error_rate) > 0

    def action(self, shard_id: str, attempt: int) -> Optional[str]:
        """The fault for this attempt: ``kill``/``hang``/``error``/None.

        Pure and stable: the same policy, shard, and attempt always
        yield the same fault on every machine.
        """
        if attempt > self.max_chaos_attempts:
            return None
        draw = derive_seed("chaos", self.seed, shard_id, attempt)
        uniform = draw / float(1 << 62)
        if uniform < self.kill_rate:
            return KILL
        if uniform < self.kill_rate + self.hang_rate:
            return HANG
        if uniform < self.kill_rate + self.hang_rate + self.error_rate:
            return ERROR
        return None


def apply_chaos(
    policy: Optional[ChaosPolicy],
    shard_id: str,
    attempt: int,
    in_process: bool = False,
) -> None:
    """Execute the policy's fault for this attempt, if any.

    Called at the top of every shard attempt.  ``in_process`` marks
    serial (supervisor-process) execution, where only transient
    exceptions are safe to inject; kill/hang decisions are skipped
    there (the caller records the skip so the drill stays auditable).
    """
    if policy is None:
        return
    action = policy.action(shard_id, attempt)
    if action is None:
        return
    if action == ERROR:
        raise ChaosError(
            f"injected transient failure (shard {shard_id}, "
            f"attempt {attempt})"
        )
    if in_process:
        return  # kill/hang are worker-only faults
    if action == KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    if action == HANG:
        time.sleep(policy.hang_seconds)
