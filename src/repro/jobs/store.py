"""Sqlite-backed durable job queue + result store.

One :class:`JobStore` file holds any number of *runs* (a named batch of
work, e.g. one campaign invocation) and their *shards* (self-contained
work units).  The store is the single source of truth for the shard
state machine::

    pending --lease--> leased --complete--> done
       ^                  |
       |                  +--fail(retry)--> pending   (backoff gate)
       |                  +--fail(final)--> failed
       +--release_expired-- (lease timed out / worker died)

Guarantees:

* **Atomic transitions** -- every edge is one guarded ``UPDATE ...
  WHERE state = ?`` executed under sqlite's transactional engine;
  concurrent or crashed supervisors cannot double-claim a shard or
  overwrite a completed result.
* **Crash safety** -- sqlite journals every write; killing the
  supervisor between any two statements leaves a queue the next
  ``--resume`` picks up cleanly (in-flight leases simply expire).
* **Deterministic aggregation** -- shards carry a ``seq`` recording
  deterministic submission order; :meth:`JobStore.results` returns done
  results in that order regardless of completion order, retries, or
  which worker ran what, which is what makes resumed aggregates
  bit-identical to uninterrupted ones.

Only the supervisor process touches the store (workers report results
over pipes), so there is no multi-writer contention in the common case;
the guarded transitions additionally make the store safe under an
accidentally doubled supervisor.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sqlite3
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "JobStore",
    "Shard",
    "ShardEvent",
    "ShardState",
    "StoreConflictError",
]

#: Schema version stamped into the sqlite ``user_version`` pragma.
SCHEMA_VERSION = 1


class ShardState:
    """The four states of the shard state machine (string constants)."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    FAILED = "failed"

    ALL = (PENDING, LEASED, DONE, FAILED)


class StoreConflictError(RuntimeError):
    """A run already exists with an incompatible specification."""


@dataclasses.dataclass(frozen=True)
class Shard:
    """One durable work unit as stored in the queue."""

    run_id: str
    shard_id: str
    seq: int
    payload: Dict
    state: str = ShardState.PENDING
    attempts: int = 0
    not_before: float = 0.0
    lease_expires: Optional[float] = None
    result: Optional[Dict] = None
    error: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class ShardEvent:
    """One supervision event (retry, timeout, worker death, fallback)."""

    seq: int
    shard_id: Optional[str]
    kind: str
    detail: str

    def to_json(self) -> Dict:
        return dataclasses.asdict(self)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id   TEXT PRIMARY KEY,
    kind     TEXT NOT NULL,
    spec     TEXT NOT NULL,
    status   TEXT NOT NULL DEFAULT 'active'
);
CREATE TABLE IF NOT EXISTS shards (
    run_id        TEXT NOT NULL,
    shard_id      TEXT NOT NULL,
    seq           INTEGER NOT NULL,
    payload       TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    not_before    REAL NOT NULL DEFAULT 0,
    lease_expires REAL,
    result        TEXT,
    error         TEXT,
    PRIMARY KEY (run_id, shard_id)
);
CREATE INDEX IF NOT EXISTS shards_by_state
    ON shards (run_id, state, not_before, seq);
CREATE TABLE IF NOT EXISTS events (
    event_seq INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id    TEXT NOT NULL,
    shard_id  TEXT,
    kind      TEXT NOT NULL,
    detail    TEXT NOT NULL DEFAULT ''
);
"""


class JobStore:
    """Durable queue + result store over one sqlite file.

    Use as a context manager (closes the connection) or call
    :meth:`close` explicitly.  ``":memory:"`` gives an ephemeral store
    for tests.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        with self._conn:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- runs ----------------------------------------------------------

    def create_run(self, run_id: str, kind: str, spec: Dict) -> None:
        """Register a run, or validate it if it already exists.

        Re-creating an existing run with the same ``kind`` and ``spec``
        is a no-op (that is what ``--resume`` does); a mismatch raises
        :class:`StoreConflictError` so a resume can never silently mix
        two different campaigns' shards.
        """
        encoded = json.dumps(spec, sort_keys=True)
        row = self._conn.execute(
            "SELECT kind, spec FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is not None:
            if row["kind"] != kind or row["spec"] != encoded:
                raise StoreConflictError(
                    f"run {run_id!r} already exists with a different "
                    f"{'kind' if row['kind'] != kind else 'spec'}"
                )
            return
        with self._conn:
            self._conn.execute(
                "INSERT INTO runs (run_id, kind, spec) VALUES (?, ?, ?)",
                (run_id, kind, encoded),
            )

    def load_run(self, run_id: str) -> Tuple[str, Dict]:
        """``(kind, spec)`` of a registered run."""
        row = self._conn.execute(
            "SELECT kind, spec FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no run {run_id!r} in {self.path}")
        return row["kind"], json.loads(row["spec"])

    def run_ids(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT run_id FROM runs ORDER BY run_id"
        ).fetchall()
        return [row["run_id"] for row in rows]

    # -- shard submission ----------------------------------------------

    def add_shards(
        self, run_id: str, shards: Sequence[Tuple[str, Dict]]
    ) -> int:
        """Insert ``(shard_id, payload)`` units, skipping known ids.

        Idempotent: resubmitting the same shard list (what a resume
        does after recomputing the campaign's point grid) inserts only
        genuinely new shards and never disturbs done/leased ones.
        Returns the number of newly inserted shards.
        """
        base = self._conn.execute(
            "SELECT COALESCE(MAX(seq), -1) FROM shards WHERE run_id = ?",
            (run_id,),
        ).fetchone()[0]
        inserted = 0
        with self._conn:
            for shard_id, payload in shards:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO shards "
                    "(run_id, shard_id, seq, payload) VALUES (?, ?, ?, ?)",
                    (
                        run_id,
                        shard_id,
                        base + 1 + inserted,
                        json.dumps(payload, sort_keys=True),
                    ),
                )
                inserted += cursor.rowcount
        return inserted

    # -- the state machine ---------------------------------------------

    def lease(
        self, run_id: str, now: float, timeout: float, limit: int = 1
    ) -> List[Shard]:
        """Atomically claim up to ``limit`` runnable pending shards.

        A shard is runnable when its backoff gate has passed
        (``not_before <= now``).  Claimed shards move to ``leased`` with
        ``attempts`` incremented and a lease expiring at ``now +
        timeout``; the guarded UPDATE means a shard can never be leased
        twice concurrently.
        """
        rows = self._conn.execute(
            "SELECT shard_id FROM shards WHERE run_id = ? AND state = ? "
            "AND not_before <= ? ORDER BY seq LIMIT ?",
            (run_id, ShardState.PENDING, now, limit),
        ).fetchall()
        leased: List[Shard] = []
        with self._conn:
            for row in rows:
                cursor = self._conn.execute(
                    "UPDATE shards SET state = ?, attempts = attempts + 1, "
                    "lease_expires = ? WHERE run_id = ? AND shard_id = ? "
                    "AND state = ?",
                    (
                        ShardState.LEASED,
                        now + timeout,
                        run_id,
                        row["shard_id"],
                        ShardState.PENDING,
                    ),
                )
                if cursor.rowcount:
                    leased.append(self.get(run_id, row["shard_id"]))
        return leased

    def complete(self, run_id: str, shard_id: str, result: Dict) -> bool:
        """``leased -> done`` with the result payload; False if not leased."""
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE shards SET state = ?, result = ?, error = NULL, "
                "lease_expires = NULL WHERE run_id = ? AND shard_id = ? "
                "AND state = ?",
                (
                    ShardState.DONE,
                    json.dumps(result, sort_keys=True),
                    run_id,
                    shard_id,
                    ShardState.LEASED,
                ),
            )
        return bool(cursor.rowcount)

    def fail(
        self,
        run_id: str,
        shard_id: str,
        error: str,
        retry_at: Optional[float] = None,
    ) -> bool:
        """``leased -> pending`` (retry, gated by ``retry_at``) or
        ``leased -> failed`` (terminal, when ``retry_at`` is None)."""
        if retry_at is None:
            new_state, not_before = ShardState.FAILED, 0.0
        else:
            new_state, not_before = ShardState.PENDING, retry_at
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE shards SET state = ?, error = ?, not_before = ?, "
                "lease_expires = NULL WHERE run_id = ? AND shard_id = ? "
                "AND state = ?",
                (new_state, error, not_before, run_id, shard_id,
                 ShardState.LEASED),
            )
        return bool(cursor.rowcount)

    def release_expired(self, run_id: str, now: float) -> List[str]:
        """Return expired leases to ``pending``; ids of released shards.

        This is how the shards of a crashed or wedged supervisor (or a
        SIGKILLed worker whose supervisor also died) rejoin the queue:
        nobody needs to clean up explicitly, the lease clock does it.
        """
        rows = self._conn.execute(
            "SELECT shard_id FROM shards WHERE run_id = ? AND state = ? "
            "AND lease_expires IS NOT NULL AND lease_expires <= ?",
            (run_id, ShardState.LEASED, now),
        ).fetchall()
        released = []
        with self._conn:
            for row in rows:
                cursor = self._conn.execute(
                    "UPDATE shards SET state = ?, lease_expires = NULL "
                    "WHERE run_id = ? AND shard_id = ? AND state = ? "
                    "AND lease_expires <= ?",
                    (ShardState.PENDING, run_id, row["shard_id"],
                     ShardState.LEASED, now),
                )
                if cursor.rowcount:
                    released.append(row["shard_id"])
        return released

    # -- introspection -------------------------------------------------

    def get(self, run_id: str, shard_id: str) -> Shard:
        row = self._conn.execute(
            "SELECT * FROM shards WHERE run_id = ? AND shard_id = ?",
            (run_id, shard_id),
        ).fetchone()
        if row is None:
            raise KeyError(f"no shard {shard_id!r} in run {run_id!r}")
        return _shard_from_row(row)

    def shards(
        self, run_id: str, state: Optional[str] = None
    ) -> List[Shard]:
        """All shards of a run (optionally one state), in ``seq`` order."""
        if state is None:
            rows = self._conn.execute(
                "SELECT * FROM shards WHERE run_id = ? ORDER BY seq",
                (run_id,),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM shards WHERE run_id = ? AND state = ? "
                "ORDER BY seq",
                (run_id, state),
            ).fetchall()
        return [_shard_from_row(row) for row in rows]

    def results(self, run_id: str) -> List[Dict]:
        """Result payloads of all done shards, in deterministic order."""
        rows = self._conn.execute(
            "SELECT result FROM shards WHERE run_id = ? AND state = ? "
            "ORDER BY seq",
            (run_id, ShardState.DONE),
        ).fetchall()
        return [json.loads(row["result"]) for row in rows]

    def counts(self, run_id: str) -> Dict[str, int]:
        """Shard count per state (all four states always present)."""
        rows = self._conn.execute(
            "SELECT state, COUNT(*) AS n FROM shards WHERE run_id = ? "
            "GROUP BY state",
            (run_id,),
        ).fetchall()
        counts = {state: 0 for state in ShardState.ALL}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def next_not_before(self, run_id: str) -> Optional[float]:
        """Earliest backoff gate among pending shards (None if no pending)."""
        row = self._conn.execute(
            "SELECT MIN(not_before) FROM shards WHERE run_id = ? "
            "AND state = ?",
            (run_id, ShardState.PENDING),
        ).fetchone()
        return row[0]

    # -- events --------------------------------------------------------

    def record_event(
        self,
        run_id: str,
        kind: str,
        detail: str = "",
        shard_id: Optional[str] = None,
    ) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT INTO events (run_id, shard_id, kind, detail) "
                "VALUES (?, ?, ?, ?)",
                (run_id, shard_id, kind, detail),
            )

    def events(
        self, run_id: str, kind: Optional[str] = None
    ) -> List[ShardEvent]:
        if kind is None:
            rows = self._conn.execute(
                "SELECT * FROM events WHERE run_id = ? ORDER BY event_seq",
                (run_id,),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM events WHERE run_id = ? AND kind = ? "
                "ORDER BY event_seq",
                (run_id, kind),
            ).fetchall()
        return [
            ShardEvent(
                seq=row["event_seq"],
                shard_id=row["shard_id"],
                kind=row["kind"],
                detail=row["detail"],
            )
            for row in rows
        ]


def _shard_from_row(row: sqlite3.Row) -> Shard:
    return Shard(
        run_id=row["run_id"],
        shard_id=row["shard_id"],
        seq=row["seq"],
        payload=json.loads(row["payload"]),
        state=row["state"],
        attempts=row["attempts"],
        not_before=row["not_before"],
        lease_expires=row["lease_expires"],
        result=json.loads(row["result"]) if row["result"] else None,
        error=row["error"],
    )
