"""Worker supervision: leases, timeouts, retries, and re-lease on death.

:func:`run_shards` drains one run's shard queue through a supervised
pool of child processes.  Unlike the ``ProcessPoolExecutor`` used by
:func:`repro.harness.parallel.parallel_map` (which collapses entirely
when any worker dies), the supervisor owns one child process per
in-flight shard, so every failure mode has a local, recoverable
response:

* **worker death** (SIGKILL, OOM, segfault) -- detected by exit code,
  the shard is failed-with-retry and re-leased; other shards keep
  running;
* **hang** -- a per-shard deadline; on expiry the worker is terminated
  (then killed) and the shard retried;
* **transient exception** -- reported over the result pipe, retried
  with exponential backoff and deterministic jitter (the jitter is
  derived from ``(shard_id, attempt)`` via
  :func:`~repro.harness.parallel.derive_seed`, so two supervisors
  racing on one store spread out identically and reproducibly);
* **retry exhaustion** -- the shard moves to ``failed`` with its last
  error; the run completes degraded rather than wedging;
* **pool collapse** -- if child processes cannot be spawned at all, the
  supervisor falls back to serial in-process execution and records the
  reason as a ``serial-fallback`` event, mirroring the
  ``plan_execution`` reason convention.

Because all progress lives in the :class:`~repro.jobs.store.JobStore`,
killing the *supervisor* at any point is also recoverable: a later
invocation re-leases whatever was in flight (after lease expiry) and
continues.  ``max_shards`` deliberately stops supervision after N
shards settle -- the hook tests and the CI chaos drill use to create
interrupted runs at a deterministic point.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from typing import Callable, Dict, List, Optional

from repro.harness.parallel import derive_seed
from repro.jobs import chaos as chaos_mod
from repro.jobs.chaos import ChaosPolicy, apply_chaos
from repro.jobs.store import JobStore, Shard, ShardState

__all__ = ["RetryPolicy", "SupervisorReport", "run_shards"]

#: Seconds between supervisor poll sweeps while workers are in flight.
POLL_INTERVAL = 0.02

#: Longest single sleep while waiting out a backoff gate.
BACKOFF_WAIT_SLICE = 0.25


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Per-shard failure handling: attempts, deadline, backoff curve."""

    #: total attempts per shard (first try included).
    max_attempts: int = 3
    #: per-shard wall-clock deadline in seconds (None = no deadline).
    timeout: Optional[float] = 60.0
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 10.0
    #: jitter fraction added on top of the exponential delay.
    backoff_jitter: float = 0.25

    def backoff_delay(self, shard_id: str, attempt: int) -> float:
        """Delay before retrying ``shard_id`` after failed ``attempt``.

        Exponential in the attempt number, capped, with deterministic
        jitter: the jitter draw comes from the SHA-256 seed mix, so
        retry schedules are reproducible run-to-run and still spread
        out across shards.
        """
        exponent = max(0, attempt - 1)
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** exponent,
        )
        draw = derive_seed("backoff", shard_id, attempt) / float(1 << 62)
        return base * (1.0 + self.backoff_jitter * draw)

    def lease_timeout(self) -> float:
        """Lease duration written to the store for supervised shards.

        Comfortably longer than the supervision deadline so the
        supervisor always adjudicates its own workers first; the lease
        clock only takes over when the supervisor itself died.
        """
        if self.timeout is None:
            return 3600.0
        return self.timeout * 2 + 30.0


@dataclasses.dataclass
class SupervisorReport:
    """What one supervision session did (embedded in run stats)."""

    mode: str  # "parallel" or "serial"
    reason: str  # why that mode (plan_execution convention)
    jobs: int
    completed: int = 0
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    releases: int = 0  # expired foreign leases reclaimed
    stopped_early: bool = False
    remaining: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def drained(self) -> bool:
        """Every shard settled (done or failed); nothing left to run."""
        return not (
            self.remaining.get(ShardState.PENDING, 0)
            or self.remaining.get(ShardState.LEASED, 0)
        )

    def to_json(self) -> Dict:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        tail = []
        if self.retries:
            tail.append(f"{self.retries} retries")
        if self.timeouts:
            tail.append(f"{self.timeouts} timeouts")
        if self.worker_deaths:
            tail.append(f"{self.worker_deaths} worker deaths")
        if self.failed:
            tail.append(f"{self.failed} failed")
        extras = f" ({', '.join(tail)})" if tail else ""
        return (
            f"{self.mode} x{self.jobs}: {self.reason}; "
            f"{self.completed} shards completed{extras}"
        )


@dataclasses.dataclass
class _Active:
    """One in-flight worker child."""

    shard: Shard
    process: multiprocessing.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection
    deadline: Optional[float]


def _worker_main(
    conn,
    worker: Callable[[Dict], Dict],
    payload: Dict,
    shard_id: str,
    attempt: int,
    chaos: Optional[ChaosPolicy],
) -> None:
    """Child entry point: chaos hook, payload, result over the pipe."""
    try:
        apply_chaos(chaos, shard_id, attempt)
        result = worker(payload)
    except BaseException as error:
        conn.send(("error", f"{type(error).__name__}: {error}"))
    else:
        conn.send(("ok", result))
    finally:
        conn.close()


def _spawn_context():
    """Prefer ``fork`` (cheap, inherits registries) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


def run_shards(
    store: JobStore,
    run_id: str,
    worker: Callable[[Dict], Dict],
    jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosPolicy] = None,
    max_shards: Optional[int] = None,
) -> SupervisorReport:
    """Supervise ``run_id``'s queue until drained (or ``max_shards``).

    ``worker`` must be a module-level (picklable) callable taking one
    JSON payload dict and returning a JSON-serializable result dict --
    the same contract as :func:`~repro.harness.parallel.parallel_map`
    workers.  ``jobs`` follows the ``--jobs`` convention (``0`` = all
    cores, ``1`` = serial in-process).  Progress is durable: every
    state transition lands in the store before the supervisor moves on,
    so this function may be killed at any point and re-invoked.
    """
    policy = policy or RetryPolicy()
    from repro.harness.parallel import resolve_jobs

    workers = resolve_jobs(jobs)
    serial = workers <= 1
    reason = (
        "jobs <= 1 requested" if serial
        else f"{workers} supervised workers"
    )
    report = SupervisorReport(
        mode="serial" if serial else "parallel",
        reason=reason,
        jobs=1 if serial else workers,
    )
    context = _spawn_context()
    active: Dict[str, _Active] = {}
    finalized = 0  # shards settled (done/failed) by THIS session

    def handle_failure(shard: Shard, error: str) -> None:
        nonlocal finalized
        now = time.time()
        if shard.attempts >= policy.max_attempts:
            store.fail(run_id, shard.shard_id, error, retry_at=None)
            store.record_event(
                run_id, "failed",
                f"attempt {shard.attempts}/{policy.max_attempts}: {error}",
                shard_id=shard.shard_id,
            )
            report.failed += 1
            finalized += 1
            return
        delay = policy.backoff_delay(shard.shard_id, shard.attempts)
        store.fail(run_id, shard.shard_id, error, retry_at=now + delay)
        store.record_event(
            run_id, "retry",
            f"attempt {shard.attempts}/{policy.max_attempts} failed "
            f"({error}); backoff {delay:.3f}s",
            shard_id=shard.shard_id,
        )
        report.retries += 1

    def run_serial_shard(shard: Shard) -> None:
        nonlocal finalized
        if chaos is not None:
            action = chaos.action(shard.shard_id, shard.attempts)
            if action in (chaos_mod.KILL, chaos_mod.HANG):
                store.record_event(
                    run_id, "chaos-skip",
                    f"{action} not injectable in serial mode",
                    shard_id=shard.shard_id,
                )
        try:
            apply_chaos(chaos, shard.shard_id, shard.attempts,
                        in_process=True)
            result = worker(shard.payload)
        except Exception as error:
            handle_failure(shard, f"{type(error).__name__}: {error}")
        else:
            store.complete(run_id, shard.shard_id, result)
            report.completed += 1
            finalized += 1

    def reap(now: float) -> None:
        nonlocal finalized
        for shard_id, act in list(active.items()):
            message = None
            if act.conn.poll():
                try:
                    message = act.conn.recv()
                except (EOFError, OSError):
                    message = None
            if message is not None:
                status, payload = message
                act.process.join(timeout=5)
                act.conn.close()
                if status == "ok":
                    store.complete(run_id, shard_id, payload)
                    report.completed += 1
                    finalized += 1
                else:
                    handle_failure(act.shard, payload)
                del active[shard_id]
            elif not act.process.is_alive():
                exitcode = act.process.exitcode
                act.conn.close()
                store.record_event(
                    run_id, "worker-death",
                    f"worker exited with code {exitcode} before "
                    f"reporting a result",
                    shard_id=shard_id,
                )
                report.worker_deaths += 1
                handle_failure(
                    act.shard, f"worker died (exit code {exitcode})"
                )
                del active[shard_id]
            elif act.deadline is not None and now >= act.deadline:
                act.process.terminate()
                act.process.join(timeout=1)
                if act.process.is_alive():
                    act.process.kill()
                    act.process.join(timeout=5)
                act.conn.close()
                store.record_event(
                    run_id, "timeout",
                    f"no result within {policy.timeout}s; worker "
                    f"terminated",
                    shard_id=shard_id,
                )
                report.timeouts += 1
                handle_failure(
                    act.shard,
                    f"shard timed out after {policy.timeout}s",
                )
                del active[shard_id]

    def spawn(shard: Shard) -> bool:
        """Start a child for ``shard``; False on pool collapse."""
        nonlocal serial
        try:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, worker, shard.payload, shard.shard_id,
                      shard.attempts, chaos),
                daemon=True,
            )
            process.start()
            child_conn.close()
        except OSError as error:
            serial = True
            report.mode = "serial"
            report.reason = (
                f"pool collapse: worker spawn failed ({error}); "
                f"degraded to serial in-process execution"
            )
            report.jobs = 1
            store.record_event(run_id, "serial-fallback", report.reason)
            run_serial_shard(shard)
            return False
        deadline = (
            time.time() + policy.timeout
            if policy.timeout is not None else None
        )
        active[shard.shard_id] = _Active(
            shard=shard, process=process, conn=parent_conn,
            deadline=deadline,
        )
        return True

    try:
        while True:
            now = time.time()
            for shard_id in store.release_expired(run_id, now):
                store.record_event(
                    run_id, "lease-expired",
                    "expired lease released back to pending",
                    shard_id=shard_id,
                )
                report.releases += 1
            reap(now)

            budget = None
            if max_shards is not None:
                budget = max_shards - finalized - len(active)
                if budget <= 0 and not active:
                    break
            if serial:
                capacity = 0 if active else 1
            else:
                capacity = workers - len(active)
            if budget is not None:
                capacity = min(capacity, budget)
            leased: List[Shard] = []
            if capacity > 0:
                leased = store.lease(
                    run_id, now, policy.lease_timeout(), capacity
                )
                for shard in leased:
                    if serial:
                        run_serial_shard(shard)
                    else:
                        spawn(shard)

            counts = store.counts(run_id)
            if not active and not counts[ShardState.PENDING] and (
                not counts[ShardState.LEASED]
            ):
                break
            if active:
                time.sleep(POLL_INTERVAL)
            elif not leased:
                # Nothing in flight and nothing leasable right now:
                # wait out the earliest backoff gate (or a foreign
                # supervisor's unexpired lease) without busy-spinning.
                gate = store.next_not_before(run_id)
                if gate is not None and gate > now:
                    time.sleep(min(gate - now, BACKOFF_WAIT_SLICE))
                else:
                    time.sleep(POLL_INTERVAL)
    finally:
        # Supervisor teardown: never leave orphaned workers behind,
        # whatever interrupted the loop (KeyboardInterrupt included).
        for act in active.values():
            if act.process.is_alive():
                act.process.terminate()
        for act in active.values():
            act.process.join(timeout=1)
            if act.process.is_alive():
                act.process.kill()
                act.process.join(timeout=5)
            try:
                act.conn.close()
            except OSError:
                pass  # connection already torn down with the worker

    report.remaining = store.counts(run_id)
    report.stopped_early = not report.drained
    return report
