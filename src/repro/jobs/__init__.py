"""Crash-safe execution layer for sweeps and campaigns.

The Monte-Carlo harnesses were, until this package, only as durable as
the single process running them: a SIGKILLed campaign restarted from
zero, a hung worker hung ``--jobs`` forever, and nothing proved
otherwise.  For a repo whose *subject* is computation that survives
crashes in asynchronous systems, the harness itself should meet the
same bar.  ``repro.jobs`` provides that bar in three pieces:

* :mod:`repro.jobs.store` -- :class:`JobStore`, a sqlite-backed job
  queue + result store.  Work is decomposed into *shards* (one
  self-contained payload each, seeded via
  :func:`repro.harness.parallel.derive_seed` so results are independent
  of where or when a shard runs) with atomic state transitions
  ``pending -> leased -> done | failed``.  Every transition is a guarded
  single-statement UPDATE, so a crash between any two statements leaves
  a consistent queue that the next run can resume.
* :mod:`repro.jobs.supervisor` -- :func:`run_shards`, a worker
  supervisor that leases shards, executes them in child processes with
  per-shard timeouts, detects dead workers (SIGKILL, OOM) and re-leases
  their shards, retries transient failures with exponential backoff and
  deterministic jitter, and degrades gracefully to serial in-process
  execution when a pool cannot be sustained -- recording *why* in the
  run's event log, mirroring the ``plan_execution`` convention.
* :mod:`repro.jobs.chaos` -- :class:`ChaosPolicy`, deterministic fault
  injection (worker SIGKILL, artificial hangs, transient exceptions)
  aimed at the harness itself.  The same adversarial mindset the repo
  applies to protocols, now proving the supervisor's guarantees.

Because shard payloads are deterministic functions of their seeds, a
resumed run's aggregate is **bit-identical** to an uninterrupted run;
:func:`repro.verify.diff_resumed` checks exactly that, and the CI
``chaos-smoke`` job SIGKILLs workers mid-campaign to keep it true.
"""

from repro.jobs.chaos import ChaosError, ChaosPolicy, apply_chaos
from repro.jobs.store import (
    JobStore,
    Shard,
    ShardEvent,
    ShardState,
    StoreConflictError,
)
from repro.jobs.supervisor import (
    RetryPolicy,
    SupervisorReport,
    run_shards,
)

__all__ = [
    "ChaosError",
    "ChaosPolicy",
    "JobStore",
    "RetryPolicy",
    "Shard",
    "ShardEvent",
    "ShardState",
    "StoreConflictError",
    "SupervisorReport",
    "apply_chaos",
    "run_shards",
]
