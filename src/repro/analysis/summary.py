"""The paper's Section 2.1 "Summary of Results" as structured data.

Each of the 24 (model, validity) variants gets a closed-form description
of its possibility and impossibility frontiers -- the caption-level
content of Figs. 2, 4, 5 and 6 -- with lemma citations, plus a status
flag: completely characterized, tiny gap (isolated points), small gap,
or substantial gap, matching the paper's own assessment.

The entries are *checked against the classifier* by the test suite: for
sampled n, the closed-form bounds must coincide with the region maps.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.core.validity import by_code
from repro.models import ALL_MODELS, Model

__all__ = ["SUMMARY", "VariantSummary", "render_summary", "variant"]


@dataclasses.dataclass(frozen=True)
class VariantSummary:
    """Closed-form frontier description of one (model, validity) variant."""

    model: Model
    validity: str
    possible: str       # closed-form possibility region (or "-" if none)
    impossible: str     # closed-form impossibility region
    gap: str            # "none" | "isolated points" | "small" | "substantial"
    possibility_cites: Tuple[str, ...]
    impossibility_cites: Tuple[str, ...]

    def row(self) -> str:
        return (
            f"{self.model.shorthand:7s} {self.validity:4s}  "
            f"possible: {self.possible:34s} impossible: {self.impossible:28s} "
            f"gap: {self.gap}"
        )


SUMMARY: Tuple[VariantSummary, ...] = (
    # ---------------- MP/CR (Fig. 2) ----------------
    VariantSummary(Model.MP_CR, "SV1", "-", "all t >= 1", "none",
                   (), ("Lemma 3.5",)),
    VariantSummary(Model.MP_CR, "SV2", "t < (k-1)n/2k", "t >= kn/(2k+1)",
                   "small", ("Lemma 3.8",), ("Lemma 3.6",)),
    VariantSummary(Model.MP_CR, "RV1", "t < k", "t >= k", "none",
                   ("Lemma 3.1",), ("Lemma 3.2",)),
    VariantSummary(Model.MP_CR, "RV2", "t < (k-1)n/k", "t >= ((k-1)n+1)/k",
                   "isolated points", ("Lemma 3.7",), ("Lemma 3.3",)),
    VariantSummary(Model.MP_CR, "WV1", "t < k", "t >= k", "none",
                   ("Lemma 3.1",), ("Lemma 3.4",)),
    VariantSummary(Model.MP_CR, "WV2", "t < (k-1)n/k", "t >= ((k-1)n+1)/k",
                   "isolated points", ("Lemma 3.7",), ("Lemma 3.3",)),
    # ---------------- MP/Byz (Fig. 4) ----------------
    VariantSummary(Model.MP_BYZ, "SV1", "-", "all t >= 1", "none",
                   (), ("Lemma 3.5",)),
    VariantSummary(Model.MP_BYZ, "SV2",
                   "exists l: t < (k-1)n/(2k+l-1), t < ln/(2l+1)",
                   "t >= kn/(2(k+1))", "small",
                   ("Lemma 3.15",), ("Lemma 3.11", "Lemma 3.6")),
    VariantSummary(Model.MP_BYZ, "RV1", "-", "all t >= 1", "none",
                   (), ("Lemma 3.10",)),
    VariantSummary(Model.MP_BYZ, "RV2",
                   "exists l: t < (k-1)n/(2k+l-1), t < ln/(2l+1)",
                   "t >= kn/(2(k+1))", "small",
                   ("Lemma 3.15",), ("Lemma 3.11",)),
    VariantSummary(Model.MP_BYZ, "WV1", "k >= Z(n, t)", "t >= k",
                   "substantial", ("Lemma 3.16",), ("Lemma 3.4",)),
    VariantSummary(Model.MP_BYZ, "WV2",
                   "t < n/2, k >= (n-t)/(n-2t)+1; or t >= n/2, k >= t+1",
                   "t >= kn/(2k+1) and t >= k; or t >= ((k-1)n+1)/k",
                   "small", ("Lemma 3.12", "Lemma 3.13"),
                   ("Lemma 3.9", "Lemma 3.3")),
    # ---------------- SM/CR (Fig. 5) ----------------
    VariantSummary(Model.SM_CR, "SV1", "-", "all t >= 1", "none",
                   (), ("Lemma 4.2",)),
    VariantSummary(Model.SM_CR, "SV2", "k > t+1; or t < (k-1)n/2k",
                   "t >= n/2 and t >= k", "small",
                   ("Lemma 4.7", "Lemma 4.6"), ("Lemma 4.3",)),
    VariantSummary(Model.SM_CR, "RV1", "t < k", "t >= k", "none",
                   ("Lemma 4.4",), ("Lemma 3.2",)),
    VariantSummary(Model.SM_CR, "RV2", "all k >= 2 (any t)", "-", "none",
                   ("Lemma 4.5",), ()),
    VariantSummary(Model.SM_CR, "WV1", "t < k", "t >= k", "none",
                   ("Lemma 4.4",), ("Lemma 4.1",)),
    VariantSummary(Model.SM_CR, "WV2", "all k >= 2 (any t)", "-", "none",
                   ("Lemma 4.5",), ()),
    # ---------------- SM/Byz (Fig. 6) ----------------
    VariantSummary(Model.SM_BYZ, "SV1", "-", "all t >= 1", "none",
                   (), ("Lemma 4.2",)),
    VariantSummary(Model.SM_BYZ, "SV2",
                   "k > t+1; or exists l: PROTOCOL C(l) region",
                   "t >= n/2 and t >= k", "small",
                   ("Lemma 4.12", "Lemma 4.11"), ("Lemma 4.3",)),
    VariantSummary(Model.SM_BYZ, "RV1", "-", "all t >= 1", "none",
                   (), ("Lemma 4.8",)),
    VariantSummary(Model.SM_BYZ, "RV2",
                   "k > t+1; or exists l: PROTOCOL C(l) region",
                   "t >= n/2 and t >= k", "small",
                   ("Lemma 4.12", "Lemma 4.11"), ("Lemma 4.9",)),
    VariantSummary(Model.SM_BYZ, "WV1", "k >= Z(n, t)", "k <= t",
                   "substantial", ("Lemma 4.13",), ("Lemma 4.1",)),
    VariantSummary(Model.SM_BYZ, "WV2", "all k >= 2 (any t)", "-", "none",
                   ("Lemma 4.10",), ()),
)

_BY_KEY: Dict[Tuple[Model, str], VariantSummary] = {
    (entry.model, entry.validity): entry for entry in SUMMARY
}


def variant(model: Model, validity_code: str) -> VariantSummary:
    """The summary entry for one (model, validity) variant."""
    by_code(validity_code)  # validate the code
    return _BY_KEY[(model, validity_code.upper())]


def render_summary() -> str:
    """Section 2.1 as a text table, grouped by model."""
    lines = ["Summary of results (paper Section 2.1; 2 <= k <= n-1, t >= 1):", ""]
    for model in ALL_MODELS:
        lines.append(f"--- {model} ---")
        for entry in SUMMARY:
            if entry.model is model:
                lines.append("  " + entry.row())
        lines.append("")
    lines.append(
        "Gap legend: none = complete characterization; isolated points = "
        "open only where k | n on the frontier; small/substantial as the "
        "paper describes."
    )
    return "\n".join(lines)
