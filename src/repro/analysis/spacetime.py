"""ASCII space-time (Lamport) diagrams of executions.

Renders a finished trace as one column per process and one row per
kernel tick, showing broadcasts, deliveries, decisions, and crashes --
the textual equivalent of the run diagrams the paper draws (Fig. 3).
Indispensable when debugging why a schedule forced a particular
decision pattern.

Example output (one row per event)::

    tick  p0          p1          p2
       0  bcast VAL
       1              bcast VAL
       ...
       7  <-p1 VAL
       9  DECIDE 'v'
      11  CRASH
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.runtime.traces import Trace, TraceRecord

__all__ = ["render_spacetime"]

_MAX_PAYLOAD = 14


def _payload_text(payload) -> str:
    text = repr(payload)
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        # show the tag plus a shortened body
        body = ", ".join(repr(x) for x in payload[1:])
        text = f"{payload[0]} {body}"
    if len(text) > _MAX_PAYLOAD:
        text = text[: _MAX_PAYLOAD - 1] + "~"
    return text


def _cell(record: TraceRecord) -> Optional[str]:
    if record.kind == "start":
        return "start"
    if record.kind == "send":
        return f"->p{record.peer} {_payload_text(record.payload)}"
    if record.kind == "deliver":
        return f"<-p{record.peer} {_payload_text(record.payload)}"
    if record.kind == "decide":
        return f"DECIDE {_payload_text(record.payload)}"
    if record.kind == "crash":
        return "CRASH"
    if record.kind == "drop":
        return f"(drop p{record.peer})"
    if record.kind == "read":
        return f"rd[{record.peer}] {_payload_text(record.payload)}"
    if record.kind == "write":
        return f"wr {_payload_text(record.payload)}"
    if record.kind == "halt":
        return "halt"
    return None  # send-suppressed and other noise


def render_spacetime(
    trace: Trace,
    n: int,
    pids: Optional[Sequence[int]] = None,
    collapse_sends: bool = True,
    max_rows: int = 200,
) -> str:
    """Render a trace as a process/time grid.

    Args:
        trace: the finished execution trace.
        n: total number of processes.
        pids: subset of processes to show (default: all).
        collapse_sends: summarize a run of consecutive sends by the same
            process (i.e. a broadcast) into a single ``bcast`` cell.
        max_rows: truncate long diagrams.
    """
    shown = list(pids) if pids is not None else list(range(n))
    width = max(18, 6 + _MAX_PAYLOAD)
    header = "tick  " + "".join(f"p{pid}".ljust(width) for pid in shown)
    lines: List[str] = [header, "-" * len(header)]

    rows: List[Dict[int, str]] = []
    row_ticks: List[int] = []

    pending_bcast: Dict[int, int] = {}

    def flush_bcast(pid: int) -> None:
        count = pending_bcast.pop(pid, 0)
        if count:
            rows.append({pid: f"bcast x{count}"})
            row_ticks.append(-1)

    for record in trace:
        if record.pid not in shown:
            continue
        if collapse_sends and record.kind == "send":
            pending_bcast[record.pid] = pending_bcast.get(record.pid, 0) + 1
            continue
        flush_bcast(record.pid)
        cell = _cell(record)
        if cell is None:
            continue
        rows.append({record.pid: cell})
        row_ticks.append(record.tick)

    for pid in list(pending_bcast):
        flush_bcast(pid)

    for index, (tick, row) in enumerate(zip(row_ticks, rows)):
        if index >= max_rows:
            lines.append(f"... ({len(rows) - max_rows} more rows)")
            break
        tick_text = f"{tick:4d}  " if tick >= 0 else "      "
        body = "".join(
            (row.get(pid, "") or "").ljust(width) for pid in shown
        )
        lines.append((tick_text + body).rstrip())

    return "\n".join(lines)
