"""Experiment reports: analytic regions + empirical validation, per figure.

For each paper figure (2, 4, 5, 6) the report combines:

* the analytic region maps at the paper's ``n = 64`` (from
  :mod:`repro.core.regions`),
* possible-side empirical validation -- Monte-Carlo sweeps of every
  registered protocol at sampled points inside its solvable region (at a
  smaller ``n`` for runtime), asserting zero violations,
* impossible-side demonstrations -- the executable proof constructions
  of :mod:`repro.adversary.constructions` for that model.

``generate_experiments_md`` assembles the whole EXPERIMENTS.md document.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary import constructions as cx
from repro.analysis.figures import FIGURE_BY_MODEL, render_figure
from repro.analysis.lattice import render_lattice, verify_lattice
from repro.core.regions import frontier, region_map
from repro.core.validity import ALL_VALIDITY_CONDITIONS, by_code
from repro.harness.sweep import SweepConfig, SweepStats, sweep_spec
from repro.models import ALL_MODELS, Model
from repro.protocols.base import ProtocolSpec, all_specs

__all__ = [
    "FigureValidation",
    "constructions_for_model",
    "generate_experiments_md",
    "sample_solvable_points",
    "validate_figure",
]

#: Impossibility constructions per model (executed by the figure benches).
_CONSTRUCTIONS_BY_MODEL: Dict[Model, Tuple] = {
    Model.MP_CR: (
        cx.lemma_3_3_partition_run,
        cx.set_overflow_run,
        cx.lemma_3_4_wv1_overflow,
        cx.lemma_3_5_crash_after_decide,
        cx.lemma_3_6_subgroup_run,
    ),
    Model.MP_BYZ: (
        cx.lemma_3_9_two_faced_run,
        cx.lemma_3_10_value_lie,
        cx.lemma_3_11_rv2_lie,
    ),
    Model.SM_CR: (
        cx.lemma_4_3_staged_run,
    ),
    Model.SM_BYZ: (
        cx.lemma_4_8_sm_value_lie,
        cx.lemma_4_9_register_lie,
    ),
}


def constructions_for_model(model: Model) -> Tuple[cx.ConstructionResult, ...]:
    """Execute the impossibility-run constructions relevant to a figure."""
    return tuple(build() for build in _CONSTRUCTIONS_BY_MODEL[model])


def sample_solvable_points(
    spec: ProtocolSpec,
    n: int,
    count: int,
    rng: random.Random,
) -> List[Tuple[int, int]]:
    """Sample up to ``count`` ``(k, t)`` points inside a spec's region.

    Always includes the extreme points (smallest solvable ``k``, largest
    solvable ``t``) so sweeps probe the frontier, then fills with random
    interior points.
    """
    candidates = [
        (k, t)
        for k in range(2, n)
        for t in range(1, n + 1)
        if spec.solvable(n, k, t)
    ]
    if not candidates:
        return []
    picked = {min(candidates), max(candidates, key=lambda kt: (kt[1], kt[0]))}
    remaining = [p for p in candidates if p not in picked]
    rng.shuffle(remaining)
    for point in remaining:
        if len(picked) >= count:
            break
        picked.add(point)
    return sorted(picked)


@dataclasses.dataclass
class FigureValidation:
    """Empirical results backing one paper figure."""

    model: Model
    n_empirical: int
    sweeps: List[SweepStats]
    constructions: Tuple[cx.ConstructionResult, ...]

    @property
    def possible_side_clean(self) -> bool:
        return all(s.clean for s in self.sweeps)

    @property
    def impossible_side_demonstrated(self) -> bool:
        return all(c.demonstrates_violation for c in self.constructions)

    @property
    def ok(self) -> bool:
        return self.possible_side_clean and self.impossible_side_demonstrated


def _figure_sweep_task(task) -> SweepStats:
    """Module-level worker: one figure-validation grid point."""
    from repro.protocols.base import get_spec

    spec_name, n, k, t, runs, seed, engine = task
    return sweep_spec(
        get_spec(spec_name), n, k, t, SweepConfig(runs=runs, seed=seed),
        engine=engine,
    )


def validate_figure(
    model: Model,
    n_empirical: int = 9,
    points_per_spec: int = 3,
    runs_per_point: int = 20,
    seed: int = 0,
    jobs: int = 1,
    engine: str = "scalar",
) -> FigureValidation:
    """Empirically validate one figure's possible and impossible sides.

    The sweep grid (every registered protocol of the model at sampled
    solvable points) is built up front with deterministic per-point
    seeds, then executed -- in parallel worker processes when
    ``jobs > 1`` (``0`` = all cores), with results identical to serial.
    """
    from repro.harness.parallel import parallel_map

    rng = random.Random(seed)
    tasks = []
    for spec in all_specs(model=model):
        for (k, t) in sample_solvable_points(spec, n_empirical, points_per_spec, rng):
            tasks.append(
                (spec.name, n_empirical, k, t, runs_per_point,
                 rng.randrange(1 << 30), engine)
            )
    sweeps = parallel_map(_figure_sweep_task, tasks, jobs=jobs)
    return FigureValidation(
        model=model,
        n_empirical=n_empirical,
        sweeps=sweeps,
        constructions=constructions_for_model(model),
    )


def _frontier_table(model: Model, n: int, ks: Sequence[int]) -> str:
    """Markdown table of crossover thresholds for selected k."""
    header = "| validity | " + " | ".join(f"k={k}" for k in ks) + " |"
    sep = "|---" * (len(ks) + 1) + "|"
    rows = [header, sep]
    for validity in ALL_VALIDITY_CONDITIONS:
        region = region_map(model, validity, n, k_values=ks)
        series = frontier(region)
        cells = []
        for k in ks:
            entry = series[k]
            max_p = entry["max_possible_t"]
            min_i = entry["min_impossible_t"]
            cells.append(
                f"t<= {max_p if max_p is not None else '-'} / "
                f"t>= {min_i if min_i is not None else '-'}"
            )
        rows.append(f"| {validity.code} | " + " | ".join(cells) + " |")
    return "\n".join(rows)


def figure_section(
    model: Model,
    n_analytic: int = 64,
    validation: Optional[FigureValidation] = None,
) -> str:
    """One figure's EXPERIMENTS.md section."""
    number = FIGURE_BY_MODEL[model]
    lines = [f"## Fig. {number} -- {model} model (n = {n_analytic})", ""]
    lines.append(
        "Frontier (largest solvable t / smallest impossible t) per validity "
        "condition at selected k:"
    )
    lines.append("")
    lines.append(_frontier_table(model, n_analytic, (2, 4, 8, 16, 32, 63)))
    lines.append("")
    if validation is not None:
        lines.append(
            f"Possible side: {len(validation.sweeps)} sweep points at "
            f"n = {validation.n_empirical}, "
            f"{sum(s.runs for s in validation.sweeps)} randomized runs, "
            f"{sum(len(s.violations) for s in validation.sweeps)} violations."
        )
        for stats in validation.sweeps:
            lines.append(f"  * {stats.summary()}")
        lines.append("")
        lines.append("Impossible side (executed proof constructions):")
        for result in validation.constructions:
            status = "violated" if result.demonstrates_violation else "NO VIOLATION (!)"
            lines.append(f"  * {result.summary()} [{status}]")
        lines.append("")
    return "\n".join(lines)


def generate_experiments_md(
    n_analytic: int = 64,
    n_empirical: int = 9,
    points_per_spec: int = 3,
    runs_per_point: int = 20,
    seed: int = 0,
    include_panels: bool = False,
) -> str:
    """Assemble the full EXPERIMENTS.md content."""
    lines = [
        "# EXPERIMENTS -- paper vs. measured",
        "",
        "Generated by `python -m repro.analysis.report` (or `make",
        "experiments`).  Every figure of the paper is reproduced",
        "analytically (region maps at n = 64 from the lemma bounds) and",
        "validated empirically (randomized sweeps inside solvable regions",
        "must be violation-free; the proofs' adversarial runs outside them",
        "must exhibit violations).  Sweep throughput (serial vs. parallel,",
        "FULL vs. COUNTERS tracing) is tracked separately by",
        "`benchmarks/bench_sweep_throughput.py`, which writes",
        "`BENCH_sweep_throughput.json` (`make bench-throughput`).",
        "",
        "## Fig. 1 -- validity lattice",
        "",
        "```",
        render_lattice(),
        "```",
        "",
    ]
    check = verify_lattice()
    lines.append(
        f"Empirical check over {check.samples} random outcomes: "
        f"{len(check.implication_violations)} implication violations, "
        f"{len(check.missing_witnesses)} missing separations "
        f"({'OK' if check.ok else 'FAILED'})."
    )
    lines.append("")
    for model in ALL_MODELS:
        validation = validate_figure(
            model,
            n_empirical=n_empirical,
            points_per_spec=points_per_spec,
            runs_per_point=runs_per_point,
            seed=seed,
        )
        lines.append(figure_section(model, n_analytic, validation))
        if include_panels:
            lines.append("```")
            lines.append(render_figure(model, n=n_analytic))
            lines.append("```")
            lines.append("")
    lines.append(_summary_section())
    lines.append(_separation_section(n_analytic))
    lines.append(_complexity_section())
    lines.append(_open_problem_section())
    return "\n".join(lines)


def _separation_section(n: int) -> str:
    from repro.core.regions import separation_points
    from repro.core.validity import RV2, SV2, WV2
    from repro.models import Model

    lines = [
        "## Model separations (where the communication medium matters)",
        "",
        "Points impossible in message passing but solvable in shared",
        f"memory at n = {n} -- the paper's headline contrast between the",
        "Fig. 2 and Fig. 5 panels:",
        "",
    ]
    for validity in (RV2, WV2, SV2):
        points = separation_points(Model.MP_CR, Model.SM_CR, validity, n)
        sample = ", ".join(f"(k={k}, t={t})" for k, t in points[:4])
        lines.append(
            f"* {validity.code}: {len(points)} separation points"
            + (f"; e.g. {sample}, ..." if points else "")
        )
    lines.append("")
    lines.append(
        "The reverse separations (SM impossible, MP solvable) are empty, "
        "and crash never loses to Byzantine -- both checked by "
        "`tests/core/test_regions.py`."
    )
    lines.append("")
    return "\n".join(lines)


def _summary_section() -> str:
    from repro.analysis.summary import render_summary

    return (
        "## Closed-form summary (paper Section 2.1)\n\n"
        "The per-variant frontier formulas below are cross-checked against\n"
        "the classifier by `tests/test_paper_index.py`.\n\n"
        "```\n" + render_summary() + "\n```\n"
    )


def _complexity_section() -> str:
    from repro.analysis.complexity import growth_exponent, standard_suite

    suite = standard_suite((6, 9, 12, 16))
    lines = [
        "## Protocol cost (not reported by the paper; measured here)",
        "",
        "Point-to-point sends (MP) / register operations (SM) per run on",
        "the deterministic kernel, FIFO/round-robin schedule, with the",
        "fitted growth exponent of cost against n:",
        "",
        "| protocol | costs at n = 6, 9, 12, 16 | ~n^d |",
        "|---|---|---|",
    ]
    for key in sorted(suite):
        series = suite[key]
        lines.append(
            f"| {series.label} | {', '.join(map(str, series.costs()))} "
            f"| {growth_exponent(series):.2f} |"
        )
    lines.append("")
    return "\n".join(lines)


def _open_problem_section() -> str:
    from repro.protocols.halting import straggler_run

    halting = straggler_run(halting=True)
    plain = straggler_run(halting=False)
    return (
        "## Section 5's open problem, made executable\n\n"
        "PROTOCOL C(l) modified to *halt* after deciding, under the\n"
        "straggler schedule (one correct process's messages delayed until\n"
        "the rest decided): termination "
        + ("**violated**" if not halting.verdicts["termination"] else "held (!)")
        + " for the straggler; the plain, ever-echoing PROTOCOL C under the\n"
        "identical schedule: "
        + ("all conditions held." if plain.ok else "violated (!).")
        + "\nEvidence for why terminating Byzantine protocols remain open;\n"
        "see `repro.protocols.halting`.\n"
    )


def main() -> None:  # pragma: no cover - CLI entry point
    print(generate_experiments_md())


if __name__ == "__main__":  # pragma: no cover
    main()
