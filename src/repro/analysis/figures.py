"""Render the paper's region figures (Figs. 2, 4, 5, 6) as text and CSV.

The paper fills solvable regions with a honeycomb pattern and impossible
regions with a brick pattern; here solvable points render as ``o``,
impossible as ``#``, and open problems as ``.`` -- the same three-way
legend, terminal-friendly.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional

from repro.core.regions import RegionMap, frontier, region_map
from repro.core.solvability import Solvability
from repro.core.validity import ALL_VALIDITY_CONDITIONS
from repro.models import Model

__all__ = [
    "FIGURE_BY_MODEL",
    "render_figure",
    "render_panel",
    "panel_csv",
]

#: Paper figure number per model.
FIGURE_BY_MODEL = {
    Model.MP_CR: 2,
    Model.MP_BYZ: 4,
    Model.SM_CR: 5,
    Model.SM_BYZ: 6,
}

_GLYPH = {
    Solvability.POSSIBLE: "o",
    Solvability.IMPOSSIBLE: "#",
    Solvability.OPEN: ".",
}


def render_panel(region: RegionMap, max_width: int = 64) -> str:
    """Render one panel: ``t`` increases upward, ``k`` rightward.

    When the grid is wider than ``max_width`` columns it is subsampled
    evenly (the paper's n = 64 panels fit unsampled).
    """
    ks = list(region.k_values)
    ts = list(region.t_values)
    if len(ks) > max_width:
        step = (len(ks) + max_width - 1) // max_width
        ks = ks[::step]
    lines: List[str] = []
    title = (
        f"{region.model} / {region.validity.code} "
        f"({region.validity.name}), n = {region.n}"
    )
    lines.append(title)
    lines.append(
        "legend: o = solvable, # = impossible, . = open   "
        "(x: k = {}..{}, y: t = {}..{})".format(
            ks[0], ks[-1], ts[0], ts[-1]
        )
    )
    for t in reversed(ts):
        row = "".join(_GLYPH[region.status(k, t)] for k in ks)
        lines.append(f"t={t:>3} |{row}")
    lines.append("      +" + "-" * len(ks))
    k_axis = "       "
    for i, k in enumerate(ks):
        k_axis += str(k % 10)
    lines.append(k_axis + "   (k mod 10)")
    return "\n".join(lines)


def render_figure(
    model: Model,
    n: int = 64,
    validities: Optional[Iterable] = None,
    max_width: int = 64,
) -> str:
    """Render all six panels of one paper figure."""
    conditions = tuple(validities) if validities is not None else ALL_VALIDITY_CONDITIONS
    number = FIGURE_BY_MODEL[model]
    out = io.StringIO()
    out.write(
        f"=== Fig. {number}: {model} model, n = {n} "
        f"(reproduction of the paper's Fig. {number}) ===\n"
    )
    for validity in conditions:
        region = region_map(model, validity, n)
        out.write("\n")
        out.write(render_panel(region, max_width=max_width))
        out.write("\n")
        counts = {
            status.value: region.count(status) for status in Solvability
        }
        out.write(
            f"counts: {counts}; decided by: {', '.join(region.citations_used())}\n"
        )
    return out.getvalue()


def panel_csv(region: RegionMap) -> str:
    """CSV of one panel's frontier series (per-k crossover thresholds)."""
    rows = ["k,max_possible_t,min_impossible_t,open_count"]
    for k, series in sorted(frontier(region).items()):
        rows.append(
            "{},{},{},{}".format(
                k,
                series["max_possible_t"] if series["max_possible_t"] is not None else "",
                series["min_impossible_t"] if series["min_impossible_t"] is not None else "",
                series["open_count"],
            )
        )
    return "\n".join(rows) + "\n"
