"""Message / operation complexity measurement.

The paper analyses solvability, not cost; a usable library should still
characterize what each protocol costs on the wire (point-to-point sends)
or in the memory (register operations) as ``n`` grows.  This module runs
protocols across a range of ``n`` under a fixed fair schedule and fits
the observed counts against the expected asymptotic orders:

=====================  =======================  =====================
Protocol               measured quantity        expected order
=====================  =======================  =====================
Chaudhuri / A / B      messages                 Theta(n^2)
C(l)                   messages                 Theta(n^3)  (echoes)
D                      messages                 Theta(t n^2)
E                      register ops             Theta(n) per process
F                      register ops             Theta(n) - Theta(n^2)
SIMULATION             register ops             >= native message count
=====================  =======================  =====================
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.lemmas import z_function
from repro.core.validity import by_code
from repro.harness.runner import run_mp, run_sm
from repro.net.schedulers import FifoScheduler
from repro.shm.schedulers import RoundRobinScheduler

__all__ = [
    "ComplexityPoint",
    "ComplexitySeries",
    "growth_exponent",
    "measure_mp_protocol",
    "measure_sm_protocol",
]


@dataclasses.dataclass(frozen=True)
class ComplexityPoint:
    """Measured cost of one run."""

    n: int
    t: int
    cost: int  # sends (MP) or register operations (SM)
    ticks: int


@dataclasses.dataclass(frozen=True)
class ComplexitySeries:
    """Cost measurements across a range of ``n``."""

    label: str
    points: Tuple[ComplexityPoint, ...]

    def costs(self) -> List[int]:
        return [p.cost for p in self.points]

    def table(self) -> str:
        lines = [f"{self.label}: cost by n"]
        for p in self.points:
            lines.append(f"  n={p.n:3d} t={p.t:2d}: cost={p.cost:7d} ticks={p.ticks:7d}")
        lines.append(f"  fitted growth exponent ~ {growth_exponent(self):.2f}")
        return "\n".join(lines)


def growth_exponent(series: ComplexitySeries) -> float:
    """Least-squares slope of log(cost) against log(n).

    An empirical estimate of ``d`` for ``cost = Theta(n^d)``; exact
    enough on the small range measured to distinguish n^2 from n^3.
    """
    import math

    xs = [math.log(p.n) for p in series.points]
    ys = [math.log(max(p.cost, 1)) for p in series.points]
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx if sxx else 0.0


def measure_mp_protocol(
    label: str,
    factory: Callable[[int, int], object],
    k_of: Callable[[int, int], int],
    t_of: Callable[[int], int],
    ns: Sequence[int],
    validity_code: str = "WV2",
) -> ComplexitySeries:
    """Measure point-to-point sends across ``n`` for an MP protocol.

    Args:
        factory: ``factory(n, t)`` builds one process instance.
        k_of: ``k_of(n, t)`` picks a k inside the protocol's region.
        t_of: failure budget per ``n``.
    """
    points = []
    for n in ns:
        t = t_of(n)
        k = k_of(n, t)
        report = run_mp(
            [factory(n, t) for _ in range(n)],
            [f"v{i}" for i in range(n)],
            k, t, by_code(validity_code),
            scheduler=FifoScheduler(),
        )
        assert report.verdicts["termination"], (label, n)
        points.append(
            ComplexityPoint(
                n=n, t=t,
                cost=report.result.message_count,
                ticks=report.result.ticks,
            )
        )
    return ComplexitySeries(label=label, points=tuple(points))


def measure_sm_protocol(
    label: str,
    program_of: Callable[[int, int], object],
    k_of: Callable[[int, int], int],
    t_of: Callable[[int], int],
    ns: Sequence[int],
    validity_code: str = "WV2",
) -> ComplexitySeries:
    """Measure register operations across ``n`` for an SM protocol."""
    points = []
    for n in ns:
        t = t_of(n)
        k = k_of(n, t)
        report = run_sm(
            [program_of(n, t)] * n,
            [f"v{i}" for i in range(n)],
            k, t, by_code(validity_code),
            scheduler=RoundRobinScheduler(),
        )
        assert report.verdicts["termination"], (label, n)
        ops = len(report.result.trace.of_kind("read")) + len(
            report.result.trace.of_kind("write")
        )
        points.append(
            ComplexityPoint(n=n, t=t, cost=ops, ticks=report.result.ticks)
        )
    return ComplexitySeries(label=label, points=tuple(points))


def standard_suite(ns: Sequence[int] = (6, 9, 12, 16, 20)) -> Dict[str, ComplexitySeries]:
    """Measure every protocol with paper-consistent parameter choices."""
    from repro.protocols.chaudhuri import ChaudhuriKSet
    from repro.protocols.protocol_a import ProtocolA
    from repro.protocols.protocol_b import ProtocolB
    from repro.protocols.protocol_c import ProtocolC, best_ell
    from repro.protocols.protocol_d import ProtocolD
    from repro.protocols.protocol_e import protocol_e
    from repro.protocols.protocol_f import protocol_f

    t_small = lambda n: max(1, n // 4)

    def make_c(n: int, t: int):
        ell = best_ell(n, max(2, n // 2), t)
        return ProtocolC(ell if ell is not None else 1)

    series = {
        "chaudhuri": measure_mp_protocol(
            "Chaudhuri flood-min", lambda n, t: ChaudhuriKSet(),
            lambda n, t: t + 1, t_small, ns, "RV1",
        ),
        "protocol-a": measure_mp_protocol(
            "PROTOCOL A", lambda n, t: ProtocolA(),
            lambda n, t: 2, t_small, ns, "RV2",
        ),
        "protocol-b": measure_mp_protocol(
            "PROTOCOL B", lambda n, t: ProtocolB(),
            lambda n, t: max(2, n // 2), t_small, ns, "SV2",
        ),
        "protocol-c": measure_mp_protocol(
            "PROTOCOL C(l)", make_c,
            lambda n, t: max(2, n // 2), t_small, ns, "SV2",
        ),
        "protocol-d": measure_mp_protocol(
            "PROTOCOL D", lambda n, t: ProtocolD(),
            lambda n, t: z_function(n, t), t_small, ns, "WV1",
        ),
        "protocol-e": measure_sm_protocol(
            "PROTOCOL E", lambda n, t: protocol_e,
            lambda n, t: 2, lambda n: n, ns, "RV2",
        ),
        "protocol-f": measure_sm_protocol(
            "PROTOCOL F", lambda n, t: protocol_f,
            lambda n, t: t + 2, t_small, ns, "SV2",
        ),
    }
    return series
