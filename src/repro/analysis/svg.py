"""SVG rendering of the region figures.

The paper fills solvable regions with a honeycomb pattern and impossible
regions with a brick pattern; this module reproduces that style as
standalone SVG files -- one panel per (model, validity) or a full
six-panel figure -- without any plotting dependency.

The output is deliberately plain SVG 1.1: ``<pattern>`` defs for the two
hatch styles, one ``<rect>`` per grid cell, and text axes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.regions import RegionMap, region_map
from repro.core.solvability import Solvability
from repro.core.validity import ALL_VALIDITY_CONDITIONS
from repro.models import Model

__all__ = ["figure_svg", "panel_svg"]

_CELL = 9          # px per grid cell
_MARGIN_L = 46
_MARGIN_B = 34
_MARGIN_T = 28
_MARGIN_R = 12

_DEFS = """\
<defs>
  <pattern id="brick" width="12" height="8" patternUnits="userSpaceOnUse">
    <rect width="12" height="8" fill="#f6d7cf"/>
    <path d="M0 0H12M0 4H12M0 8H12M3 0V4M9 4V8" stroke="#b9573f"
          stroke-width="0.8" fill="none"/>
  </pattern>
  <pattern id="honeycomb" width="12" height="10" patternUnits="userSpaceOnUse">
    <rect width="12" height="10" fill="#dff0dc"/>
    <path d="M3 0L6 2L6 6L3 8L0 6L0 2Z M9 5L12 7L12 10L9 10"
          stroke="#4d8a4f" stroke-width="0.7" fill="none"/>
  </pattern>
</defs>"""

_FILL = {
    Solvability.POSSIBLE: "url(#honeycomb)",
    Solvability.IMPOSSIBLE: "url(#brick)",
    Solvability.OPEN: "#ffffff",
}


def _panel_body(region: RegionMap, x0: int, y0: int) -> List[str]:
    """SVG elements of one panel with its top-left corner at (x0, y0)."""
    ks = list(region.k_values)
    ts = list(region.t_values)
    plot_w = len(ks) * _CELL
    plot_h = len(ts) * _CELL
    left = x0 + _MARGIN_L
    top = y0 + _MARGIN_T

    parts: List[str] = []
    title = (
        f"{region.model} / {region.validity.code} "
        f"({region.validity.name}), n = {region.n}"
    )
    parts.append(
        f'<text x="{left}" y="{y0 + 16}" font-size="12" '
        f'font-family="sans-serif">{title}</text>'
    )
    for column, k in enumerate(ks):
        for row, t in enumerate(ts):
            status = region.status(k, t)
            x = left + column * _CELL
            y = top + plot_h - (row + 1) * _CELL  # t grows upward
            parts.append(
                f'<rect x="{x}" y="{y}" width="{_CELL}" height="{_CELL}" '
                f'fill="{_FILL[status]}" stroke="none"/>'
            )
    # frame
    parts.append(
        f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#333" stroke-width="1"/>'
    )
    # axis labels (a few ticks each)
    for k in {ks[0], ks[len(ks) // 2], ks[-1]}:
        x = left + (ks.index(k) + 0.5) * _CELL
        parts.append(
            f'<text x="{x:.0f}" y="{top + plot_h + 14}" font-size="9" '
            f'text-anchor="middle" font-family="sans-serif">{k}</text>'
        )
    for t in {ts[0], ts[len(ts) // 2], ts[-1]}:
        y = top + plot_h - (ts.index(t) + 0.5) * _CELL
        parts.append(
            f'<text x="{left - 6}" y="{y:.0f}" font-size="9" '
            f'text-anchor="end" dominant-baseline="middle" '
            f'font-family="sans-serif">{t}</text>'
        )
    parts.append(
        f'<text x="{left + plot_w / 2:.0f}" y="{top + plot_h + 28}" '
        f'font-size="10" text-anchor="middle" '
        f'font-family="sans-serif">k</text>'
    )
    parts.append(
        f'<text x="{x0 + 12}" y="{top + plot_h / 2:.0f}" font-size="10" '
        f'text-anchor="middle" font-family="sans-serif" '
        f'transform="rotate(-90 {x0 + 12} {top + plot_h / 2:.0f})">t</text>'
    )
    return parts


def _panel_size(region: RegionMap) -> tuple:
    width = _MARGIN_L + len(region.k_values) * _CELL + _MARGIN_R
    height = _MARGIN_T + len(region.t_values) * _CELL + _MARGIN_B
    return width, height


def panel_svg(region: RegionMap) -> str:
    """One panel as a standalone SVG document."""
    width, height = _panel_size(region)
    body = "\n".join(_panel_body(region, 0, 0))
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        f"{_DEFS}\n{body}\n</svg>\n"
    )


def figure_svg(
    model: Model,
    n: int = 64,
    columns: int = 2,
    validities: Optional[list] = None,
) -> str:
    """A full six-panel figure (like the paper's Figs. 2/4/5/6) as SVG."""
    conditions = list(validities) if validities else list(ALL_VALIDITY_CONDITIONS)
    regions = [region_map(model, validity, n) for validity in conditions]
    panel_w, panel_h = _panel_size(regions[0])
    rows = (len(regions) + columns - 1) // columns
    width = columns * panel_w
    height = rows * panel_h

    parts = []
    for index, region in enumerate(regions):
        x0 = (index % columns) * panel_w
        y0 = (index // columns) * panel_h
        parts.extend(_panel_body(region, x0, y0))

    body = "\n".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        f"{_DEFS}\n{body}\n</svg>\n"
    )
