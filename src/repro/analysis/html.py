"""Self-contained HTML report: the whole reproduction on one page.

``build_html_report`` assembles the paper-vs-measured story -- the
Fig. 1 lattice, all four region figures as embedded SVG, the Section 2.1
closed-form summary, empirical validation results, and the executed
impossibility constructions -- into a single HTML file with no external
resources.  ``python -m repro.analysis.html out.html`` writes it.
"""

from __future__ import annotations

import html
import sys
from typing import Optional

from repro.analysis.figures import FIGURE_BY_MODEL
from repro.analysis.lattice import render_lattice, verify_lattice
from repro.analysis.summary import render_summary
from repro.analysis.svg import figure_svg
from repro.models import ALL_MODELS
from repro.paper import CITATION

__all__ = ["build_html_report"]

_STYLE = """
body { font-family: Georgia, serif; max-width: 72rem; margin: 2rem auto;
       padding: 0 1rem; color: #222; }
h1, h2 { font-family: Helvetica, Arial, sans-serif; }
pre { background: #f7f7f4; border: 1px solid #ddd; padding: 0.8rem;
      overflow-x: auto; font-size: 0.8rem; }
table { border-collapse: collapse; font-size: 0.9rem; }
td, th { border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: left; }
.ok { color: #2e7d32; font-weight: bold; }
.bad { color: #b71c1c; font-weight: bold; }
figure { margin: 1rem 0; }
figcaption { font-size: 0.85rem; color: #555; }
"""


def _section(title: str, body: str) -> str:
    return f"<h2>{html.escape(title)}</h2>\n{body}\n"


def _pre(text: str) -> str:
    return f"<pre>{html.escape(text)}</pre>"


def build_html_report(
    n_analytic: int = 64,
    campaign_runs: int = 8,
    seed: int = 0,
) -> str:
    """Build the report; returns the HTML document as a string."""
    # Imported lazily: harness.campaign itself imports analysis modules,
    # and this module is re-exported from the analysis package __init__.
    from repro.adversary.constructions import all_constructions
    from repro.harness.campaign import Campaign, run_campaign

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>k-set consensus reproduction report</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>On k-Set Consensus Problems in Asynchronous Systems "
        "&mdash; reproduction report</h1>",
        f"<p>{html.escape(CITATION)}</p>",
    ]

    # Fig. 1 -- the lattice, verified.
    check = verify_lattice(samples=2000, seed=seed)
    status = (
        "<span class='ok'>verified</span>"
        if check.ok
        else "<span class='bad'>FAILED</span>"
    )
    parts.append(_section(
        "Fig. 1 — validity lattice",
        _pre(render_lattice())
        + f"<p>Empirical check over {check.samples} random outcomes: "
        f"{status}.</p>",
    ))

    # Figs. 2/4/5/6 as embedded SVG.
    for model in ALL_MODELS:
        number = FIGURE_BY_MODEL[model]
        svg = figure_svg(model, n=n_analytic)
        parts.append(_section(
            f"Fig. {number} — {model} (n = {n_analytic})",
            f"<figure>{svg}<figcaption>honeycomb = solvable, "
            "brick = impossible, white = open</figcaption></figure>",
        ))

    # Closed-form summary.
    parts.append(_section(
        "Summary of results (Section 2.1)", _pre(render_summary())
    ))

    # Possible-side empirical validation.
    campaign = run_campaign(Campaign(
        name="html-report",
        n_values=(7,),
        points_per_spec=1,
        runs_per_point=campaign_runs,
        seed=seed,
    ))
    rows = ["<table><tr><th>point</th><th>runs</th><th>violations</th>"
            "<th>max distinct</th></tr>"]
    for record in campaign.records:
        cls = "ok" if record.violations == 0 else "bad"
        rows.append(
            f"<tr><td>{html.escape(record.key)}</td><td>{record.runs}</td>"
            f"<td class='{cls}'>{record.violations}</td>"
            f"<td>{record.max_distinct}</td></tr>"
        )
    rows.append("</table>")
    verdict = (
        "<p class='ok'>all sweeps violation-free</p>"
        if campaign.clean
        else "<p class='bad'>violations found!</p>"
    )
    parts.append(_section(
        "Possible side — randomized sweeps inside claimed regions",
        "".join(rows) + verdict,
    ))

    # Impossible side: the constructions.
    rows = ["<table><tr><th>lemma</th><th>construction</th>"
            "<th>outcome</th></tr>"]
    for result in all_constructions():
        cls = "ok" if result.demonstrates_violation else "bad"
        outcome = (
            "violated " + ", ".join(result.violated)
            if result.demonstrates_violation
            else "NO VIOLATION (unexpected)"
        )
        rows.append(
            f"<tr><td>{html.escape(result.lemma_id)}</td>"
            f"<td>{html.escape(result.description)}</td>"
            f"<td class='{cls}'>{html.escape(outcome)}</td></tr>"
        )
    rows.append("</table>")
    parts.append(_section(
        "Impossible side — the proofs' runs, executed", "".join(rows)
    ))

    parts.append("</body></html>")
    return "\n".join(parts)


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - CLI
    args = argv if argv is not None else sys.argv[1:]
    out = args[0] if args else "report.html"
    content = build_html_report()
    with open(out, "w") as handle:
        handle.write(content)
    print(f"wrote {out} ({len(content)} bytes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
