"""Figure rendering, lattice verification, and experiment reports."""

from repro.analysis.figures import (
    FIGURE_BY_MODEL,
    panel_csv,
    render_figure,
    render_panel,
)
from repro.analysis.complexity import (
    ComplexityPoint,
    ComplexitySeries,
    growth_exponent,
    measure_mp_protocol,
    measure_sm_protocol,
)
from repro.analysis.forensics import Violation, first_violation
from repro.analysis.html import build_html_report
from repro.analysis.lattice import render_lattice, verify_lattice
from repro.analysis.spacetime import render_spacetime
from repro.analysis.summary import SUMMARY, render_summary, variant
from repro.analysis.svg import figure_svg, panel_svg
from repro.analysis.report import (
    FigureValidation,
    constructions_for_model,
    generate_experiments_md,
    validate_figure,
)

__all__ = [
    "ComplexityPoint",
    "ComplexitySeries",
    "FIGURE_BY_MODEL",
    "FigureValidation",
    "constructions_for_model",
    "generate_experiments_md",
    "panel_csv",
    "render_figure",
    "SUMMARY",
    "Violation",
    "build_html_report",
    "first_violation",
    "figure_svg",
    "growth_exponent",
    "measure_mp_protocol",
    "measure_sm_protocol",
    "panel_svg",
    "render_lattice",
    "render_panel",
    "render_spacetime",
    "render_summary",
    "variant",
    "validate_figure",
    "verify_lattice",
]
