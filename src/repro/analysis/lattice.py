"""Fig. 1: the "weaker than" lattice of validity conditions.

Renders the lattice and verifies it empirically: the declared
implications must hold on every outcome, and every *non*-implication
must have a separating witness (an outcome satisfying one condition but
not the other).  The test suite and ``benchmarks/bench_fig1_lattice.py``
drive both checks.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Tuple

from repro.core.problem import Outcome
from repro.core.validity import (
    ALL_VALIDITY_CONDITIONS,
    ValidityCondition,
)

__all__ = ["LatticeCheck", "random_outcome", "render_lattice", "verify_lattice"]

_DIAGRAM = r"""
        SV1  (strong V1)
       /   \
    SV2     RV1
       \   /   \
        RV2     WV1
           \   /
            WV2  (weak V2)

(An edge downward from D to C means SC(C) is weaker than SC(D):
 every outcome satisfying D satisfies C.)
"""


def render_lattice() -> str:
    """The Fig. 1 diagram plus each condition's statement."""
    lines = [_DIAGRAM.strip(), ""]
    for condition in ALL_VALIDITY_CONDITIONS:
        lines.append(f"{condition.code} ({condition.name}): {condition.statement}")
    return "\n".join(lines)


def random_outcome(rng: random.Random, n_max: int = 8) -> Outcome:
    """A random execution outcome for property-testing the lattice.

    Decisions are drawn from the inputs plus a fabricated value, and an
    arbitrary subset of processes may be faulty or undecided -- wide
    enough to separate every pair of distinct conditions.
    """
    n = rng.randint(2, n_max)
    value_pool = [f"v{i}" for i in range(rng.randint(1, n))] + ["bogus"]
    inputs = {pid: rng.choice(value_pool[:-1]) for pid in range(n)}
    faulty = frozenset(
        pid for pid in range(n) if rng.random() < 0.3
    )
    decisions = {}
    for pid in range(n):
        if rng.random() < 0.85:
            decisions[pid] = rng.choice(value_pool)
    return Outcome(n=n, inputs=inputs, decisions=decisions, faulty=faulty)


@dataclasses.dataclass
class LatticeCheck:
    """Result of the empirical lattice verification."""

    samples: int
    implication_violations: List[Tuple[str, str, Outcome]]
    missing_witnesses: List[Tuple[str, str]]

    @property
    def ok(self) -> bool:
        return not self.implication_violations and not self.missing_witnesses


def verify_lattice(samples: int = 4000, seed: int = 0) -> LatticeCheck:
    """Empirically validate Fig. 1 over random outcomes.

    * For every pair with ``C.implies(D)``: no sampled outcome satisfies
      ``C`` but violates ``D``.
    * For every ordered pair *without* an implication: at least one
      sampled outcome separates them (C holds, D fails).
    """
    rng = random.Random(seed)
    conditions = ALL_VALIDITY_CONDITIONS
    violations: List[Tuple[str, str, Outcome]] = []
    witness_found: Dict[Tuple[str, str], bool] = {
        (c.code, d.code): False
        for c in conditions
        for d in conditions
        if c is not d and not c.implies(d)
    }
    for _ in range(samples):
        outcome = random_outcome(rng)
        holds = {c.code: bool(c.check(outcome)) for c in conditions}
        for c in conditions:
            for d in conditions:
                if c is d:
                    continue
                if c.implies(d):
                    if holds[c.code] and not holds[d.code]:
                        violations.append((c.code, d.code, outcome))
                elif holds[c.code] and not holds[d.code]:
                    witness_found[(c.code, d.code)] = True
    missing = [pair for pair, found in witness_found.items() if not found]
    return LatticeCheck(
        samples=samples,
        implication_violations=violations,
        missing_witnesses=missing,
    )
