"""Run forensics: when exactly did a run go wrong?

The condition checkers judge a finished outcome; for debugging an
adversarial run it is more useful to know the *first tick* at which a
condition became unsatisfiable.  :func:`first_violation` replays the
decision events of a trace in order and reports the earliest point
where agreement was exceeded or a validity clause broke, together with
the decision that tipped it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.problem import Outcome
from repro.core.validity import ValidityCondition
from repro.runtime.traces import Trace

__all__ = ["Violation", "first_violation"]


@dataclasses.dataclass(frozen=True)
class Violation:
    """The earliest condition break in a run."""

    condition: str  # "agreement" | "validity"
    tick: int
    pid: int
    value: object
    detail: str

    def __str__(self) -> str:
        return (
            f"{self.condition} first violated at tick {self.tick} by "
            f"p{self.pid} deciding {self.value!r}: {self.detail}"
        )


def first_violation(
    trace: Trace,
    outcome: Outcome,
    k: int,
    validity: ValidityCondition,
) -> Optional[Violation]:
    """Earliest decision event that broke agreement or validity.

    Only decisions of *correct* processes are considered (faulty
    processes' decisions are unconstrained).  Termination has no "first
    violation" instant and is judged on the final outcome as usual.
    Returns ``None`` when no prefix of the run violates either condition.
    """
    partial_decisions: Dict[int, object] = {}
    for record in trace.of_kind("decide"):
        pid = record.pid
        if pid in outcome.faulty:
            continue
        partial_decisions[pid] = record.payload
        distinct = set(partial_decisions.values())
        if len(distinct) > k:
            return Violation(
                condition="agreement",
                tick=record.tick,
                pid=pid,
                value=record.payload,
                detail=f"{len(distinct)} distinct correct decisions > k={k}",
            )
        partial_outcome = Outcome(
            n=outcome.n,
            inputs=dict(outcome.inputs),
            decisions=dict(partial_decisions),
            faulty=outcome.faulty,
        )
        verdict = validity.check(partial_outcome)
        if not verdict:
            return Violation(
                condition="validity",
                tick=record.tick,
                pid=pid,
                value=record.payload,
                detail=verdict.detail,
            )
    return None
