"""Testing utilities for downstream users of the library.

Users embedding these protocols in their own systems need the same
validation machinery this repository uses internally: random outcome
generators for property tests, input-shape builders, and one-call
assertion helpers.  Everything here is re-exported from the internal
modules with stable names.

Example (pytest + hypothesis)::

    from hypothesis import given, strategies as st
    from repro.testing import assert_protocol_clean

    @given(st.integers(0, 10**6))
    def test_my_deployment_point(seed):
        assert_protocol_clean(
            "protocol-c@mp-byz", n=9, k=4, t=2, runs=3, seed=seed
        )
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.analysis.lattice import random_outcome
from repro.core.problem import Outcome, SCProblem
from repro.core.validity import ValidityCondition, by_code
from repro.harness.inputs import INPUT_PATTERNS, make_inputs
from repro.harness.sweep import SweepConfig, sweep_spec
from repro.protocols.base import get_spec

__all__ = [
    "INPUT_PATTERNS",
    "assert_outcome_satisfies",
    "assert_protocol_clean",
    "make_inputs",
    "random_outcome",
]


def assert_protocol_clean(
    spec_name: str,
    n: int,
    k: int,
    t: int,
    runs: int = 10,
    seed: int = 0,
    input_patterns: Optional[Sequence[str]] = None,
) -> None:
    """Sweep a registered protocol and raise ``AssertionError`` on any
    violation, with the violating runs in the message.

    The point must lie inside the protocol's claimed region (asserted
    first -- sweeping outside it proves nothing either way).
    """
    spec = get_spec(spec_name)
    assert spec.solvable(n, k, t), (
        f"({n}, {k}, {t}) is outside {spec_name}'s solvable region; "
        "a clean sweep there would be meaningless"
    )
    config = SweepConfig(
        runs=runs,
        seed=seed,
        input_patterns=tuple(input_patterns or INPUT_PATTERNS),
    )
    stats = sweep_spec(spec, n, k, t, config)
    assert stats.clean, (
        f"{spec_name} violated SC(k={k}, t={t}, {spec.validity}) at n={n}: "
        f"{[ (v.run_index, v.conditions, v.detail) for v in stats.violations[:3] ]}"
    )


def assert_outcome_satisfies(
    outcome: Outcome,
    k: int,
    t: int,
    validity: str,
) -> None:
    """Check one externally produced outcome against ``SC(k, t, C)``."""
    problem = SCProblem(n=outcome.n, k=k, t=t, validity=by_code(validity))
    verdicts = problem.check(outcome)
    failed = {name: str(v) for name, v in verdicts.items() if not v}
    assert not failed, failed


def random_outcomes(count: int, seed: int = 0, n_max: int = 8):
    """Yield ``count`` random outcomes (see
    :func:`repro.analysis.lattice.random_outcome`)."""
    rng = random.Random(seed)
    for _ in range(count):
        yield random_outcome(rng, n_max=n_max)


__all__.append("random_outcomes")
