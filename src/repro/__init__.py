"""repro -- reproduction of "On k-Set Consensus Problems in Asynchronous
Systems" (De Prisco, Malkhi, Reiter; PODC 1999 / IEEE TPDS 2001).

The library provides, from scratch:

* the problem family ``SC(k, t, C)`` with the paper's six validity
  conditions and their Fig. 1 lattice (:mod:`repro.core`);
* the complete solvability characterization -- every possibility and
  impossibility lemma as an executable region, with the paper's
  carrying rules (:func:`repro.core.solvability.classify`);
* all seven protocols (Chaudhuri's flood-min, PROTOCOLs A, B, C(l), D,
  E, F), the l-echo broadcast, and the MP->SM SIMULATION transform
  (:mod:`repro.protocols`);
* deterministic discrete-event substrates for asynchronous message
  passing and shared memory with crash/Byzantine fault injection
  (:mod:`repro.runtime`, :mod:`repro.net`, :mod:`repro.shm`,
  :mod:`repro.failures`), plus an asyncio backend;
* executable versions of the impossibility proofs' adversarial runs
  (:mod:`repro.adversary`) and figure/report generators
  (:mod:`repro.analysis`, :mod:`repro.harness`);
* a conformance oracle layer with counterexample shrinking, replayable
  witness files, and differential kernel testing (:mod:`repro.verify`).

Quickstart::

    from repro import classify, Model, RV1, run_spec, get_spec

    print(classify(Model.MP_CR, RV1, n=64, k=5, t=4))   # possible [Lemma 3.1]
    spec = get_spec("chaudhuri@mp-cr")
    report = run_spec(spec, n=7, k=3, t=2, inputs=list("abcdefg"))
    assert report.ok
"""

from repro.core.problem import Outcome, SCProblem, Verdict
from repro.core.bounds import Thresholds, threshold
from repro.core.regions import RegionMap, frontier, region_map, separation_points
from repro.core.solvability import (
    Classification,
    Solvability,
    classify,
    z_function,
)
from repro.core.validity import (
    ALL_VALIDITY_CONDITIONS,
    RV1,
    RV2,
    SV1,
    SV2,
    WV1,
    WV2,
    ValidityCondition,
    by_code,
)
from repro.core.values import DEFAULT, EMPTY
from repro.harness.parallel import derive_seed, parallel_map
from repro.harness.runner import ExperimentReport, run_mp, run_sm, run_spec
from repro.harness.sweep import SweepConfig, SweepStats, sweep_spec
from repro.models import ALL_MODELS, Model
from repro.runtime.traces import TraceMode
from repro.protocols import all_specs, get_spec, recommend, solve
from repro.verify.oracles import Violation, check_execution

__version__ = "1.0.0"

__all__ = [
    "ALL_MODELS",
    "ALL_VALIDITY_CONDITIONS",
    "Classification",
    "DEFAULT",
    "EMPTY",
    "ExperimentReport",
    "Model",
    "Outcome",
    "RV1",
    "RV2",
    "RegionMap",
    "SCProblem",
    "SV1",
    "SV2",
    "Solvability",
    "SweepConfig",
    "SweepStats",
    "TraceMode",
    "ValidityCondition",
    "Verdict",
    "Violation",
    "check_execution",
    "WV1",
    "WV2",
    "all_specs",
    "by_code",
    "classify",
    "derive_seed",
    "parallel_map",
    "frontier",
    "separation_points",
    "threshold",
    "Thresholds",
    "get_spec",
    "recommend",
    "region_map",
    "run_mp",
    "run_sm",
    "run_spec",
    "solve",
    "sweep_spec",
    "z_function",
    "__version__",
]
