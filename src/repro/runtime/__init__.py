"""Simulation runtimes: deterministic MP kernel, asyncio backend, traces."""

from repro.runtime.events import Delivery, Event, Start
from repro.runtime.kernel import (
    ExecutionResult,
    ExecutionStats,
    KernelLimitError,
    MPKernel,
    SchedulerStall,
)
from repro.runtime.process import Context, Process, ProtocolError
from repro.runtime.replay import (
    Recording,
    RecordingProcessScheduler,
    RecordingScheduler,
    ReplayProcessScheduler,
    ReplayScheduler,
)
from repro.runtime.traces import Trace, TraceMode, TraceRecord

__all__ = [
    "Context",
    "Delivery",
    "Event",
    "ExecutionResult",
    "ExecutionStats",
    "KernelLimitError",
    "MPKernel",
    "Process",
    "ProtocolError",
    "Recording",
    "RecordingProcessScheduler",
    "RecordingScheduler",
    "ReplayProcessScheduler",
    "ReplayScheduler",
    "SchedulerStall",
    "Start",
    "Trace",
    "TraceMode",
    "TraceRecord",
]
