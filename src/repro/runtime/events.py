"""Event types of the discrete-event simulation kernels.

Asynchrony in the paper's model means a process step or a message
delivery may take an arbitrary (but finite) time.  In a discrete-event
reproduction, "arbitrary but finite" is exactly the freedom given to a
*scheduler* (the adversary): the kernel keeps a pool of pending events,
and at each tick the scheduler picks which pending event happens next.
Any asynchronous run corresponds to some scheduler choice sequence.

Events are frozen, ``__slots__``-backed dataclasses: the exhaustive
explorer and the Monte-Carlo sweeps allocate one :class:`Delivery` per
point-to-point send, so dropping the per-instance ``__dict__`` is a
measurable allocation win on the hot path (see
``benchmarks/bench_exhaustive_explorer.py``, which reports the
allocation rate).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any

__all__ = ["Delivery", "Event", "Start", "fresh_event_id"]

_event_counter = itertools.count()


def fresh_event_id() -> int:
    """A process-wide monotonically increasing event identifier.

    Only used for human-readable tracing; kernels order events by their
    own sequence numbers, so global counter state never affects runs.
    """
    return next(_event_counter)


@dataclasses.dataclass(frozen=True, slots=True)
class Event:
    """Base class for schedulable events."""

    #: Kernel-local sequence number; total order of event creation.
    seq: int


@dataclasses.dataclass(frozen=True, slots=True)
class Start(Event):
    """Process ``pid`` executes its initial step (``on_start``)."""

    pid: int

    def __str__(self) -> str:
        return f"start(p{self.pid})"


@dataclasses.dataclass(frozen=True, slots=True)
class Delivery(Event):
    """Message ``payload`` from ``sender`` is delivered to ``receiver``."""

    sender: int
    receiver: int
    payload: Any

    def __str__(self) -> str:
        return f"deliver(p{self.sender} -> p{self.receiver}: {self.payload!r})"
