"""asyncio-backed runtime: the message-passing model over real tasks.

The deterministic kernel (:mod:`repro.runtime.kernel`) is the primary
substrate -- it makes runs reproducible and lets adversaries control
asynchrony exactly.  This module provides the complementary *concurrent*
backend: each process is an ``asyncio`` task, each channel an
``asyncio.Queue``, and delays come from a seeded random jitter, i.e.
asynchrony arises from genuine interleaving rather than an explicit
scheduler.  The same :class:`~repro.runtime.process.Process` objects run
unchanged on both backends; tests cross-check that decisions satisfy the
same conditions.

Crash failures are supported via the same
:class:`~repro.failures.adversary.CrashAdversary` step/send budgets;
Byzantine behaviour, as in the deterministic kernel, is a misbehaving
process object at a faulty index.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.core.problem import Outcome
from repro.core.values import Value
from repro.failures.adversary import CrashAdversary, NoCrashes
from repro.runtime.kernel import ExecutionResult
from repro.runtime.process import Context, Process
from repro.runtime.traces import Trace

__all__ = ["AsyncMPRuntime", "run_async"]


class _AsyncContext(Context):
    def __init__(self, runtime: "AsyncMPRuntime", pid: int, input_value: Value) -> None:
        super().__init__(pid, runtime.n, runtime.t, input_value)
        self._runtime = runtime

    def _emit_send(self, dst: int, payload: Any) -> None:
        self._runtime._send(self.pid, dst, payload)

    def _emit_decide(self, value: Value) -> None:
        self._runtime._note_decide(self.pid, value)


class AsyncMPRuntime:
    """Run a message-passing protocol over asyncio tasks and queues.

    Args:
        processes: one process object per id; misbehaving objects at
            indices listed in ``byzantine`` model Byzantine failures.
        inputs: nominal input per process.
        t: failure budget (contexts expose it to the protocol).
        seed: drives delivery jitter -- each message sleeps a small
            random time before the receiver handles it.
        max_jitter: upper bound, in seconds, of the per-message delay.
        settle_rounds: after all correct processes decided, how many
            zero-jitter drain iterations to run before stopping.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        inputs: Sequence[Value],
        t: int,
        crash_adversary: Optional[CrashAdversary] = None,
        byzantine: Sequence[int] = (),
        seed: int = 0,
        max_jitter: float = 0.002,
        timeout: float = 30.0,
    ) -> None:
        if len(processes) != len(inputs):
            raise ValueError("processes and inputs must have equal length")
        self.n = len(processes)
        self.t = t
        self._processes = list(processes)
        self._inputs = list(inputs)
        self._crash_adversary = crash_adversary or NoCrashes()
        self._byzantine: Set[int] = set(byzantine)
        self._rng = random.Random(seed)
        self._max_jitter = max_jitter
        self._timeout = timeout

        self.trace = Trace()
        self._tick = 0
        self._queues: List[asyncio.Queue] = []
        self._contexts: List[_AsyncContext] = []
        self._crashed: Set[int] = set()
        self._steps_taken = [0] * self.n
        self._sends_made = [0] * self.n
        self._halted_at_send: Set[int] = set()
        self._all_decided: Optional[asyncio.Event] = None  # created in run()

    # -- internals ----------------------------------------------------------

    def _note_decide(self, pid: int, value: Value) -> None:
        self._tick += 1
        self.trace.record(self._tick, "decide", pid, payload=value)
        if self._all_decided is not None and self._all_correct_decided():
            self._all_decided.set()

    def _all_correct_decided(self) -> bool:
        return all(
            self._contexts[p].decided
            for p in range(self.n)
            if p not in self._crashed and p not in self._byzantine
        )

    def _send(self, sender: int, dst: int, payload: Any) -> None:
        self._tick += 1
        if sender in self._halted_at_send:
            self.trace.record(self._tick, "send-suppressed", sender, dst, payload)
            return
        if sender not in self._byzantine and self._crash_adversary.crashes_at_send(
            sender, self._sends_made[sender]
        ):
            self._halted_at_send.add(sender)
            self.trace.record(self._tick, "send-suppressed", sender, dst, payload)
            return
        self._sends_made[sender] += 1
        self.trace.record(self._tick, "send", sender, dst, payload)
        self._queues[dst].put_nowait((sender, payload))

    async def _process_main(self, pid: int) -> None:
        ctx = self._contexts[pid]
        adversary = self._crash_adversary
        is_byz = pid in self._byzantine

        def crashed_now() -> bool:
            if is_byz:
                return False
            if pid in self._halted_at_send:
                return True
            return adversary.crashes_before_step(pid, self._steps_taken[pid])

        def mark_crashed() -> None:
            self._crashed.add(pid)
            self._tick += 1
            self.trace.record(self._tick, "crash", pid)
            # A crash can be what makes "all correct decided" true.
            if self._all_decided is not None and self._all_correct_decided():
                self._all_decided.set()

        if crashed_now():
            mark_crashed()
            return
        self._processes[pid].on_start(ctx)
        self._steps_taken[pid] += 1
        queue = self._queues[pid]
        while True:
            sender, payload = await queue.get()
            if self._max_jitter > 0:
                await asyncio.sleep(self._rng.random() * self._max_jitter)
            if crashed_now():
                mark_crashed()
                return
            self._tick += 1
            self.trace.record(self._tick, "deliver", pid, sender, payload)
            self._processes[pid].on_message(ctx, sender, payload)
            self._steps_taken[pid] += 1

    async def run_async(self) -> ExecutionResult:
        """Execute until every correct process decided (or timeout)."""
        self._queues = [asyncio.Queue() for _ in range(self.n)]
        self._contexts = [
            _AsyncContext(self, pid, self._inputs[pid]) for pid in range(self.n)
        ]
        self._all_decided = asyncio.Event()
        tasks = [
            asyncio.create_task(self._process_main(pid)) for pid in range(self.n)
        ]
        try:
            await asyncio.wait_for(self._all_decided.wait(), timeout=self._timeout)
        except asyncio.TimeoutError:
            # Non-terminating run: return the partial outcome; undecided
            # correct processes surface as a termination violation.
            pass
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
        return self._result()

    def _result(self) -> ExecutionResult:
        decisions = {
            pid: ctx.decision
            for pid, ctx in enumerate(self._contexts)
            if ctx.decided
        }
        outcome = Outcome(
            n=self.n,
            inputs={pid: v for pid, v in enumerate(self._inputs)},
            decisions=decisions,
            faulty=frozenset(self._crashed | self._byzantine),
        )
        return ExecutionResult(
            outcome=outcome,
            trace=self.trace,
            ticks=self._tick,
            quiescent=True,
        )


def run_async(
    processes: Sequence[Process],
    inputs: Sequence[Value],
    t: int,
    crash_adversary: Optional[CrashAdversary] = None,
    byzantine: Sequence[int] = (),
    seed: int = 0,
    timeout: float = 30.0,
) -> ExecutionResult:
    """Synchronous wrapper: run a protocol on the asyncio backend."""
    runtime = AsyncMPRuntime(
        processes,
        inputs,
        t,
        crash_adversary=crash_adversary,
        byzantine=byzantine,
        seed=seed,
        timeout=timeout,
    )
    return asyncio.run(runtime.run_async())
