"""Recording and replaying executions.

Both kernels are deterministic given the scheduler's choices, so a run
is fully described by its *choice sequence* (event sequence numbers for
the MP kernel, process ids for the SM kernel).  This module wraps any
scheduler to record that sequence, serializes it as JSON, and replays it
exactly -- which turns every counterexample found by sweeps or the
adversarial search into a shareable, re-executable artifact.

    scheduler = RecordingScheduler(RandomScheduler(seed=7))
    report = run_mp(processes, inputs, k, t, validity, scheduler=scheduler)
    blob = scheduler.recording.to_json()
    ...
    replayed = run_mp(fresh_processes, inputs, k, t, validity,
                      scheduler=ReplayScheduler(Recording.from_json(blob)))
    assert replayed.outcome.decisions == report.outcome.decisions
"""

from __future__ import annotations

import dataclasses
import json
from typing import List, Optional, Tuple

__all__ = [
    "Recording",
    "RecordingProcessScheduler",
    "RecordingScheduler",
    "ReplayExhausted",
    "ReplayProcessScheduler",
    "ReplayScheduler",
]


class ReplayExhausted(RuntimeError):
    """The replayed run made more choices than were recorded.

    Usually means the replay was started from different processes,
    inputs, or failure pattern than the original run.
    """


@dataclasses.dataclass(frozen=True)
class Recording:
    """A serialized choice sequence."""

    kind: str  # "mp" (event seqs) | "sm" (process ids)
    choices: Tuple[int, ...]

    def to_json(self) -> str:
        return json.dumps({"kind": self.kind, "choices": list(self.choices)})

    @classmethod
    def from_json(cls, blob: str) -> "Recording":
        data = json.loads(blob)
        if data.get("kind") not in ("mp", "sm"):
            raise ValueError(f"not a recording: {blob[:80]!r}")
        return cls(kind=data["kind"], choices=tuple(data["choices"]))

    def __len__(self) -> int:
        return len(self.choices)


class RecordingScheduler:
    """Wraps an MP scheduler and records every chosen event seq."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self._choices: List[int] = []

    def pick(self, kernel) -> Optional[int]:
        choice = self._inner.pick(kernel)
        if choice is not None:
            self._choices.append(choice)
        return choice

    @property
    def recording(self) -> Recording:
        return Recording(kind="mp", choices=tuple(self._choices))


class ReplayScheduler:
    """Feeds a recorded MP choice sequence back to the kernel."""

    def __init__(self, recording: Recording) -> None:
        if recording.kind != "mp":
            raise ValueError("expected an 'mp' recording")
        self._choices = list(recording.choices)
        self._index = 0

    def pick(self, kernel) -> Optional[int]:
        if self._index >= len(self._choices):
            if kernel.all_correct_decided():
                return None
            raise ReplayExhausted(
                f"recording ended after {self._index} choices but the run "
                "has not finished -- replay started from a different state?"
            )
        choice = self._choices[self._index]
        self._index += 1
        if choice not in kernel.pending:
            raise ReplayExhausted(
                f"recorded choice {choice} is not pending at step "
                f"{self._index - 1} -- replay diverged"
            )
        return choice


class RecordingProcessScheduler:
    """Wraps an SM process scheduler and records every chosen pid."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self._choices: List[int] = []

    def pick(self, kernel) -> Optional[int]:
        choice = self._inner.pick(kernel)
        if choice is not None:
            self._choices.append(choice)
        return choice

    @property
    def recording(self) -> Recording:
        return Recording(kind="sm", choices=tuple(self._choices))


class ReplayProcessScheduler:
    """Feeds a recorded SM choice sequence back to the kernel."""

    def __init__(self, recording: Recording) -> None:
        if recording.kind != "sm":
            raise ValueError("expected an 'sm' recording")
        self._choices = list(recording.choices)
        self._index = 0

    def pick(self, kernel) -> Optional[int]:
        if self._index >= len(self._choices):
            if kernel.all_correct_decided():
                return None
            raise ReplayExhausted(
                f"recording ended after {self._index} choices but the run "
                "has not finished -- replay started from a different state?"
            )
        choice = self._choices[self._index]
        self._index += 1
        if not kernel.is_runnable(choice):
            raise ReplayExhausted(
                f"recorded pid {choice} is not runnable at step "
                f"{self._index - 1} -- replay diverged"
            )
        return choice
