"""Message-passing process abstraction.

Protocols for the message-passing models are written as subclasses of
:class:`Process` with two handlers:

* :meth:`Process.on_start` -- the process's first step, where it
  typically broadcasts its input;
* :meth:`Process.on_message` -- invoked once per delivered message.

Handlers interact with the system only through the :class:`Context`
object the kernel passes in: ``ctx.send``/``ctx.broadcast`` to
communicate and ``ctx.decide`` to decide irrevocably.  This keeps
protocol code independent of the kernel that runs it, which is what lets
the :mod:`repro.protocols.simulation` transform re-run the same protocol
objects over shared memory, and the asyncio runtime re-run them over
real tasks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.values import Value

__all__ = ["Context", "Process", "ProtocolError", "copy_plain"]


def copy_plain(value: Any) -> Any:
    """Copy a plain-data value (dicts/lists/sets/tuples of immutables).

    This is the fork primitive of the snapshot protocol: it recursively
    copies the built-in mutable containers and shares everything else
    (numbers, strings, frozen dataclasses, ``None``...).  It is an order
    of magnitude cheaper than :func:`copy.deepcopy` because it never
    consults ``__deepcopy__``/``__reduce__`` machinery or maintains a
    memo table -- which is safe precisely because protocol state is
    plain data (no aliasing cycles, no open files, no generators; the
    ``SNAP001`` staticcheck rule enforces this for
    :class:`Process` subclasses).

    Composite helper objects that a process legitimately keeps on
    ``self`` (e.g. the ℓ-echo engine) opt into forking by defining
    ``__copy_plain__(self)``, returning an independent copy of their
    mutable state; anything else is shared by reference.
    """
    cls = value.__class__
    if cls is dict:
        return {key: copy_plain(item) for key, item in value.items()}
    if cls is list:
        return [copy_plain(item) for item in value]
    if cls is set:
        return set(value)
    if cls is tuple:
        return tuple(copy_plain(item) for item in value)
    copier = getattr(cls, "__copy_plain__", None)
    if copier is not None:
        return copier(value)
    return value


class ProtocolError(RuntimeError):
    """A protocol implementation broke a kernel rule (e.g. double decide)."""


class Context:
    """The interface a process uses to act on the world.

    Concrete kernels subclass this and implement :meth:`_emit_send`.
    A context belongs to exactly one process for one execution.
    """

    def __init__(self, pid: int, n: int, t: int, input_value: Value) -> None:
        self.pid = pid
        self.n = n
        self.t = t
        self.input = input_value
        self._decision: Optional[Value] = None
        self._decided = False

    # -- communication ----------------------------------------------------

    def send(self, dst: int, payload: Any) -> None:
        """Send ``payload`` to process ``dst`` over the reliable network."""
        if not 0 <= dst < self.n:
            raise ProtocolError(f"send to unknown process {dst}")
        self._emit_send(dst, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every process, including the sender itself.

        The paper's protocols count the sender's own message among those
        it waits for ("one of these n-t messages is the process' own
        message"), so broadcast includes self-delivery.
        """
        for dst in range(self.n):
            self.send(dst, payload)

    # -- deciding ----------------------------------------------------------

    def decide(self, value: Value) -> None:
        """Irrevocably decide ``value``.

        A process decides at most once; deciding again is a protocol bug
        and raises :class:`ProtocolError`.
        """
        if self._decided:
            raise ProtocolError(f"p{self.pid} attempted to decide twice")
        self._decided = True
        self._decision = value
        self._emit_decide(value)

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def decision(self) -> Optional[Value]:
        return self._decision

    # -- kernel hooks ------------------------------------------------------

    def _emit_send(self, dst: int, payload: Any) -> None:
        raise NotImplementedError

    def _emit_decide(self, value: Value) -> None:
        """Kernels may override to trace decisions; default is a no-op."""


class Process:
    """Base class for message-passing protocol processes.

    Subclasses implement the two handlers.  A process must not keep
    references to the context across executions; the kernel passes the
    context into every handler call.
    """

    def on_start(self, ctx: Context) -> None:
        """The process's initial step."""

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        """Handle one delivered message from ``sender``."""

    # -- snapshot protocol -------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Plain-data copy of this process's mutable state.

        Part of the kernel fork protocol used by the exhaustive
        explorer: a snapshot must share no mutable structure with the
        live process, and :meth:`restore_state` applied to it must
        reproduce the process bit-for-bit.  The default implementation
        copies ``__dict__`` with :func:`copy_plain`, which is correct
        for any process holding only plain data (all protocols in this
        library); subclasses with exotic state may override both hooks.
        """
        return {
            key: copy_plain(item) for key, item in self.__dict__.items()
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Reset this process to a state captured by :meth:`snapshot_state`.

        The snapshot may be restored many times (once per explored
        branch), so the installed state is copied again rather than
        aliased.
        """
        self.__dict__.clear()
        self.__dict__.update(
            (key, copy_plain(item)) for key, item in state.items()
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
