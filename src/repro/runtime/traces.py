"""Execution traces.

Kernels append :class:`TraceRecord` entries as the run unfolds.  Traces
serve three purposes:

* building the :class:`~repro.core.problem.Outcome` that the condition
  checkers consume,
* debugging protocol runs (the ``format`` helper renders a readable log),
* asserting fine-grained properties in tests (e.g. "no correct process
  echoed twice for the same sender" in Protocol D).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, List, Optional

__all__ = ["Trace", "TraceRecord"]


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One observable step of an execution.

    Attributes:
        tick: kernel tick at which the record was emitted (0-based).
        kind: one of ``start``, ``send``, ``send-suppressed``, ``deliver``,
            ``drop``, ``decide``, ``crash``, ``read``, ``write``, ``halt``.
        pid: the process the record is about.
        peer: the other process involved, if any (message destination or
            source, register owner for reads).
        payload: message payload, register value, or decision value.
    """

    tick: int
    kind: str
    pid: int
    peer: Optional[int] = None
    payload: Any = None

    def __str__(self) -> str:
        peer = f" peer=p{self.peer}" if self.peer is not None else ""
        payload = f" {self.payload!r}" if self.payload is not None else ""
        return f"[{self.tick:6d}] {self.kind:<16} p{self.pid}{peer}{payload}"


class Trace:
    """An append-only sequence of :class:`TraceRecord` entries."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def append(self, record: TraceRecord) -> None:
        self._records.append(record)

    def record(
        self,
        tick: int,
        kind: str,
        pid: int,
        peer: Optional[int] = None,
        payload: Any = None,
    ) -> None:
        self._records.append(TraceRecord(tick, kind, pid, peer, payload))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in order."""
        return [r for r in self._records if r.kind == kind]

    def by_process(self, pid: int) -> List[TraceRecord]:
        """All records about one process, in order."""
        return [r for r in self._records if r.pid == pid]

    def message_count(self) -> int:
        """Number of point-to-point sends (broadcast counts n sends)."""
        return len(self.of_kind("send"))

    def delivery_count(self) -> int:
        return len(self.of_kind("deliver"))

    def decisions(self) -> List[TraceRecord]:
        return self.of_kind("decide")

    def format(self, limit: Optional[int] = None) -> str:
        """Render the trace (optionally only the first ``limit`` records)."""
        records = self._records if limit is None else self._records[:limit]
        lines = [str(r) for r in records]
        if limit is not None and len(self._records) > limit:
            lines.append(f"... ({len(self._records) - limit} more records)")
        return "\n".join(lines)
