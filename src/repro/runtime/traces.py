"""Execution traces.

Kernels append :class:`TraceRecord` entries as the run unfolds.  Traces
serve three purposes:

* building the :class:`~repro.core.problem.Outcome` that the condition
  checkers consume,
* debugging protocol runs (the ``format`` helper renders a readable log),
* asserting fine-grained properties in tests (e.g. "no correct process
  echoed twice for the same sender" in Protocol D).

Monte-Carlo harnesses run millions of kernel events and only ever read
aggregate counters off the trace, so :class:`Trace` supports three
recording modes (:class:`TraceMode`):

* ``FULL`` (default) -- keep every :class:`TraceRecord` *and* the
  incremental counters; required by replay, forensics, space-time
  diagrams, and any test that inspects individual records;
* ``COUNTERS`` -- maintain only the integer counters (per-kind totals,
  per-process sends/deliveries/register ops, first decision tick); no
  ``TraceRecord`` is ever allocated, which is the sweep fast path;
* ``OFF`` -- record nothing at all (the exhaustive explorer forks
  kernels by deep copy and wants the trace to weigh nothing).

In every mode the counters that *are* maintained agree exactly with
what a ``FULL`` trace of the same run would report.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, Iterator, List, Mapping, Optional

__all__ = ["Trace", "TraceMode", "TraceRecord"]


class TraceMode(enum.Enum):
    """How much a :class:`Trace` retains of the run it observes."""

    FULL = "full"
    COUNTERS = "counters"
    OFF = "off"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One observable step of an execution.

    Attributes:
        tick: kernel tick at which the record was emitted (0-based).
        kind: one of ``start``, ``send``, ``send-suppressed``, ``deliver``,
            ``drop``, ``decide``, ``crash``, ``read``, ``write``, ``halt``.
        pid: the process the record is about.
        peer: the other process involved, if any (message destination or
            source, register owner for reads).
        payload: message payload, register value, or decision value.
    """

    tick: int
    kind: str
    pid: int
    peer: Optional[int] = None
    payload: Any = None

    def __str__(self) -> str:
        peer = f" peer=p{self.peer}" if self.peer is not None else ""
        payload = f" {self.payload!r}" if self.payload is not None else ""
        return f"[{self.tick:6d}] {self.kind:<16} p{self.pid}{peer}{payload}"


class Trace:
    """An append-only sequence of :class:`TraceRecord` entries.

    Per-kind and per-process counters are maintained incrementally on
    every append, so ``message_count``/``delivery_count`` and the
    :meth:`~repro.runtime.kernel.ExecutionResult.stats` aggregates never
    rescan the record list -- and remain available in ``COUNTERS`` mode,
    where the record list stays empty.
    """

    def __init__(self, mode: TraceMode = TraceMode.FULL) -> None:
        self._mode = mode
        self._records: List[TraceRecord] = []
        self._kind_counts: Dict[str, int] = {}
        self._sends_by_process: Dict[int, int] = {}
        self._deliveries_by_process: Dict[int, int] = {}
        self._register_ops_by_process: Dict[int, int] = {}
        self._decision_tick_by_process: Dict[int, int] = {}
        self._version = 0

    @property
    def mode(self) -> TraceMode:
        return self._mode

    @property
    def version(self) -> int:
        """Monotonic append counter (the dirty flag for derived caches).

        Incremented on every counted append, in ``FULL`` and ``COUNTERS``
        modes alike; consumers caching aggregates derived from the trace
        (e.g. :meth:`~repro.runtime.kernel.ExecutionResult.stats`) compare
        versions to detect that the trace was extended after the cache
        was built.
        """
        return self._version

    # -- appending -----------------------------------------------------------

    def _count(self, tick: int, kind: str, pid: int) -> None:
        self._version += 1
        counts = self._kind_counts
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "send":
            per = self._sends_by_process
            per[pid] = per.get(pid, 0) + 1
        elif kind == "deliver":
            per = self._deliveries_by_process
            per[pid] = per.get(pid, 0) + 1
        elif kind == "read" or kind == "write":
            per = self._register_ops_by_process
            per[pid] = per.get(pid, 0) + 1
        elif kind == "decide":
            self._decision_tick_by_process.setdefault(pid, tick)

    def append(self, record: TraceRecord) -> None:
        if self._mode is TraceMode.OFF:
            return
        self._count(record.tick, record.kind, record.pid)
        if self._mode is TraceMode.FULL:
            self._records.append(record)

    def record(
        self,
        tick: int,
        kind: str,
        pid: int,
        peer: Optional[int] = None,
        payload: Any = None,
    ) -> None:
        if self._mode is TraceMode.OFF:
            return
        self._count(tick, kind, pid)
        if self._mode is TraceMode.FULL:
            self._records.append(TraceRecord(tick, kind, pid, peer, payload))

    # -- record access (FULL mode; empty otherwise) --------------------------

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in order."""
        return [r for r in self._records if r.kind == kind]

    def by_process(self, pid: int) -> List[TraceRecord]:
        """All records about one process, in order."""
        return [r for r in self._records if r.pid == pid]

    def decisions(self) -> List[TraceRecord]:
        return self.of_kind("decide")

    # -- counters (all modes except OFF) -------------------------------------

    def kind_count(self, kind: str) -> int:
        """How many records of ``kind`` were appended (any mode but OFF)."""
        return self._kind_counts.get(kind, 0)

    def message_count(self) -> int:
        """Number of point-to-point sends (broadcast counts n sends)."""
        return self._kind_counts.get("send", 0)

    def delivery_count(self) -> int:
        return self._kind_counts.get("deliver", 0)

    @property
    def sends_by_process(self) -> Mapping[int, int]:
        return self._sends_by_process

    @property
    def deliveries_by_process(self) -> Mapping[int, int]:
        return self._deliveries_by_process

    @property
    def register_ops_by_process(self) -> Mapping[int, int]:
        return self._register_ops_by_process

    @property
    def decision_tick_by_process(self) -> Mapping[int, int]:
        return self._decision_tick_by_process

    def format(self, limit: Optional[int] = None) -> str:
        """Render the trace (optionally only the first ``limit`` records)."""
        records = self._records if limit is None else self._records[:limit]
        lines = [str(r) for r in records]
        if limit is not None and len(self._records) > limit:
            lines.append(f"... ({len(self._records) - limit} more records)")
        return "\n".join(lines)
