"""Deterministic discrete-event kernel for the message-passing models.

The kernel realizes the paper's asynchronous message-passing system
(Section 3): a reliable, completely connected network where both process
steps and deliveries take arbitrary finite time.  All nondeterminism is
delegated to two pluggable adversaries -- a *scheduler* that picks the
next pending event and a *crash adversary* (crash models) or Byzantine
behaviour substitution (Byzantine models).  Runs are therefore exactly
reproducible from ``(protocol, inputs, scheduler, adversary)``.

Typical use goes through :func:`repro.harness.runner.run_mp`, but the
kernel is usable directly::

    kernel = MPKernel(
        processes=[ProtocolA() for _ in range(4)],
        inputs=[1, 2, 1, 1],
        t=1,
        scheduler=FifoScheduler(),
    )
    result = kernel.run()
    result.outcome.decisions
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.problem import Outcome
from repro.core.values import Value
from repro.failures.adversary import CrashAdversary, NoCrashes
from repro.runtime.events import Delivery, Event, Start
from repro.runtime.process import Context, Process, ProtocolError, copy_plain
from repro.runtime.traces import Trace, TraceMode

__all__ = [
    "ExecutionResult",
    "ExecutionStats",
    "KernelLimitError",
    "MPKernel",
    "MPSnapshot",
    "SchedulerStall",
]


class KernelLimitError(RuntimeError):
    """The run exceeded the tick budget without reaching a stop state."""


class SchedulerStall(RuntimeError):
    """The scheduler refused every pending event before all correct decided.

    A scheduler embodies "arbitrary but *finite*" delays; refusing to ever
    deliver a message while some correct process is still undecided would
    be an infinite delay, which the model forbids.
    """


@dataclasses.dataclass
class ExecutionResult:
    """Everything a finished run produced."""

    outcome: Outcome
    trace: Trace
    ticks: int
    quiescent: bool
    _stats: Optional["ExecutionStats"] = dataclasses.field(
        default=None, repr=False, compare=False
    )
    _stats_version: Optional[int] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def message_count(self) -> int:
        return self.trace.message_count()

    def stats(self) -> "ExecutionStats":
        """Per-process counters and decision latencies for this run.

        Reads the trace's incrementally-maintained counters (available in
        both ``FULL`` and ``COUNTERS`` trace modes) and caches the result,
        so repeated calls never rescan the trace.  The cache keys on
        :attr:`Trace.version`, so extending the trace after a first call
        (e.g. merging counters into a still-live COUNTERS trace)
        invalidates it instead of serving stale aggregates.
        """
        version = self.trace.version
        if self._stats is None or self._stats_version != version:
            self._stats_version = version
            self._stats = ExecutionStats(
                ticks=self.ticks,
                sends_by_process=dict(self.trace.sends_by_process),
                deliveries_by_process=dict(self.trace.deliveries_by_process),
                register_ops_by_process=dict(self.trace.register_ops_by_process),
                decision_tick_by_process=dict(self.trace.decision_tick_by_process),
            )
        return self._stats


@dataclasses.dataclass(frozen=True)
class ExecutionStats:
    """Aggregated counters of one run (derived from the trace).

    ``decision_tick_by_process`` maps each decided process to the kernel
    tick of its decision -- the run's "latency" profile under the chosen
    schedule.
    """

    ticks: int
    sends_by_process: Mapping[int, int]
    deliveries_by_process: Mapping[int, int]
    register_ops_by_process: Mapping[int, int]
    decision_tick_by_process: Mapping[int, int]

    @property
    def total_sends(self) -> int:
        return sum(self.sends_by_process.values())

    @property
    def total_register_ops(self) -> int:
        return sum(self.register_ops_by_process.values())

    @property
    def last_decision_tick(self) -> Optional[int]:
        if not self.decision_tick_by_process:
            return None
        return max(self.decision_tick_by_process.values())

    def summary(self) -> str:
        return (
            f"ticks={self.ticks} sends={self.total_sends} "
            f"register_ops={self.total_register_ops} "
            f"last_decision_tick={self.last_decision_tick}"
        )


@dataclasses.dataclass(frozen=True)
class MPSnapshot:
    """Plain-data capture of an :class:`MPKernel` execution state.

    Everything the kernel's future behaviour depends on, and nothing
    else: no handler code, no scheduler, no trace records.  Events are
    frozen dataclasses and are shared, not copied; the mutable parts
    (process state, crash sets, counters) are plain-data copies, so a
    snapshot stays valid however the live kernel moves on.  Snapshots
    are picklable, which is what lets the parallel frontier search ship
    subtree roots to worker processes.
    """

    tick: int
    seq: int
    pending: Dict[int, Event]
    crashed: frozenset
    halted_at_send: frozenset
    steps_taken: Tuple[int, ...]
    sends_made: Tuple[int, ...]
    process_states: Tuple[Dict[str, Any], ...]
    context_states: Tuple[Tuple[bool, Any], ...]


class _KernelContext(Context):
    """Context wired into an :class:`MPKernel`."""

    def __init__(self, kernel: "MPKernel", pid: int, input_value: Value) -> None:
        super().__init__(pid, kernel.n, kernel.t, input_value)
        self._kernel = kernel

    def _emit_send(self, dst: int, payload: Any) -> None:
        self._kernel._handle_send(self.pid, dst, payload)

    def _emit_decide(self, value: Value) -> None:
        self._kernel._handle_decide(self.pid, value)


class MPKernel:
    """Simulates one execution of a message-passing protocol.

    Args:
        processes: one :class:`Process` per identifier ``0..n-1``.
            Byzantine behaviours are installed simply by placing a
            misbehaving process object at a faulty index and listing the
            index in ``byzantine``.
        inputs: nominal input value per process.
        t: the failure budget of the problem instance (used for context
            information and budget validation).
        scheduler: picks the next pending event; see
            :mod:`repro.net.schedulers`.
        crash_adversary: crash-point decisions (crash models only).
        byzantine: identifiers whose process objects deviate arbitrarily.
        stop_when_decided: stop as soon as every correct process decided
            (the default).  When ``False`` the run continues until no
            event is pending.
        max_ticks: safety valve against non-terminating protocols.
        enforce_budget: validate that byzantine + potentially-crashing
            processes stay within ``t``.
        trace_mode: how much the trace retains; ``COUNTERS`` skips all
            :class:`~repro.runtime.traces.TraceRecord` allocation (the
            Monte-Carlo fast path), ``OFF`` records nothing.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        inputs: Sequence[Value],
        t: int,
        scheduler,
        crash_adversary: Optional[CrashAdversary] = None,
        byzantine: Sequence[int] = (),
        stop_when_decided: bool = True,
        max_ticks: int = 1_000_000,
        enforce_budget: bool = True,
        trace_mode: TraceMode = TraceMode.FULL,
    ) -> None:
        if len(processes) != len(inputs):
            raise ValueError("processes and inputs must have equal length")
        self.n = len(processes)
        self.t = t
        self._processes = list(processes)
        self._inputs = list(inputs)
        self._scheduler = scheduler
        self._crash_adversary = crash_adversary or NoCrashes()
        self._byzantine: Set[int] = set(byzantine)
        self._stop_when_decided = stop_when_decided
        self._max_ticks = max_ticks

        bad = self._byzantine - set(range(self.n))
        if bad:
            raise ValueError(f"byzantine ids out of range: {sorted(bad)}")
        if enforce_budget:
            budget_users = self._byzantine | set(
                self._crash_adversary.potentially_faulty()
            )
            if len(budget_users) > t:
                raise ValueError(
                    f"{len(budget_users)} potentially faulty processes exceed "
                    f"the failure budget t={t}"
                )

        self.trace = Trace(trace_mode)
        self.tick = 0
        self._seq = 0
        self._pending: Dict[int, Event] = {}
        self._crashed: Set[int] = set()
        self._halted_at_send: Set[int] = set()
        self._steps_taken: List[int] = [0] * self.n
        self._sends_made: List[int] = [0] * self.n
        self._contexts = [
            _KernelContext(self, pid, self._inputs[pid]) for pid in range(self.n)
        ]
        self._executing: Optional[int] = None
        for pid in range(self.n):
            self._schedule(Start(self._next_seq(), pid))

    # -- introspection for schedulers and adversaries ----------------------

    @property
    def pending(self) -> Mapping[int, Event]:
        """Pending events keyed by sequence number (read-only view)."""
        return self._pending

    @property
    def crashed(self) -> frozenset:
        return frozenset(self._crashed)

    @property
    def byzantine(self) -> frozenset:
        return frozenset(self._byzantine)

    @property
    def faulty(self) -> frozenset:
        return frozenset(self._crashed | self._byzantine)

    @property
    def correct(self) -> frozenset:
        return frozenset(range(self.n)) - self.faulty

    def decision_of(self, pid: int) -> Optional[Value]:
        return self._contexts[pid].decision

    def has_decided(self, pid: int) -> bool:
        return self._contexts[pid].decided

    def decided_pids(self) -> frozenset:
        return frozenset(p for p in range(self.n) if self._contexts[p].decided)

    def all_correct_decided(self) -> bool:
        return all(self._contexts[p].decided for p in self.correct)

    # -- internals ----------------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _schedule(self, event: Event) -> None:
        self._pending[event.seq] = event

    def _handle_send(self, sender: int, dst: int, payload: Any) -> None:
        if sender in self._halted_at_send:
            self.trace.record(self.tick, "send-suppressed", sender, dst, payload)
            return
        if sender not in self._byzantine and self._crash_adversary.crashes_at_send(
            sender, self._sends_made[sender]
        ):
            self._halted_at_send.add(sender)
            self.trace.record(self.tick, "send-suppressed", sender, dst, payload)
            return
        self._sends_made[sender] += 1
        self.trace.record(self.tick, "send", sender, dst, payload)
        self._schedule(Delivery(self._next_seq(), sender, dst, payload))

    def _handle_decide(self, pid: int, value: Value) -> None:
        self.trace.record(self.tick, "decide", pid, payload=value)

    def _crash(self, pid: int) -> None:
        if pid not in self._crashed:
            self._crashed.add(pid)
            self.trace.record(self.tick, "crash", pid)

    def _execute(self, event: Event) -> None:
        if isinstance(event, Start):
            pid = event.pid
            will_run = (
                pid not in self._crashed
                and (
                    pid in self._byzantine
                    or not self._crash_adversary.crashes_before_step(
                        pid, self._steps_taken[pid]
                    )
                )
            )
            if will_run:
                self.trace.record(self.tick, "start", pid)
            self._run_handler(pid, lambda ctx: self._processes[pid].on_start(ctx))
        elif isinstance(event, Delivery):
            receiver = event.receiver
            if receiver in self._crashed:
                self.trace.record(
                    self.tick, "drop", receiver, event.sender, event.payload
                )
                return
            self.trace.record(
                self.tick, "deliver", receiver, event.sender, event.payload
            )
            self._run_handler(
                receiver,
                lambda ctx: self._processes[receiver].on_message(
                    ctx, event.sender, event.payload
                ),
            )
        else:  # pragma: no cover - future event kinds
            raise TypeError(f"unknown event type: {event!r}")

    def _run_handler(self, pid: int, call) -> None:
        if pid in self._crashed:
            return
        if pid not in self._byzantine and self._crash_adversary.crashes_before_step(
            pid, self._steps_taken[pid]
        ):
            self._crash(pid)
            return
        self._executing = pid
        try:
            call(self._contexts[pid])
        finally:
            self._executing = None
        self._steps_taken[pid] += 1
        if pid in self._halted_at_send:
            self._crash(pid)

    def _apply_dynamic_crashes(self) -> None:
        for pid in self._crash_adversary.dynamic_crashes(self):
            if pid in self._byzantine:
                continue
            self._crash(pid)

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> MPSnapshot:
        """Capture the execution state as plain data (no deepcopy).

        The capture covers exactly what future behaviour depends on:
        pending events, per-process protocol state
        (:meth:`~repro.runtime.process.Process.snapshot_state`), decision
        state, crash/halt sets, and the step/send counters the crash
        adversary keys on.  The trace is deliberately *not* captured --
        it is monitoring state, not execution state -- so snapshot users
        (the exhaustive explorer) run with ``TraceMode.OFF``.
        """
        return MPSnapshot(
            tick=self.tick,
            seq=self._seq,
            pending=dict(self._pending),
            crashed=frozenset(self._crashed),
            halted_at_send=frozenset(self._halted_at_send),
            steps_taken=tuple(self._steps_taken),
            sends_made=tuple(self._sends_made),
            process_states=tuple(
                p.snapshot_state() for p in self._processes
            ),
            context_states=tuple(
                (ctx._decided, copy_plain(ctx._decision))
                for ctx in self._contexts
            ),
        )

    def restore(self, snapshot: MPSnapshot) -> None:
        """Reset the kernel to a previously captured snapshot.

        A snapshot may be restored any number of times; each restore
        installs fresh plain-data copies, so branches forked from the
        same snapshot never share mutable state.  The scheduler and the
        trace are left untouched.
        """
        self.tick = snapshot.tick
        self._seq = snapshot.seq
        self._pending = dict(snapshot.pending)
        self._crashed = set(snapshot.crashed)
        self._halted_at_send = set(snapshot.halted_at_send)
        self._steps_taken = list(snapshot.steps_taken)
        self._sends_made = list(snapshot.sends_made)
        for process, state in zip(self._processes, snapshot.process_states):
            process.restore_state(state)
        for ctx, (decided, decision) in zip(
            self._contexts, snapshot.context_states
        ):
            ctx._decided = decided
            ctx._decision = copy_plain(decision)

    def step(self, seq: int) -> None:
        """Execute one pending event by sequence number.

        The single-step entry point for explorers driving the kernel
        without a scheduler: pops and executes the event, applies
        dynamic crashes, and advances the tick -- exactly one iteration
        of :meth:`run`'s loop.
        """
        event = self._pending.pop(seq)
        self._execute(event)
        self._apply_dynamic_crashes()
        self.tick += 1

    # -- main loop -----------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Execute until a stop state and return the result.

        Stop states: all correct processes decided (when
        ``stop_when_decided``), or no event pending (quiescence).

        Raises:
            KernelLimitError: the tick budget was exhausted first.
            SchedulerStall: the scheduler refused all pending events while
                some correct process was still undecided.
        """
        self._apply_dynamic_crashes()
        while self._pending:
            if self._stop_when_decided and self.all_correct_decided():
                break
            if self.tick >= self._max_ticks:
                raise KernelLimitError(
                    f"exceeded {self._max_ticks} ticks; "
                    f"{len(self._pending)} events still pending"
                )
            choice = self._scheduler.pick(self)
            if choice is None:
                if self.all_correct_decided():
                    break
                raise SchedulerStall(
                    "scheduler refused all pending events but "
                    f"correct processes {sorted(self.correct - self.decided_pids())} "
                    "have not decided"
                )
            event = self._pending.pop(choice)
            self._execute(event)
            self._apply_dynamic_crashes()
            self.tick += 1
        return self._result()

    def _result(self) -> ExecutionResult:
        decisions = {
            pid: ctx.decision
            for pid, ctx in enumerate(self._contexts)
            if ctx.decided
        }
        outcome = Outcome(
            n=self.n,
            inputs={pid: v for pid, v in enumerate(self._inputs)},
            decisions=decisions,
            faulty=frozenset(self._crashed | self._byzantine),
        )
        return ExecutionResult(
            outcome=outcome,
            trace=self.trace,
            ticks=self.tick,
            quiescent=not self._pending,
        )
