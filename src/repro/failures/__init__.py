"""Fault injection: crash adversaries and Byzantine behaviours."""

from repro.failures.adversary import CrashAdversary, NoCrashes
from repro.failures.byzantine import (
    GarbageProcess,
    MultiFaceProcess,
    MutatingProcess,
    MuteProcess,
    SilentDecider,
    two_faced,
)
from repro.failures.byzantine_sm import (
    garbage_writer,
    mute_program,
    register_rewriter,
    silent_decider_program,
    with_fake_input,
)
from repro.failures.crash import (
    CrashAfterDecide,
    CrashPlan,
    CrashPoint,
    CrashWhenOthersDecide,
    RandomCrashes,
    combine,
)

__all__ = [
    "CrashAdversary",
    "CrashAfterDecide",
    "CrashPlan",
    "CrashPoint",
    "CrashWhenOthersDecide",
    "GarbageProcess",
    "MultiFaceProcess",
    "MutatingProcess",
    "MuteProcess",
    "NoCrashes",
    "RandomCrashes",
    "SilentDecider",
    "combine",
    "garbage_writer",
    "mute_program",
    "register_rewriter",
    "silent_decider_program",
    "two_faced",
    "with_fake_input",
]
