"""Byzantine behaviours for the message-passing models.

A Byzantine process "can deviate from its program arbitrarily"
(Section 2).  In the kernel, Byzantine failure is modelled by installing
a misbehaving :class:`~repro.runtime.process.Process` object at a faulty
index.  This module provides the behaviours the paper's proofs rely on
plus generic fuzzing behaviours:

* :class:`MuteProcess` -- sends nothing (subsumes crash-at-start);
* :class:`MultiFaceProcess` -- runs several *faces* of a real protocol
  in parallel, showing a different input/execution to different peers.
  This is exactly the proof device of Lemmas 3.9 and 4.9 ("for each
  group g_i, processes in F behave as correct processes with input
  v_i");
* :class:`MutatingProcess` -- runs the real protocol but rewrites
  outgoing payloads (value lies, echo splitting);
* :class:`GarbageProcess` -- broadcasts malformed payloads, checking
  that correct processes validate what they receive.

The network still authenticates senders (it does not forge messages), so
a Byzantine process cannot impersonate another -- matching the paper's
reliable-network assumption.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Hashable, Iterable, Mapping, Optional

from repro.core.values import Value
from repro.runtime.process import Context, Process

__all__ = [
    "GarbageProcess",
    "MultiFaceProcess",
    "MutatingProcess",
    "MuteProcess",
    "SilentDecider",
    "two_faced",
]

#: Sentinel a mutator returns to suppress an outgoing message entirely.
SUPPRESS = object()
__all__.append("SUPPRESS")


class MuteProcess(Process):
    """Never sends anything; the Byzantine equivalent of crash-at-start."""


class SilentDecider(Process):
    """Decides its input immediately and otherwise stays silent."""

    def on_start(self, ctx: Context) -> None:
        ctx.decide(ctx.input)


class _FilteredContext(Context):
    """A context restricted to a subset of destinations with a fake input.

    Sends to destinations outside ``allow_dst`` are silently dropped;
    self-addressed messages are queued for loop-back to this face only
    (faces must not see each other's traffic); decisions are swallowed
    (a Byzantine process owes nobody a decision).
    """

    def __init__(
        self,
        real: Context,
        fake_input: Value,
        allow_dst: Callable[[int], bool],
    ) -> None:
        super().__init__(real.pid, real.n, real.t, fake_input)
        self._real = real
        self._allow_dst = allow_dst
        self.pending_self: list = []

    def _emit_send(self, dst: int, payload: Any) -> None:
        if dst == self.pid:
            self.pending_self.append(payload)
        elif self._allow_dst(dst):
            self._real.send(dst, payload)

    def _emit_decide(self, value: Value) -> None:
        pass


class MultiFaceProcess(Process):
    """Runs one inner protocol instance per *face*.

    Each face is an honest execution of the protocol with its own
    (possibly fake) input.  Peers are partitioned among faces: a peer
    assigned to face ``i`` only ever sees face ``i``'s messages, and its
    messages are only fed to face ``i``.  To each group of peers, the
    process is indistinguishable from a correct process with that face's
    input -- the standard two-faced Byzantine strategy.

    Args:
        protocol_factory: builds a fresh inner protocol process per face.
        face_inputs: input value per face key.
        face_of_peer: maps a peer id to the face key it is assigned to;
            peers mapped to ``None`` are ignored entirely.
    """

    def __init__(
        self,
        protocol_factory: Callable[[], Process],
        face_inputs: Mapping[Hashable, Value],
        face_of_peer: Callable[[int], Optional[Hashable]],
    ) -> None:
        if not face_inputs:
            raise ValueError("need at least one face")
        self._face_inputs: Dict[Hashable, Value] = dict(face_inputs)
        self._factory = protocol_factory
        self._face_of_peer = face_of_peer
        self._faces: Dict[Hashable, Process] = {}
        self._contexts: Dict[Hashable, _FilteredContext] = {}

    def _ensure_faces(self, ctx: Context) -> None:
        if self._faces:
            return
        for key, fake_input in self._face_inputs.items():
            allow = self._allow_for(key)
            self._faces[key] = self._factory()
            self._contexts[key] = _FilteredContext(ctx, fake_input, allow)

    def _allow_for(self, key: Hashable) -> Callable[[int], bool]:
        def allow(dst: int) -> bool:
            return self._face_of_peer(dst) == key

        return allow

    def _flush_self_deliveries(self, pid: int) -> None:
        # Loop self-addressed messages back into the face that sent them,
        # after the current handler returned (avoids handler re-entrancy).
        progressed = True
        while progressed:
            progressed = False
            for key, face_ctx in self._contexts.items():
                while face_ctx.pending_self:
                    payload = face_ctx.pending_self.pop(0)
                    self._faces[key].on_message(face_ctx, pid, payload)
                    progressed = True

    def on_start(self, ctx: Context) -> None:
        self._ensure_faces(ctx)
        for key, face in self._faces.items():
            face.on_start(self._contexts[key])
        self._flush_self_deliveries(ctx.pid)

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        self._ensure_faces(ctx)
        if sender == ctx.pid:
            return  # network self-copies are not used by faces
        key = self._face_of_peer(sender)
        if key is None or key not in self._faces:
            return
        self._faces[key].on_message(self._contexts[key], sender, payload)
        self._flush_self_deliveries(ctx.pid)


def two_faced(
    protocol_factory: Callable[[], Process],
    input_a: Value,
    peers_a: Iterable[int],
    input_b: Value,
) -> MultiFaceProcess:
    """Convenience builder: show ``input_a`` to ``peers_a``, ``input_b`` to the rest."""
    group_a = frozenset(peers_a)

    def face_of_peer(pid: int) -> str:
        return "a" if pid in group_a else "b"

    return MultiFaceProcess(
        protocol_factory,
        {"a": input_a, "b": input_b},
        face_of_peer,
    )


class _MutatingContext(Context):
    def __init__(self, real: Context, mutate: Callable[[int, Any], Any]) -> None:
        super().__init__(real.pid, real.n, real.t, real.input)
        self._real = real
        self._mutate = mutate

    def _emit_send(self, dst: int, payload: Any) -> None:
        mutated = self._mutate(dst, payload)
        if mutated is not SUPPRESS:
            self._real.send(dst, mutated)

    def _emit_decide(self, value: Value) -> None:
        pass


class MutatingProcess(Process):
    """Runs the real protocol but rewrites every outgoing payload.

    ``mutate(dst, payload)`` returns the payload to actually send (which
    may differ per destination -- equivocation) or :data:`SUPPRESS` to
    drop the message (selective omission).
    """

    def __init__(
        self,
        inner: Process,
        mutate: Callable[[int, Any], Any],
    ) -> None:
        self._inner = inner
        self._mutate = mutate
        self._wrapped: Optional[_MutatingContext] = None

    def _wrap(self, ctx: Context) -> _MutatingContext:
        if self._wrapped is None:
            self._wrapped = _MutatingContext(ctx, self._mutate)
        return self._wrapped

    def on_start(self, ctx: Context) -> None:
        self._inner.on_start(self._wrap(ctx))

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        self._inner.on_message(self._wrap(ctx), sender, payload)


class GarbageProcess(Process):
    """Broadcasts malformed payloads to everyone, then babbles on replies.

    Exercises input validation in correct processes: tags that do not
    exist, wrong arities, non-tuple payloads, unhashable-looking values.
    """

    def __init__(self, seed: int = 0, rounds: int = 3) -> None:
        self._rng = random.Random(seed)
        self._rounds = rounds
        self._sent = 0

    def _garbage(self) -> Any:
        choices = (
            ("NOSUCHTAG", self._rng.random()),
            ("VAL",),  # wrong arity for value messages
            ("ECHO", "notapid", None, 1, 2, 3),
            42,
            None,
            ("INIT",) * self._rng.randint(1, 4),
            ("VAL", ("nested", ("tuple", self._rng.randint(0, 99)))),
        )
        return choices[self._rng.randrange(len(choices))]

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(self._garbage())

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if self._sent < self._rounds:
            self._sent += 1
            ctx.send(sender, self._garbage())
