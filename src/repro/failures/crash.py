"""Concrete crash adversaries.

In the crash model a faulty process "executes only finitely many
instructions" (Section 2): it may halt before starting, between handler
steps, or in the middle of a broadcast (some destinations receive the
message, others never will).  The adversaries here express the crash
patterns used throughout the paper's proofs plus a seeded random
adversary for fuzzing.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set

from repro.failures.adversary import CrashAdversary

__all__ = [
    "CrashAfterDecide",
    "CrashPlan",
    "CrashPoint",
    "CrashWhenOthersDecide",
    "RandomCrashes",
    "combine",
]


@dataclasses.dataclass(frozen=True)
class CrashPoint:
    """Where one process crashes.

    Attributes:
        after_steps: halt before taking handler step number
            ``after_steps`` (0 means the process never starts).
        after_sends: suppress the send with index ``after_sends`` and all
            later activity (crash mid-broadcast; 0 sends nothing).
    """

    after_steps: Optional[int] = None
    after_sends: Optional[int] = None

    def __post_init__(self) -> None:
        if self.after_steps is None and self.after_sends is None:
            raise ValueError("a crash point must bound steps or sends")
        for field in (self.after_steps, self.after_sends):
            if field is not None and field < 0:
                raise ValueError("crash point bounds must be non-negative")


class CrashPlan(CrashAdversary):
    """Static crash schedule: an explicit :class:`CrashPoint` per victim."""

    def __init__(self, points: Mapping[int, CrashPoint]) -> None:
        self._points: Dict[int, CrashPoint] = dict(points)

    def potentially_faulty(self) -> FrozenSet[int]:
        return frozenset(self._points)

    def crashes_before_step(self, pid: int, steps_taken: int) -> bool:
        point = self._points.get(pid)
        return (
            point is not None
            and point.after_steps is not None
            and steps_taken >= point.after_steps
        )

    def crashes_at_send(self, pid: int, sends_made: int) -> bool:
        point = self._points.get(pid)
        return (
            point is not None
            and point.after_sends is not None
            and sends_made >= point.after_sends
        )


class CrashWhenOthersDecide(CrashAdversary):
    """Crash ``victims`` once every process in ``watch`` has decided.

    This is the dynamic pattern of several proofs, e.g. Lemma 4.3's run
    ``alpha_i`` where "processes in g, except process p_i, fail after p_i
    decides".
    """

    def __init__(self, victims: Iterable[int], watch: Iterable[int]) -> None:
        self._victims = frozenset(victims)
        self._watch = frozenset(watch)
        if not self._watch:
            raise ValueError("watch set must be non-empty")

    def potentially_faulty(self) -> FrozenSet[int]:
        return self._victims

    def dynamic_crashes(self, view) -> Iterable[int]:
        if all(view.has_decided(p) for p in self._watch):
            return self._victims
        return ()


class CrashAfterDecide(CrashAdversary):
    """Each victim crashes immediately after its own decision.

    Used to stress the distinction between SV1-style conditions (which
    refer to *correct* processes' inputs) and their regular variants: a
    process whose input was decided upon may turn out faulty (proof of
    Lemma 3.5).
    """

    def __init__(self, victims: Iterable[int]) -> None:
        self._victims = frozenset(victims)

    def potentially_faulty(self) -> FrozenSet[int]:
        return self._victims

    def dynamic_crashes(self, view) -> Iterable[int]:
        return tuple(p for p in self._victims if view.has_decided(p))


class RandomCrashes(CrashAdversary):
    """Seeded random crash schedule staying within the budget ``t``.

    Picks up to ``t`` victims and a random step/send bound for each.
    ``none_probability`` leaves room for failure-free and low-failure
    runs in fuzz sweeps.
    """

    def __init__(
        self,
        n: int,
        t: int,
        seed: int = 0,
        max_point: int = 50,
        none_probability: float = 0.2,
    ) -> None:
        rng = random.Random(seed)
        points: Dict[int, CrashPoint] = {}
        count = rng.randint(0, t) if rng.random() >= none_probability else 0
        for pid in rng.sample(range(n), count):
            if rng.random() < 0.5:
                points[pid] = CrashPoint(after_steps=rng.randint(0, max_point))
            else:
                points[pid] = CrashPoint(after_sends=rng.randint(0, max_point))
        self._plan = CrashPlan(points)

    def potentially_faulty(self) -> FrozenSet[int]:
        return self._plan.potentially_faulty()

    def crashes_before_step(self, pid: int, steps_taken: int) -> bool:
        return self._plan.crashes_before_step(pid, steps_taken)

    def crashes_at_send(self, pid: int, sends_made: int) -> bool:
        return self._plan.crashes_at_send(pid, sends_made)


class _Combined(CrashAdversary):
    def __init__(self, parts) -> None:
        self._parts = tuple(parts)

    def potentially_faulty(self) -> FrozenSet[int]:
        out: Set[int] = set()
        for part in self._parts:
            out |= part.potentially_faulty()
        return frozenset(out)

    def crashes_before_step(self, pid: int, steps_taken: int) -> bool:
        return any(p.crashes_before_step(pid, steps_taken) for p in self._parts)

    def crashes_at_send(self, pid: int, sends_made: int) -> bool:
        return any(p.crashes_at_send(pid, sends_made) for p in self._parts)

    def dynamic_crashes(self, view) -> Iterable[int]:
        out: Set[int] = set()
        for part in self._parts:
            out |= set(part.dynamic_crashes(view))
        return out


def combine(*adversaries: CrashAdversary) -> CrashAdversary:
    """Union of several crash adversaries (a process crashes when any says so)."""
    return _Combined(adversaries)
