"""Adversary interfaces.

The paper's adversary controls three things: which processes fail (at
most ``t``), *how* they fail (per the failure mode of the model), and the
asynchrony -- when each pending step or delivery happens.  In this
reproduction those powers are split into three pluggable objects:

* a :class:`CrashAdversary` (this module / :mod:`repro.failures.crash`)
  decides crash points in the crash models;
* Byzantine behaviour replacements (:mod:`repro.failures.byzantine`)
  substitute arbitrary :class:`~repro.runtime.process.Process` objects at
  faulty indices in the Byzantine models;
* a scheduler (:mod:`repro.net.schedulers` /
  :mod:`repro.shm.kernel`) orders pending events.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set

__all__ = ["CrashAdversary", "NoCrashes"]


class CrashAdversary:
    """Decides when processes crash.  Base class crashes nobody.

    The kernel consults the adversary at three points:

    * before executing a handler step for ``pid``
      (:meth:`crashes_before_step`) -- returning ``True`` means the
      process halted before this step; the event is dropped;
    * at each individual send (:meth:`crashes_at_send`) -- returning
      ``True`` suppresses this send and every later instruction of the
      process, which models a crash in the middle of a broadcast;
    * after every executed event (:meth:`dynamic_crashes`) -- the
      adversary may react to global progress, e.g. "crash every process
      in g right after p_i decides" as in the proof of Lemma 4.3.

    Implementations must be deterministic functions of their inputs (plus
    any internally seeded randomness) so runs are reproducible.
    """

    def potentially_faulty(self) -> FrozenSet[int]:
        """Processes this adversary might crash (for budget validation)."""
        return frozenset()

    def crashes_before_step(self, pid: int, steps_taken: int) -> bool:
        """Whether ``pid`` halts instead of taking its next handler step.

        ``steps_taken`` counts handler invocations (including the start
        step) the process has already completed.
        """
        return False

    def crashes_at_send(self, pid: int, sends_made: int) -> bool:
        """Whether ``pid`` halts at its next send.

        ``sends_made`` counts point-to-point sends already performed (a
        broadcast is ``n`` sends, so a crash can split a broadcast).
        """
        return False

    def dynamic_crashes(self, view) -> Iterable[int]:
        """Processes to crash right now, given a read-only kernel view."""
        return ()


class NoCrashes(CrashAdversary):
    """The failure-free crash adversary."""
