"""Byzantine behaviours for the shared-memory models.

A Byzantine process in the shared-memory model can write anything *to
its own register* (the memory's single-writer restriction survives
Byzantine clients, Section 4) and can read and compute arbitrarily.  The
programs here misuse exactly that freedom: garbage content, history
rewriting, lying about the input while otherwise following the protocol.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator

from repro.core.values import Value
from repro.shm.kernel import SMContext, SMProgram
from repro.shm.ops import Decide, Op, Read, Write

__all__ = [
    "garbage_writer",
    "mute_program",
    "register_rewriter",
    "with_fake_input",
]


def mute_program(ctx: SMContext) -> Generator[Op, Any, None]:
    """Take no shared-memory steps at all (crash-at-start equivalent)."""
    return
    yield  # pragma: no cover - makes this a generator function


def garbage_writer(seed: int = 0, rounds: int = 25) -> SMProgram:
    """Repeatedly write malformed junk and read random registers."""

    def program(ctx: SMContext) -> Generator[Op, Any, None]:
        rng = random.Random(f"{seed}:{ctx.pid}")
        junk_pool = (
            ("junk", 0.5),
            (),
            "a string",
            -1,
            ("VAL", "forged", "extra"),
            None,
            (("nested",),) * 3,
        )
        for _ in range(rounds):
            yield Write(junk_pool[rng.randrange(len(junk_pool))])
            yield Read(rng.randrange(ctx.n))

    return program


def register_rewriter(values, rounds: int = 10) -> SMProgram:
    """Cycle the register through ``values``, rewriting history.

    Readers that scan at different times see different values -- the
    shared-memory analogue of equivocation.
    """
    values = tuple(values)
    if not values:
        raise ValueError("need at least one value to cycle through")

    def program(ctx: SMContext) -> Generator[Op, Any, None]:
        for i in range(rounds * len(values)):
            yield Write(values[i % len(values)])
            yield Read((ctx.pid + i) % ctx.n)

    return program


def with_fake_input(
    program: SMProgram,
    fake_input: Value,
) -> SMProgram:
    """Follow ``program`` honestly but with a lie for the input value."""

    def wrapped(ctx: SMContext) -> Generator[Op, Any, None]:
        fake_ctx = SMContext(ctx.pid, ctx.n, ctx.t, fake_input)
        return program(fake_ctx)

    return wrapped


def silent_decider_program(ctx: SMContext) -> Generator[Op, Any, None]:
    """Decide the input and stop without writing anything."""
    yield Decide(ctx.input)


__all__.append("silent_decider_program")
