"""Vectorized batch simulation engine (struct-of-arrays mega-sweeps).

The scalar Monte-Carlo path (:mod:`repro.harness.sweep`) advances one
pure-Python discrete-event kernel per run, which caps sweep throughput
at a few hundred to a few thousand runs per second per core.  This
package represents a whole *batch* of runs as struct-of-arrays numpy
state -- per-run/per-process arrays for inputs, crash masks, message
arrival keys, ℓ-echo tallies, and decision values -- and resolves every
run of the batch with a fixed sequence of array operations instead of
stepping Python generators.

Layout and semantics are documented in ``DESIGN.md`` (section
"6d. The vectorized batch engine"); the short version:

* :mod:`repro.batch.prng` -- a counter-based splitmix64 generator.
  Per-run seeds reuse the SHA-256 mix of
  :func:`repro.harness.parallel.derive_seed`, so batch runs are
  bit-reproducible and attributable run-by-run, independent of batch
  size or chunking.
* :mod:`repro.batch.plan` -- :class:`BatchPlan`: the sampled adversary
  (inputs, crash masks, per-receiver message-arrival keys and per-origin
  acceptance keys) for every run of the batch.
* :mod:`repro.batch.engine` -- closed-form decision kernels for the
  threshold-structured protocols (A, B, Chaudhuri, the ℓ-echo family C,
  D, and the trivial protocol) plus vectorized condition checking.
* :mod:`repro.batch.replay` -- replays any single planned run through
  the scalar :class:`~repro.runtime.kernel.MPKernel` under a scheduler
  realizing the plan's arrival order.  This is the differential-testing
  bridge: :func:`batch_vs_replay` must agree run-for-run.

The engine models the message-passing **crash** fault model (for the
Byzantine-model specs it models the crash-restricted sub-adversary,
which is exercised by the differential check); shared-memory specs and
oracle-verified sweeps fall back to the scalar path automatically.
"""

from repro.batch.engine import (
    BATCH_FAMILIES,
    FALLBACK_REASON_CODES,
    BatchResult,
    UnsupportedReason,
    batch_run,
    batch_sweep,
    batch_vs_replay,
    supports_point,
    supports_spec,
    sweep_unsupported_reason,
)
from repro.batch.plan import DEFAULT_CODE, BatchPlan, build_plan, decode_code
from repro.batch.prng import mix64, run_seeds, stream_u64
from repro.batch.replay import PlannedScheduler, compare_run, replay_run

__all__ = [
    "BATCH_FAMILIES",
    "BatchPlan",
    "BatchResult",
    "DEFAULT_CODE",
    "FALLBACK_REASON_CODES",
    "UnsupportedReason",
    "PlannedScheduler",
    "batch_run",
    "batch_sweep",
    "batch_vs_replay",
    "build_plan",
    "compare_run",
    "decode_code",
    "mix64",
    "replay_run",
    "run_seeds",
    "stream_u64",
    "supports_point",
    "supports_spec",
    "sweep_unsupported_reason",
]
