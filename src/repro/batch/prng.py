"""Counter-based vectorized PRNG for the batch engine.

Requirements differ from :class:`random.Random`: the generator must be
(1) stateless -- the value at ``(run, stream, counter)`` is a pure
function of those coordinates, so any chunking of a batch produces
bit-identical draws; (2) vectorizable -- whole arrays of draws in one
numpy expression; (3) attributable -- the per-run seed must come from
the same SHA-256 mix (:func:`repro.harness.parallel.derive_seed`) the
parallel sweep engine uses, so a batch run can be named and reproduced
by ``(config.seed, run_index)`` alone.

The mixer is the splitmix64 finalizer (Steele, Lea & Flood 2014), a
full-period bijection on 64-bit integers whose output passes BigCrush;
we use it purely as a counter-mode hash: ``mix64(seed ^ mix64(ctr))``.
All constants are wrapped in ``np.uint64`` up front -- NumPy 2 raises
``OverflowError`` on mixed Python-int/uint64 arithmetic otherwise.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.harness.parallel import derive_seed

__all__ = [
    "STREAM_ACCEPT",
    "STREAM_ARRIVAL",
    "STREAM_CRASH_COUNT",
    "STREAM_CRASH_FRAC",
    "STREAM_INPUT",
    "STREAM_KIND",
    "STREAM_SEND_POINT",
    "STREAM_TWOVAL",
    "STREAM_VICTIM_KEY",
    "mix64",
    "run_seeds",
    "stream_u64",
    "u01",
]

_U64 = np.uint64
_MUL1 = _U64(0xBF58476D1CE4E5B9)
_MUL2 = _U64(0x94D049BB133111EB)
_GOLDEN = _U64(0x9E3779B97F4A7C15)
_STREAM_SALT = _U64(0xD1342543DE82EF95)
_S30 = _U64(30)
_S27 = _U64(27)
_S31 = _U64(31)

#: Independent draw streams of one run.  Each (run, stream) pair is an
#: independent counter-mode sequence; adding a stream never perturbs
#: the draws of existing ones.
STREAM_INPUT = 1
STREAM_TWOVAL = 2
STREAM_CRASH_FRAC = 3
STREAM_CRASH_COUNT = 4
STREAM_VICTIM_KEY = 5
STREAM_KIND = 6
STREAM_SEND_POINT = 7
STREAM_ARRIVAL = 8
STREAM_ACCEPT = 9


def mix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, element-wise over a uint64 array."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> _S30
    x *= _MUL1
    x ^= x >> _S27
    x *= _MUL2
    x ^= x >> _S31
    return x


def run_seeds(seed: int, indices: Sequence[int]) -> np.ndarray:
    """Per-run 62-bit seeds for global run indices, as a uint64 array.

    Exactly ``derive_seed(seed, index)`` per run -- the same SHA-256 mix
    the parallel sweep engine derives per-task seeds with -- so every
    batch run is attributable by its ``(config.seed, run_index)`` pair
    regardless of batch size or chunk boundaries.
    """
    return np.array(
        [derive_seed(seed, int(index)) for index in indices], dtype=np.uint64
    )


def stream_u64(
    seeds: np.ndarray, stream: int, shape: Tuple[int, ...] = ()
) -> np.ndarray:
    """Draw ``shape`` uint64s per run: result shape ``(len(seeds), *shape)``.

    ``out[i, j...] = mix64(mix64(seeds[i] ^ stream_salt) ^ ctr(j...))``
    -- a pure function of (seed, stream, flat counter), hence invariant
    under batching and chunking.
    """
    count = 1
    for dim in shape:
        count *= int(dim)
    ctr = np.arange(1, count + 1, dtype=np.uint64) * _GOLDEN
    # Salt computed in Python ints: scalar uint64 overflow warns in
    # NumPy 2, while the array ops below wrap silently as intended.
    salt = _U64((stream * int(_STREAM_SALT)) & 0xFFFFFFFFFFFFFFFF)
    salted = mix64(seeds.astype(np.uint64) ^ salt)
    out = mix64(salted[:, None] ^ ctr[None, :])
    return out.reshape((len(seeds),) + tuple(int(dim) for dim in shape))


def u01(x: np.ndarray) -> np.ndarray:
    """Map uint64 draws to floats in ``[0, 1)`` (53-bit mantissa)."""
    return (x >> _U64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)
