"""Batch adversary sampling: the struct-of-arrays run plan.

A :class:`BatchPlan` fixes *everything* nondeterministic about a batch
of runs before any protocol logic executes:

* **inputs** -- integer-coded per the run's input pattern (see
  :data:`repro.harness.inputs.INPUT_PATTERNS`); :func:`decode_code`
  maps codes back to the concrete values the scalar replay uses.  Codes
  are zero-padded on decode (``17 -> "v017"``) so numeric code order
  equals the lexicographic :func:`repro.core.values.order_key` order --
  Chaudhuri's minimum can then be taken directly on the code arrays.
* **crash masks** -- mirroring :class:`repro.failures.crash.RandomCrashes`'
  shape: with probability 0.2 the run is failure-free, otherwise up to
  ``t`` victims crash either *before starting* (``pre_crash``) or
  *mid-broadcast* after ``send_point`` sends (``send_victim``).  Send
  points land inside the first ``n``-send broadcast, so every planned
  crash actually fires in the modelled protocols.
* **arrival keys** -- ``arrival_keys[b, p, o]`` orders first-phase
  messages from origin ``o`` at receiver ``p``; ``accept_keys[b, p, o]``
  orders second-phase (echo) message *groups* by origin.  The decision
  kernels and the scalar replay scheduler consume the same keys, which
  is what makes batch-vs-scalar comparison exact run-by-run.

Every array is a pure function of ``(config.seed, run_index)`` via
:mod:`repro.batch.prng`, so plans are bit-identical across batch sizes
and chunk boundaries.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

import numpy as np

from repro.core.values import DEFAULT, Value
from repro.harness.inputs import INPUT_PATTERNS
from repro.batch import prng

__all__ = [
    "DEFAULT_CODE",
    "NO_DECISION",
    "BatchPlan",
    "build_plan",
    "decode_code",
]

#: Integer code of the DEFAULT decision sentinel.  Larger than every
#: input code, mirroring ``order_key``'s "sentinels sort last" rule.
DEFAULT_CODE = 1 << 20

#: Decision-array slot for "has not decided".
NO_DECISION = -1

#: Offset of the distinguished fake inputs faulty processes get under
#: the ``unanimous-correct`` pattern ("w" values sort after "v" values,
#: matching the code order).
_FAKE_BASE = 1000

_NONE_PROBABILITY = 0.2  # same failure-free mass as RandomCrashes


@dataclasses.dataclass(frozen=True)
class BatchPlan:
    """The fully sampled adversary for one batch of runs."""

    spec_name: str
    n: int
    k: int
    t: int
    seed: int
    patterns: Tuple[str, ...]
    indices: np.ndarray  # [B] int64: global run indices
    run_seeds: np.ndarray  # [B] uint64: derive_seed(seed, index)
    pattern_index: np.ndarray  # [B] int64: index into ``patterns``
    input_codes: np.ndarray  # [B, n] int64
    victim: np.ndarray  # [B, n] bool: planned crash victims
    pre_crash: np.ndarray  # [B, n] bool: crash before starting
    send_victim: np.ndarray  # [B, n] bool: crash mid-broadcast
    send_point: np.ndarray  # [B, n] int64: sends before the crash
    arrival_keys: np.ndarray  # [B, n, n] uint64: [receiver, origin]
    accept_keys: np.ndarray  # [B, n, n] uint64: [receiver, origin]

    @property
    def batch_size(self) -> int:
        return int(self.indices.shape[0])


def decode_code(pattern: str, code: int) -> Value:
    """The concrete value a plan's integer code stands for."""
    code = int(code)
    if code == DEFAULT_CODE:
        return DEFAULT
    if pattern == "two-valued":
        return "alpha" if code == 0 else "beta"
    if code >= _FAKE_BASE:
        return f"w{code - _FAKE_BASE:03d}"
    return f"v{code:03d}"


def _input_codes(
    patterns: Tuple[str, ...],
    pattern_index: np.ndarray,
    seeds: np.ndarray,
    n: int,
    victim: np.ndarray,
) -> np.ndarray:
    """Integer-coded inputs per run, shaped by the run's pattern."""
    batch = len(seeds)
    draws = prng.stream_u64(seeds, prng.STREAM_INPUT, (n,))
    codes = np.zeros((batch, n), dtype=np.int64)
    pids = np.arange(n, dtype=np.int64)
    for slot, name in enumerate(patterns):
        rows = pattern_index == slot
        if not bool(rows.any()):
            continue
        if name == "distinct":
            codes[rows] = pids[None, :]
        elif name == "unanimous":
            codes[rows] = (draws[rows, 0] % np.uint64(100)).astype(np.int64)[
                :, None
            ]
        elif name == "unanimous-correct":
            base = (draws[rows, 0] % np.uint64(100)).astype(np.int64)[:, None]
            fake = _FAKE_BASE + pids[None, :]
            codes[rows] = np.where(victim[rows], fake, base)
        elif name == "two-valued":
            bits = prng.stream_u64(seeds, prng.STREAM_TWOVAL, (n,))
            codes[rows] = (bits[rows] & np.uint64(1)).astype(np.int64)
        elif name == "random":
            pool = max(2, n // 2)
            codes[rows] = (draws[rows] % np.uint64(pool)).astype(np.int64)
        else:  # pragma: no cover - guarded by sweep_unsupported_reason
            raise ValueError(f"batch engine has no input pattern {name!r}")
    return codes


def build_plan(
    spec_name: str,
    n: int,
    k: int,
    t: int,
    seed: int,
    indices: Sequence[int],
    patterns: Sequence[str] = INPUT_PATTERNS,
) -> BatchPlan:
    """Sample the full adversary for runs ``indices`` of a sweep."""
    if not 0 <= t < n:
        raise ValueError(f"batch engine requires 0 <= t < n, got t={t} n={n}")
    if n >= _FAKE_BASE:
        raise ValueError(f"batch engine supports n < {_FAKE_BASE}, got {n}")
    patterns = tuple(patterns)
    index_arr = np.asarray(list(indices), dtype=np.int64)
    seeds = prng.run_seeds(seed, index_arr)
    batch = len(index_arr)
    pattern_index = index_arr % len(patterns)

    # Crash shape mirrors RandomCrashes: P(failure-free) = 0.2, else
    # uniform count in [0, t], victims uniform, kind 50/50 pre/send.
    frac = prng.u01(prng.stream_u64(seeds, prng.STREAM_CRASH_FRAC))
    count_draw = prng.stream_u64(seeds, prng.STREAM_CRASH_COUNT)
    count = np.where(
        frac >= _NONE_PROBABILITY,
        (count_draw % np.uint64(t + 1)).astype(np.int64),
        0,
    )
    victim_keys = prng.stream_u64(seeds, prng.STREAM_VICTIM_KEY, (n,))
    order = np.argsort(victim_keys, axis=1, kind="stable")
    rank = np.empty((batch, n), dtype=np.int64)
    np.put_along_axis(
        rank, order, np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n)),
        axis=1,
    )
    victim = rank < count[:, None]
    kind = prng.stream_u64(seeds, prng.STREAM_KIND, (n,)) & np.uint64(1)
    pre_crash = victim & (kind == 0)
    send_victim = victim & (kind == 1)
    send_point = (
        prng.stream_u64(seeds, prng.STREAM_SEND_POINT, (n,)) % np.uint64(n)
    ).astype(np.int64)

    return BatchPlan(
        spec_name=spec_name,
        n=n,
        k=k,
        t=t,
        seed=seed,
        patterns=patterns,
        indices=index_arr,
        run_seeds=seeds,
        pattern_index=pattern_index,
        input_codes=_input_codes(patterns, pattern_index, seeds, n, victim),
        victim=victim,
        pre_crash=pre_crash,
        send_victim=send_victim,
        send_point=send_point,
        arrival_keys=prng.stream_u64(seeds, prng.STREAM_ARRIVAL, (n, n)),
        accept_keys=prng.stream_u64(seeds, prng.STREAM_ACCEPT, (n, n)),
    )


def concat_plans(plans: Sequence[BatchPlan]) -> BatchPlan:
    """Concatenate chunked plans back into one batch-axis plan."""
    if len(plans) == 1:
        return plans[0]
    first = plans[0]
    merged = {
        field.name: getattr(first, field.name)
        for field in dataclasses.fields(BatchPlan)
    }
    for name in (
        "indices", "run_seeds", "pattern_index", "input_codes", "victim",
        "pre_crash", "send_victim", "send_point", "arrival_keys",
        "accept_keys",
    ):
        merged[name] = np.concatenate([getattr(p, name) for p in plans])
    return BatchPlan(**merged)
