"""Closed-form vectorized decision kernels and condition checking.

Under the plan's scheduler (starts first, then first-phase messages per
receiver in arrival-key order, then echo messages grouped by
acceptance-key order -- see :class:`repro.batch.replay.PlannedScheduler`)
every modelled protocol's decision is a *closed-form* function of the
plan arrays.  This module evaluates those functions for the whole batch
at once:

* **A**  -- decide the common value of the first ``n - t`` arrivals if
  unanimous, else DEFAULT.
* **B**  -- at the first moment ``>= n - t`` values including one's own
  arrived, decide own value if ``>= n - 2t`` of them match it, else
  DEFAULT.
* **MIN** (Chaudhuri) -- decide the minimum of the first ``n - t``
  arrivals.
* **C** (ℓ-echo) -- every process INIT-broadcasts; correct processes
  echo; an origin is *accepted* once its echo tally reaches
  :func:`repro.protocols.echo.accept_threshold`.  At the first
  acceptance where ``>= n - t`` origins (own included) are accepted,
  decide own value if ``>= n - 2t`` accepted values match it, else
  DEFAULT.
* **D**  -- broadcasters (``pid <= t``) decide their own value at start;
  everyone echoes each received broadcast value; non-broadcasters decide
  the value of the first origin whose echo tally reaches ``n - t``.
* **TRIVIAL** -- decide own input at start.

Crash semantics follow the scalar kernel exactly: a ``pre_crash``
victim never runs; a ``send_victim`` delivers its first
``send_point`` sends of its first broadcast and halts at the end of
that handler (so a Protocol D broadcaster still decides first, and a
Protocol D non-broadcaster victim partially echoes the first value it
received).  The verdicts (termination / agreement / validity) replicate
:mod:`repro.core.validity` over the code arrays.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.harness.sweep import SweepConfig, SweepStats, Violation
from repro.protocols.base import ProtocolSpec
from repro.protocols.echo import accept_threshold
from repro.protocols.protocol_c import best_ell
from repro.batch.plan import (
    DEFAULT_CODE,
    NO_DECISION,
    BatchPlan,
    build_plan,
    concat_plans,
)

__all__ = [
    "BATCH_FAMILIES",
    "FALLBACK_REASON_CODES",
    "BatchResult",
    "UnsupportedReason",
    "batch_run",
    "batch_sweep",
    "batch_vs_replay",
    "supports_point",
    "supports_spec",
    "sweep_unsupported_reason",
]

#: Registered spec name -> decision-kernel family.  The Byzantine-model
#: entries are modelled under the crash-restricted sub-adversary
#: (crashes are a special case of Byzantine behaviour); sweeps over
#: Byzantine specs fall back to the scalar engine, but the differential
#: check exercises these kernels against scalar replays.
BATCH_FAMILIES: Dict[str, str] = {
    "protocol-a@mp-cr": "A",
    "protocol-a-wv2@mp-cr": "A",
    "protocol-a@mp-byz": "A",
    "protocol-b@mp-cr": "B",
    "chaudhuri@mp-cr": "MIN",
    "trivial@mp-cr": "TRIVIAL",
    "trivial@mp-byz": "TRIVIAL",
    "protocol-c@mp-byz": "C",
    "protocol-c-rv2@mp-byz": "C",
    "protocol-d@mp-byz": "D",
}

_MAXKEY = np.uint64(0xFFFFFFFFFFFFFFFF)
_UNDECIDED_SORT = np.int64(1) << np.int64(40)

#: Element budget per chunk for the [B, n, n] key arrays (~64 MB of
#: uint64 per array at the default).
_CHUNK_ELEMENTS = 4_000_000


def supports_spec(spec: ProtocolSpec) -> bool:
    """Whether the batch engine has a decision kernel for ``spec``."""
    return spec.name in BATCH_FAMILIES


def supports_point(spec: ProtocolSpec, n: int, k: int, t: int) -> bool:
    """Whether ``spec`` is batch-modelable at this exact point."""
    if not supports_spec(spec) or not 0 <= t < n or n >= 1000:
        return False
    if BATCH_FAMILIES[spec.name] == "C" and best_ell(n, k, t) is None:
        return False  # scalar make() raises outside PROTOCOL C's region
    return True


class UnsupportedReason(str):
    """A human-readable fallback reason carrying a machine-readable code.

    Behaves exactly like the message string it always was (callers
    embed it in ``SweepStats.execution`` and tests match substrings),
    while ``.code`` gives automation -- the CLI echo, the fallback
    test-matrix, result-file consumers -- a stable identifier that does
    not drift with wording.
    """

    code: str

    def __new__(cls, code: str, message: str) -> "UnsupportedReason":
        obj = super().__new__(cls, message)
        obj.code = code
        return obj


#: Every scalar-fallback reason code :func:`sweep_unsupported_reason`
#: can emit (the closed vocabulary the fallback tests assert against).
FALLBACK_REASON_CODES = (
    "sm-spec",
    "no-kernel",
    "byzantine-model",
    "unsupported-point",
    "verify-oracles",
    "unknown-patterns",
)


def sweep_unsupported_reason(
    spec: ProtocolSpec, n: int, k: int, t: int, config: SweepConfig
) -> Optional[UnsupportedReason]:
    """Why ``sweep_spec`` cannot use the batch engine here (None = it can).

    Sweeps additionally require the crash fault model (Byzantine sweeps
    draw from a behaviour pool the engine does not model) and no oracle
    verification (oracles consume real scalar executions).  The return
    value reads as the human-facing message; its ``.code`` attribute is
    the stable machine-readable identifier (one of
    :data:`FALLBACK_REASON_CODES`).
    """
    if spec.is_shared_memory:
        return UnsupportedReason("sm-spec", "shared-memory spec")
    if not supports_spec(spec):
        return UnsupportedReason(
            "no-kernel", f"no batch kernel for {spec.name!r}"
        )
    if not spec.model.is_crash:
        return UnsupportedReason(
            "byzantine-model",
            "Byzantine-model sweep (batch models crash faults only)",
        )
    if not supports_point(spec, n, k, t):
        return UnsupportedReason(
            "unsupported-point",
            f"point (n={n}, k={k}, t={t}) outside batch support",
        )
    if config.verify:
        return UnsupportedReason(
            "verify-oracles",
            "--verify runs the oracle stack over scalar executions",
        )
    unknown = [p for p in config.input_patterns if p not in
               ("distinct", "unanimous", "unanimous-correct", "two-valued",
                "random")]
    if unknown:
        return UnsupportedReason(
            "unknown-patterns", f"unknown input patterns {unknown}"
        )
    return None


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Per-run outcomes and verdicts of one batch execution."""

    spec: ProtocolSpec
    plan: BatchPlan
    decisions: np.ndarray  # [B, n] int64 code, NO_DECISION if undecided
    faulty: np.ndarray  # [B, n] bool: actually crashed
    distinct: np.ndarray  # [B] int64: distinct correct decisions
    term_ok: np.ndarray  # [B] bool
    agree_ok: np.ndarray  # [B] bool
    valid_ok: np.ndarray  # [B] bool

    @property
    def batch_size(self) -> int:
        return self.plan.batch_size

    def run_ok(self) -> np.ndarray:
        return self.term_ok & self.agree_ok & self.valid_ok

    def stats(self) -> SweepStats:
        """Aggregate into the same :class:`SweepStats` shape sweeps emit."""
        plan = self.plan
        stats = SweepStats(
            spec_name=plan.spec_name, n=plan.n, k=plan.k, t=plan.t,
            engine="batch",
            execution=f"vectorized batch of {self.batch_size} runs",
        )
        stats.runs = self.batch_size
        counts = np.bincount(self.distinct)
        stats.decisions_histogram = {
            int(value): int(count)
            for value, count in enumerate(counts)
            if count
        }
        bad = ~self.run_ok()
        for i in np.nonzero(bad)[0]:  # repro: noqa[BATCH001] -- cold reporting path over violating runs only
            conditions: List[str] = []
            details: List[str] = []
            if not self.term_ok[i]:
                undecided = sorted(
                    int(p) for p in np.nonzero(
                        ~self.faulty[i] & (self.decisions[i] == NO_DECISION)
                    )[0]
                )
                conditions.append("termination")
                details.append(
                    f"termination VIOLATED: undecided correct processes: "
                    f"{undecided}"
                )
            if not self.agree_ok[i]:
                conditions.append("agreement")
                details.append(
                    f"agreement VIOLATED: {int(self.distinct[i])} distinct "
                    f"correct decisions > k={plan.k}"
                )
            if not self.valid_ok[i]:
                conditions.append("validity")
                details.append(f"validity ({self.spec.validity}) VIOLATED")
            stats.violations.append(
                Violation(
                    run_index=int(plan.indices[i]),
                    pattern=plan.patterns[int(plan.pattern_index[i])],
                    conditions=tuple(conditions),
                    detail="; ".join(details),
                )
            )
        return stats


def _reach(plan: BatchPlan) -> np.ndarray:
    """``reach[b, o, q]``: origin ``o``'s first broadcast reaches ``q``.

    Broadcasts send to destinations ``0..n-1`` in order, so a
    ``send_victim`` with send point ``s`` reaches exactly ``q < s``.
    """
    n = plan.n
    dst = np.arange(n, dtype=np.int64)[None, None, :]
    partial = dst < plan.send_point[:, :, None]
    full = np.broadcast_to(True, partial.shape)
    reach = np.where(plan.send_victim[:, :, None], partial, full)
    return reach & ~plan.pre_crash[:, :, None]


def _arrival_order(
    plan: BatchPlan, reach_t: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Masked arrival keys and per-receiver sender order (reached first)."""
    keys = np.where(reach_t, plan.arrival_keys, _MAXKEY)
    order = np.argsort(keys, axis=2, kind="stable")
    return keys, order


def _prefix_codes(plan: BatchPlan, order: np.ndarray) -> np.ndarray:
    """Input codes of the first ``n - t`` arrivals per receiver."""
    batch, n = plan.input_codes.shape
    codes = np.broadcast_to(plan.input_codes[:, None, :], (batch, n, n))
    return np.take_along_axis(codes, order, axis=2)[:, :, : n - plan.t]


def _decide_a(plan: BatchPlan) -> Tuple[np.ndarray, np.ndarray]:
    reach_t = _reach(plan).transpose(0, 2, 1)
    _, order = _arrival_order(plan, reach_t)
    prefix = _prefix_codes(plan, order)
    unanimous = prefix.min(axis=2) == prefix.max(axis=2)
    decided = np.where(unanimous, prefix[:, :, 0], DEFAULT_CODE)
    decisions = np.where(plan.victim, NO_DECISION, decided)
    return decisions, plan.victim.copy()


def _decide_min(plan: BatchPlan) -> Tuple[np.ndarray, np.ndarray]:
    reach_t = _reach(plan).transpose(0, 2, 1)
    _, order = _arrival_order(plan, reach_t)
    decided = _prefix_codes(plan, order).min(axis=2)
    decisions = np.where(plan.victim, NO_DECISION, decided)
    return decisions, plan.victim.copy()


def _matching_prefix(
    match: np.ndarray, order: np.ndarray, upto: np.ndarray
) -> np.ndarray:
    """How many of the first ``upto`` senders (in ``order``) match."""
    sorted_match = np.take_along_axis(match, order, axis=2)
    cumulative = np.cumsum(sorted_match, axis=2, dtype=np.int64)
    return np.take_along_axis(
        cumulative, (upto - 1)[:, :, None], axis=2
    )[:, :, 0]


def _decide_b(plan: BatchPlan) -> Tuple[np.ndarray, np.ndarray]:
    n, t = plan.n, plan.t
    reach_t = _reach(plan).transpose(0, 2, 1)
    keys, order = _arrival_order(plan, reach_t)
    diag = np.arange(n)
    own_key = plan.arrival_keys[:, diag, diag]
    rank_own = (keys < own_key[:, :, None]).sum(axis=2)
    upto = np.maximum(n - t, rank_own + 1)
    match = (
        plan.input_codes[:, None, :] == plan.input_codes[:, :, None]
    ) & reach_t
    matching = _matching_prefix(match, order, upto)
    decided = np.where(matching >= n - 2 * t, plan.input_codes, DEFAULT_CODE)
    decisions = np.where(plan.victim, NO_DECISION, decided)
    return decisions, plan.victim.copy()


def _decide_trivial(plan: BatchPlan) -> Tuple[np.ndarray, np.ndarray]:
    # Send-crash points never fire (the trivial protocol sends nothing),
    # so only the pre-start victims actually crash.
    decisions = np.where(plan.pre_crash, NO_DECISION, plan.input_codes)
    return decisions, plan.pre_crash.copy()


def _decide_c(plan: BatchPlan) -> Tuple[np.ndarray, np.ndarray]:
    n, t = plan.n, plan.t
    ell = best_ell(n, plan.k, t)
    if ell is None:
        raise ValueError(
            f"(n={n}, k={plan.k}, t={t}) is outside PROTOCOL C's solvable "
            f"region"
        )
    threshold = accept_threshold(n, t, ell)
    reach = _reach(plan)
    # Every victim crashes during its own start broadcast, so only
    # correct processes echo; the echo tally of origin o is therefore
    # receiver-independent: the correct processes that received o's INIT.
    votes = (reach & ~plan.victim[:, None, :]).sum(axis=2)
    accepted = votes >= threshold  # [B, origin]
    acc_keys = np.where(accepted[:, None, :], plan.accept_keys, _MAXKEY)
    acc_order = np.argsort(acc_keys, axis=2, kind="stable")
    total = accepted.sum(axis=1)
    diag = np.arange(n)
    own_key = plan.accept_keys[:, diag, diag]
    pos_own = (acc_keys < own_key[:, :, None]).sum(axis=2)
    can_decide = accepted & (total[:, None] >= n - t)
    upto = np.maximum(n - t, pos_own + 1)
    match = (
        plan.input_codes[:, None, :] == plan.input_codes[:, :, None]
    ) & accepted[:, None, :]
    matching = _matching_prefix(match, acc_order, np.maximum(upto, 1))
    decided = np.where(matching >= n - 2 * t, plan.input_codes, DEFAULT_CODE)
    decisions = np.where(
        ~plan.victim & can_decide, decided, NO_DECISION
    )
    return decisions, plan.victim.copy()


def _decide_d(plan: BatchPlan) -> Tuple[np.ndarray, np.ndarray]:
    n, t = plan.n, plan.t
    batch = plan.batch_size
    broadcasters = t + 1  # pids 0..t broadcast and decide at start
    reach = _reach(plan)[:, :broadcasters, :]  # [b, o, q]
    correct = ~plan.victim
    # Correct processes echo every broadcast value they receive; the
    # echoes reach everyone, so this tally is receiver-independent.
    base = (reach & correct[:, None, :]).sum(axis=2)  # [b, o]
    # A send-crash non-broadcaster victim q crashes while echoing the
    # *first* broadcast value it received (first in arrival-key order);
    # destinations p < send_point[q] still get that echo.
    val_keys = np.where(
        reach.transpose(0, 2, 1),
        plan.arrival_keys[:, :, :broadcasters],
        _MAXKEY,
    )  # [b, q, o]
    first_origin = np.argmin(val_keys, axis=2)  # [b, q]
    got_val = val_keys.min(axis=2) != _MAXKEY
    echoing_victim = (
        plan.send_victim
        & (np.arange(n)[None, :] >= broadcasters)
        & got_val
    )  # [b, q]
    origin_hit = (
        np.arange(broadcasters)[None, None, :] == first_origin[:, :, None]
    ) & echoing_victim[:, :, None]  # [b, q, o]
    delivered = (
        np.arange(n)[None, :, None] < plan.send_point[:, None, :]
    ) & echoing_victim[:, None, :]  # [b, p, q]
    victim_votes = np.einsum(
        "bpq,bqo->bpo",
        delivered.astype(np.int64),
        origin_hit.astype(np.int64),
    )
    tally = base[:, None, :] + victim_votes  # [b, p, o]
    reached = tally >= n - t
    acc_keys = np.where(
        reached, plan.accept_keys[:, :, :broadcasters], _MAXKEY
    )
    first_accepted = np.argmin(acc_keys, axis=2)  # [b, p]
    has_accepted = acc_keys.min(axis=2) != _MAXKEY
    echo_decision = np.take_along_axis(
        plan.input_codes, first_accepted, axis=1
    )
    is_broadcaster = np.arange(n)[None, :] < broadcasters
    decisions = np.full((batch, n), NO_DECISION, dtype=np.int64)
    # Broadcasters decide their own value at start unless they never
    # start; a send-crash broadcaster still decides (the decide runs at
    # the end of its start handler, after the suppressed sends).
    bcast_decides = is_broadcaster & ~plan.pre_crash
    decisions = np.where(bcast_decides, plan.input_codes, decisions)
    nb_decides = ~is_broadcaster & ~plan.victim & has_accepted
    decisions = np.where(nb_decides, echo_decision, decisions)
    return decisions, plan.victim.copy()


_KERNELS = {
    "A": _decide_a,
    "B": _decide_b,
    "MIN": _decide_min,
    "C": _decide_c,
    "D": _decide_d,
    "TRIVIAL": _decide_trivial,
}


def _distinct_correct(decisions: np.ndarray, faulty: np.ndarray) -> np.ndarray:
    """Distinct decision values over correct processes, per run."""
    masked = np.where(
        ~faulty & (decisions != NO_DECISION), decisions, _UNDECIDED_SORT
    )
    ordered = np.sort(masked, axis=1)
    real = ordered < _UNDECIDED_SORT
    fresh = np.ones_like(real)
    fresh[:, 1:] = ordered[:, 1:] != ordered[:, :-1]
    return (real & fresh).sum(axis=1)


def _validity_ok(
    validity: str,
    plan: BatchPlan,
    decisions: np.ndarray,
    faulty: np.ndarray,
) -> np.ndarray:
    """Vectorized replica of the checkers in :mod:`repro.core.validity`."""
    codes = plan.input_codes
    correct = ~faulty
    decided = decisions != NO_DECISION
    equals_input = decisions[:, :, None] == codes[:, None, :]  # [b, p, q]

    def member(mask_q: np.ndarray, who: np.ndarray) -> np.ndarray:
        allowed = (equals_input & mask_q[:, None, :]).any(axis=2)
        return (~who | allowed).all(axis=1)

    def unanimity(mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        lo = np.where(mask, codes, np.int64(np.iinfo(np.int64).max)).min(axis=1)
        hi = np.where(mask, codes, np.int64(-1)).max(axis=1)
        return lo == hi, lo

    everyone = np.ones_like(correct)
    if validity == "SV1":
        return member(correct, correct & decided)
    if validity == "RV1":
        return member(everyone, correct & decided)
    if validity == "SV2":
        unanimous, value = unanimity(correct)
        agrees = (~(correct & decided) | (decisions == value[:, None])).all(
            axis=1
        )
        return ~unanimous | agrees
    if validity == "RV2":
        unanimous, value = unanimity(everyone)
        agrees = (~(correct & decided) | (decisions == value[:, None])).all(
            axis=1
        )
        return ~unanimous | agrees
    failure_free = ~faulty.any(axis=1)
    if validity == "WV1":
        allowed = (equals_input.any(axis=2) | ~decided).all(axis=1)
        return ~failure_free | allowed
    if validity == "WV2":
        unanimous, value = unanimity(everyone)
        agrees = (~decided | (decisions == value[:, None])).all(axis=1)
        return ~(failure_free & unanimous) | agrees
    raise ValueError(f"batch engine has no validity checker for {validity!r}")


def _solve_chunk(spec: ProtocolSpec, plan: BatchPlan) -> BatchResult:
    decisions, faulty = _KERNELS[BATCH_FAMILIES[spec.name]](plan)
    correct = ~faulty
    decided = decisions != NO_DECISION
    distinct = _distinct_correct(decisions, faulty)
    return BatchResult(
        spec=spec,
        plan=plan,
        decisions=decisions,
        faulty=faulty,
        distinct=distinct,
        term_ok=(~correct | decided).all(axis=1),
        agree_ok=distinct <= plan.k,
        valid_ok=_validity_ok(spec.validity, plan, decisions, faulty),
    )


def batch_run(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
    indices: Optional[Tuple[int, ...]] = None,
) -> BatchResult:
    """Execute a batch of planned runs entirely as array operations.

    ``indices`` selects which global run indices to execute (default:
    ``range(config.runs)``).  Runs are planned and solved in chunks
    bounding the ``[B, n, n]`` working-set size; chunking never changes
    results because every draw is a pure function of the run seed.
    """
    config = config or SweepConfig()
    if not supports_point(spec, n, k, t):
        raise ValueError(
            f"batch engine does not support {spec.name} at "
            f"(n={n}, k={k}, t={t})"
        )
    run_indices = tuple(indices) if indices is not None else tuple(
        range(config.runs)
    )
    chunk = max(1, _CHUNK_ELEMENTS // max(1, n * n))
    parts: List[BatchResult] = []
    for lo in range(0, len(run_indices), chunk):
        plan = build_plan(
            spec.name, n, k, t, config.seed, run_indices[lo:lo + chunk],
            patterns=tuple(config.input_patterns),
        )
        parts.append(_solve_chunk(spec, plan))
    if len(parts) == 1:
        return parts[0]
    return BatchResult(
        spec=spec,
        plan=concat_plans([part.plan for part in parts]),
        decisions=np.concatenate([part.decisions for part in parts]),
        faulty=np.concatenate([part.faulty for part in parts]),
        distinct=np.concatenate([part.distinct for part in parts]),
        term_ok=np.concatenate([part.term_ok for part in parts]),
        agree_ok=np.concatenate([part.agree_ok for part in parts]),
        valid_ok=np.concatenate([part.valid_ok for part in parts]),
    )


def batch_sweep(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
) -> SweepStats:
    """Sweep entry point: run the batch engine and aggregate stats."""
    return batch_run(spec, n, k, t, config).stats()


def batch_vs_replay(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
) -> Tuple[SweepStats, SweepStats, int, List[str]]:
    """Differential bridge: the batch result vs scalar replays of its plan.

    Replays every planned run through the scalar kernel under the plan's
    scheduler and compares decisions, crash sets, and verdicts run by
    run.  Returns ``(batch_stats, replay_stats, mismatched_runs,
    mismatch_details)``; a correct engine yields 0 mismatches and
    identical histogram/violation aggregates.
    """
    from repro.batch.replay import replay_stats

    config = config or SweepConfig()
    result = batch_run(spec, n, k, t, config)
    mismatches: List[str] = []
    scalar_stats = replay_stats(
        result, max_ticks=config.max_ticks, mismatches=mismatches
    )
    return result.stats(), scalar_stats, len(mismatches), mismatches
