"""Scalar replay of planned batch runs: the differential bridge.

The batch engine never executes protocol code -- it evaluates
closed-form decision functions over the plan arrays.  This module
replays any single planned run through the real scalar
:class:`~repro.runtime.kernel.MPKernel` under a scheduler that realizes
the plan's message ordering, so the closed forms can be checked
run-by-run against actual protocol executions (:func:`compare_run`,
driven by :func:`repro.batch.engine.batch_vs_replay` and registered in
:mod:`repro.verify.differential`).

:class:`PlannedScheduler` realizes the plan as a priority order over
pending kernel events:

1. all ``Start`` events, in pid order (so every planned crash fires and
   every first-phase broadcast is made before any delivery);
2. first-phase deliveries (``*-VAL`` / ``EC-INIT``), per receiver in
   ``arrival_keys[receiver, sender]`` order;
3. echo deliveries (``EC-ECHO`` / ``D-ECHO``), grouped per receiver by
   origin in ``accept_keys[receiver, origin]`` order.

Echoes are only *sent* while phase-1 events execute and priorities are
compared globally, so every phase-1 delivery precedes every echo
delivery -- exactly the lock-step semantics the decision kernels assume.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.runner import ExperimentReport, run_spec
from repro.harness.sweep import SweepStats, Violation
from repro.net.schedulers import Scheduler
from repro.protocols.base import get_spec
from repro.runtime.events import Delivery, Start
from repro.runtime.kernel import KernelLimitError
from repro.runtime.traces import TraceMode
from repro.batch.plan import NO_DECISION, BatchPlan, decode_code

__all__ = [
    "ECHO_TAGS",
    "PHASE0_TAGS",
    "PlannedScheduler",
    "compare_run",
    "replay_run",
    "replay_stats",
]

#: First-phase payload tags of the modelled protocols (value floods and
#: ℓ-echo INITs): ordered by ``arrival_keys``.
PHASE0_TAGS = frozenset({"A-VAL", "B-VAL", "CH-VAL", "EC-INIT", "D-VAL"})

#: Echo payload tags (``payload[1]`` is the origin): grouped per origin
#: and ordered by ``accept_keys``.
ECHO_TAGS = frozenset({"EC-ECHO", "D-ECHO"})

_DEFAULT_MAX_TICKS = 300_000

_Priority = Tuple[int, int, int, int, int]


class PlannedScheduler(Scheduler):
    """Deliver events in the priority order of a batch plan's keys.

    Args:
        arrival: ``[receiver][origin]`` first-phase ordering keys.
        accept: ``[receiver][origin]`` echo-group ordering keys.
    """

    def __init__(
        self, arrival: Sequence[Sequence[int]], accept: Sequence[Sequence[int]]
    ) -> None:
        self._arrival = [[int(key) for key in row] for row in arrival]
        self._accept = [[int(key) for key in row] for row in accept]
        self._heap: List[_Priority] = []
        self._next = 0  # all seqs < _next are already in the heap

    def _priority(self, seq: int, event) -> _Priority:
        if isinstance(event, Start):
            return (0, event.pid, 0, 0, seq)
        if isinstance(event, Delivery):
            payload = event.payload
            tag = (
                payload[0]
                if isinstance(payload, tuple) and payload
                else None
            )
            if tag in PHASE0_TAGS:
                key = self._arrival[event.receiver][event.sender]
                return (1, event.receiver, key, 0, seq)
            if tag in ECHO_TAGS:
                origin = payload[1]
                if isinstance(origin, int) and 0 <= origin < len(self._accept):
                    return (
                        2,
                        event.receiver,
                        self._accept[event.receiver][origin],
                        self._arrival[event.receiver][event.sender],
                        seq,
                    )
            return (3, event.receiver, seq, 0, seq)
        return (3, 0, seq, 0, seq)

    def pick(self, kernel) -> Optional[int]:
        pending = kernel.pending
        if not pending:
            return None
        # New events are appended at the dict's end with increasing seq,
        # so scanning from the back up to the first already-seen seq
        # discovers exactly the events created since the last pick.
        fresh: List[int] = []
        for seq in reversed(pending):
            if seq < self._next:
                break
            fresh.append(seq)
        if fresh:
            self._next = fresh[0] + 1
            for seq in reversed(fresh):
                heapq.heappush(self._heap, self._priority(seq, pending[seq]))
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[-1] in pending:
                return entry[-1]
        return None


def _crash_plan(plan: BatchPlan, i: int) -> Optional[CrashPlan]:
    points = {}
    for pid in range(plan.n):
        if plan.pre_crash[i, pid]:
            points[pid] = CrashPoint(after_steps=0)
        elif plan.send_victim[i, pid]:
            points[pid] = CrashPoint(after_sends=int(plan.send_point[i, pid]))
    return CrashPlan(points) if points else None


def replay_run(
    plan: BatchPlan, i: int, max_ticks: int = _DEFAULT_MAX_TICKS
) -> ExperimentReport:
    """Execute planned run ``i`` through the scalar kernel."""
    pattern = plan.patterns[int(plan.pattern_index[i])]
    inputs = [
        decode_code(pattern, int(code)) for code in plan.input_codes[i]
    ]
    return run_spec(
        get_spec(plan.spec_name),
        plan.n,
        plan.k,
        plan.t,
        inputs,
        scheduler=PlannedScheduler(
            plan.arrival_keys[i].tolist(), plan.accept_keys[i].tolist()
        ),
        crash_adversary=_crash_plan(plan, i),
        max_ticks=max_ticks,
        trace_mode=TraceMode.COUNTERS,
    )


def compare_run(
    result,  # BatchResult; untyped to avoid an import cycle with engine
    i: int,
    report: Optional[ExperimentReport] = None,
) -> Optional[str]:
    """Check batch prediction ``i`` against its scalar replay.

    Compares decisions (decoded to concrete values), the realized crash
    set, the number of distinct correct decisions, and all three
    condition verdicts.  Returns ``None`` on agreement, else a
    description of every discrepancy.
    """
    plan = result.plan
    if report is None:
        report = replay_run(plan, i)
    pattern = plan.patterns[int(plan.pattern_index[i])]
    outcome = report.outcome
    problems: List[str] = []
    predicted_decisions = {
        pid: decode_code(pattern, int(result.decisions[i, pid]))
        for pid in range(plan.n)
        if int(result.decisions[i, pid]) != NO_DECISION
    }
    if dict(outcome.decisions) != predicted_decisions:
        problems.append(
            f"decisions: batch {predicted_decisions!r} != scalar "
            f"{dict(outcome.decisions)!r}"
        )
    predicted_faulty = {int(p) for p in np.nonzero(result.faulty[i])[0]}
    if set(outcome.faulty) != predicted_faulty:
        problems.append(
            f"faulty: batch {sorted(predicted_faulty)} != scalar "
            f"{sorted(outcome.faulty)}"
        )
    distinct = len(outcome.correct_decision_values())
    if distinct != int(result.distinct[i]):
        problems.append(
            f"distinct decisions: batch {int(result.distinct[i])} != "
            f"scalar {distinct}"
        )
    predicted_verdicts = {
        "termination": bool(result.term_ok[i]),
        "agreement": bool(result.agree_ok[i]),
        "validity": bool(result.valid_ok[i]),
    }
    for name, predicted in predicted_verdicts.items():
        if bool(report.verdicts[name]) != predicted:
            problems.append(
                f"{name}: batch {predicted} != scalar "
                f"{bool(report.verdicts[name])}"
            )
    if not problems:
        return None
    return f"run {int(plan.indices[i])}: " + "; ".join(problems)


def replay_stats(
    result,  # BatchResult
    max_ticks: int = _DEFAULT_MAX_TICKS,
    mismatches: Optional[List[str]] = None,
) -> SweepStats:
    """Replay every planned run and aggregate scalar-side sweep stats.

    When ``mismatches`` is given, each run's replay is also compared
    against the batch prediction and discrepancy descriptions are
    appended to it (the replays are shared between the two purposes).
    """
    plan = result.plan
    stats = SweepStats(
        spec_name=plan.spec_name, n=plan.n, k=plan.k, t=plan.t,
        engine="scalar",
        execution=f"scalar replay of a {result.batch_size}-run batch plan",
    )
    for i in range(result.batch_size):
        index = int(plan.indices[i])
        pattern = plan.patterns[int(plan.pattern_index[i])]
        stats.runs += 1
        try:
            report = replay_run(plan, i, max_ticks=max_ticks)
        except KernelLimitError as error:
            stats.violations.append(
                Violation(index, pattern, ("termination",), str(error))
            )
            if mismatches is not None:
                mismatches.append(f"run {index}: replay hit the tick budget")
            continue
        distinct = len(report.outcome.correct_decision_values())
        stats.decisions_histogram[distinct] = (
            stats.decisions_histogram.get(distinct, 0) + 1
        )
        if not report.ok:
            violated = report.violated()
            stats.violations.append(
                Violation(
                    index,
                    pattern,
                    tuple(violated),
                    "; ".join(str(v) for v in violated.values()),
                )
            )
        if mismatches is not None:
            problem = compare_run(result, i, report=report)
            if problem is not None:
                mismatches.append(problem)
    return stats
