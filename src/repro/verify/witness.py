"""Replayable witness files: a violation you can hand to someone.

A witness captures everything needed to re-execute one run of a
*registered* protocol deterministically: the spec name, the instance
``(n, k, t)``, the input vector, an optional static crash plan, and the
schedule as a choice sequence (replayed tolerantly via
:class:`repro.verify.shrink.SubsequenceScheduler`, so shrunk schedules
replay exactly).  ``repro verify-run witness.json`` replays it twice,
checks determinism, and runs the oracle stack.

Limitations (v1, documented): Byzantine behaviours are arbitrary Python
objects and are not serialized -- witnesses cover the crash models and
failure-free runs.  An ``outcome``-only witness (no schedule) carries a
bare :class:`~repro.core.problem.Outcome` for oracle re-checking without
replay.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.problem import Outcome, SCProblem
from repro.core.validity import by_code
from repro.core.values import Value, decode_value, encode_value
from repro.failures.crash import CrashPlan, CrashPoint
from repro.runtime.kernel import ExecutionResult
from repro.verify.oracles import (
    Violation,
    check_execution,
    outcome_result,
    safety_violations,
)
from repro.verify.shrink import kernel_factory_for_spec, run_choices

__all__ = [
    "Witness",
    "WitnessReport",
    "load_witness",
    "replay_witness",
    "save_witness",
    "verify_witness",
]

_FORMAT = "repro-witness/1"


@dataclasses.dataclass
class Witness:
    """One serialized, deterministically replayable execution."""

    spec: str
    n: int
    k: int
    t: int
    inputs: Tuple[Value, ...]
    choices: Tuple[int, ...]
    kind: str  # "mp" | "sm"
    crash_points: Dict[int, Dict[str, int]] = dataclasses.field(
        default_factory=dict
    )
    validity: Optional[str] = None  # defaults to the spec's condition
    note: str = ""
    expect: Tuple[str, ...] = ()  # oracle names this witness demonstrates

    def describe(self) -> str:
        crash = (
            f", crashes {sorted(self.crash_points)}" if self.crash_points else ""
        )
        note = f" -- {self.note}" if self.note else ""
        return (
            f"{self.spec} n={self.n} k={self.k} t={self.t}, "
            f"{len(self.choices)} {self.kind} choices{crash}{note}"
        )

    def crash_adversary(self) -> Optional[CrashPlan]:
        if not self.crash_points:
            return None
        return CrashPlan({
            pid: CrashPoint(**point) for pid, point in self.crash_points.items()
        })

    def problem(self) -> SCProblem:
        from repro.protocols.base import get_spec

        code = self.validity or get_spec(self.spec).validity
        return SCProblem(n=self.n, k=self.k, t=self.t, validity=by_code(code))

    def to_json(self) -> str:
        return json.dumps({
            "format": _FORMAT,
            "spec": self.spec,
            "n": self.n,
            "k": self.k,
            "t": self.t,
            "inputs": [encode_value(v) for v in self.inputs],
            "choices": list(self.choices),
            "kind": self.kind,
            "crash_points": {
                str(pid): {k: v for k, v in point.items() if v is not None}
                for pid, point in self.crash_points.items()
            },
            "validity": self.validity,
            "note": self.note,
            "expect": list(self.expect),
        }, indent=2)

    @classmethod
    def from_json(cls, blob: str) -> "Witness":
        data = json.loads(blob)
        if data.get("format") != _FORMAT:
            raise ValueError(
                f"not a {_FORMAT} witness: format={data.get('format')!r}"
            )
        return cls(
            spec=data["spec"],
            n=data["n"],
            k=data["k"],
            t=data["t"],
            inputs=tuple(decode_value(v) for v in data["inputs"]),
            choices=tuple(data["choices"]),
            kind=data["kind"],
            crash_points={
                int(pid): dict(point)
                for pid, point in data.get("crash_points", {}).items()
            },
            validity=data.get("validity"),
            note=data.get("note", ""),
            expect=tuple(data.get("expect", ())),
        )


def crash_points_of(adversary) -> Dict[int, Dict[str, int]]:
    """Extract serializable crash points from a static crash adversary.

    Supports :class:`CrashPlan` and :class:`RandomCrashes` (whose plan
    is precomputed from its seed).  Dynamic adversaries have no static
    representation and raise ``ValueError``.
    """
    from repro.failures.crash import RandomCrashes

    if adversary is None:
        return {}
    if isinstance(adversary, RandomCrashes):
        adversary = adversary._plan
    if isinstance(adversary, CrashPlan):
        out: Dict[int, Dict[str, int]] = {}
        for pid, point in adversary._points.items():
            entry = {}
            if point.after_steps is not None:
                entry["after_steps"] = point.after_steps
            if point.after_sends is not None:
                entry["after_sends"] = point.after_sends
            out[pid] = entry
        return out
    raise ValueError(
        f"cannot serialize crash adversary {type(adversary).__name__}; "
        "witnesses support static crash plans only"
    )


__all__.append("crash_points_of")


def replay_witness(witness: Witness) -> Tuple[ExecutionResult, Tuple[int, ...]]:
    """Re-execute a witness once; returns (result, applied choices)."""
    from repro.protocols.base import get_spec

    spec = get_spec(witness.spec)
    factory, kind = kernel_factory_for_spec(
        spec,
        witness.n,
        witness.k,
        witness.t,
        witness.inputs,
        crash_adversary=witness.crash_adversary(),
    )
    if kind != witness.kind:
        raise ValueError(
            f"witness kind {witness.kind!r} does not match spec model "
            f"({kind!r})"
        )
    return run_choices(factory, witness.choices, kind)


@dataclasses.dataclass
class WitnessReport:
    """Replay + oracle verdicts for one witness."""

    witness: Witness
    result: ExecutionResult
    violations: List[Violation]
    deterministic: bool

    @property
    def demonstrates_expected(self) -> bool:
        """All oracle names the witness claims to break actually fired."""
        fired = {v.oracle for v in self.violations}
        return set(self.witness.expect) <= fired

    def summary(self) -> str:
        det = "replay deterministic" if self.deterministic else (
            "REPLAY DIVERGED"
        )
        if not self.violations:
            return f"clean ({det})"
        lines = "; ".join(str(v) for v in self.violations)
        return f"{len(self.violations)} violation(s) ({det}): {lines}"


def verify_witness(witness: Witness) -> WitnessReport:
    """Replay a witness twice, check determinism, run the oracle stack.

    Safety oracles only when the schedule is truncated (some correct
    process undecided by construction); the full stack otherwise.
    """
    result, applied = replay_witness(witness)
    again, applied_again = replay_witness(witness)
    deterministic = (
        applied == applied_again
        and result.outcome == again.outcome
        and result.ticks == again.ticks
    )
    problem = witness.problem()
    outcome = result.outcome
    undecided = outcome.correct - set(outcome.decisions)
    if undecided:
        # A shrunk/truncated schedule leaves correct processes undecided
        # by construction; flagging termination on it would be noise.
        violations = safety_violations(result, problem)
    else:
        violations = check_execution(result, problem)
    return WitnessReport(
        witness=witness,
        result=result,
        violations=violations,
        deterministic=deterministic,
    )


def exploration_witnesses(
    exploration,
    spec: str,
    inputs: Sequence[Value],
    k: int,
    t: int,
    crash_adversary=None,
    validity: Optional[str] = None,
) -> List[Witness]:
    """One witness per counterexample an exhaustive exploration found.

    The exhaustive explorer (:mod:`repro.harness.exhaustive`) records a
    violating run as its choice path -- event seqs for message passing,
    pids for shared memory.  Under the fast-fork engine nearly every
    step of that path executed on a *restored* kernel, so turning the
    path into a replayable witness is the explorer's soundness check:
    the same choices on a fresh kernel must reproduce the violation.
    :func:`confirm_exploration` performs that check end to end.

    ``expect`` is filled with the oracle names implied by the
    explorer's failure keys (the bare judge's ``"validity"`` key maps
    to the stack's ``"validity:<code>"``).  Termination failures are
    omitted from ``expect``: a choice-list replay is indistinguishable
    from a truncated schedule, on which :func:`verify_witness`
    deliberately skips the termination oracle.

    Dynamic crash adversaries have no serializable form
    (:func:`crash_points_of` raises); explorations under them cannot be
    turned into witnesses.
    """
    from repro.protocols.base import get_spec

    protocol = get_spec(spec)
    code = validity or protocol.validity
    kind = "sm" if protocol.is_shared_memory else "mp"
    crash_points = crash_points_of(crash_adversary)
    witnesses = []
    for path, failures in exploration.violations:
        expect = tuple(sorted(
            f"validity:{code}" if key == "validity" else key
            for key in failures
            if key != "termination"
        ))
        witnesses.append(Witness(
            spec=spec,
            n=len(inputs),
            k=k,
            t=t,
            inputs=tuple(inputs),
            choices=tuple(path),
            kind=kind,
            crash_points=dict(crash_points),
            validity=code,
            note="exhaustive exploration counterexample",
            expect=expect,
        ))
    return witnesses


def confirm_exploration(
    exploration,
    spec: str,
    inputs: Sequence[Value],
    k: int,
    t: int,
    crash_adversary=None,
    validity: Optional[str] = None,
) -> List[WitnessReport]:
    """Replay every explorer counterexample on a fresh kernel.

    This is the explorer's external soundness check: a violation found
    through snapshot/restore forking must survive being re-executed
    from scratch.  Returns one report per recorded violation; raises
    ``ValueError`` if any witness replays non-deterministically or
    fails to demonstrate the oracles the explorer reported -- either
    would mean restored states diverged from real executions.
    """
    reports = []
    broken = []
    for witness in exploration_witnesses(
        exploration, spec, inputs, k, t,
        crash_adversary=crash_adversary, validity=validity,
    ):
        report = verify_witness(witness)
        reports.append(report)
        if not report.deterministic or not report.demonstrates_expected:
            broken.append(report)
    if broken:
        details = "; ".join(
            f"[{report.witness.describe()}] {report.summary()}"
            for report in broken
        )
        raise ValueError(
            f"{len(broken)} exploration witness(es) failed to replay: "
            f"{details}"
        )
    return reports


__all__ += ["confirm_exploration", "exploration_witnesses"]


def save_witness(witness: Witness, path: Union[str, pathlib.Path]) -> None:
    # Atomic: a crash mid-save must never leave a torn witness that a
    # later ``verify-run`` fails to parse.
    from repro.io import atomic_write_text

    atomic_write_text(path, witness.to_json() + "\n")


def load_witness(path: Union[str, pathlib.Path]) -> Witness:
    return Witness.from_json(pathlib.Path(path).read_text())


def check_outcome_json(blob: str, problem: SCProblem) -> List[Violation]:
    """Oracle-check a bare serialized :class:`Outcome` (no replay)."""
    return check_execution(outcome_result(Outcome.from_json(blob)), problem)


__all__.append("check_outcome_json")
