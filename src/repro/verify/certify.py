"""Machine certification of the paper's claimed regions.

:data:`repro.paper.CLAIMED_REGIONS` records which protocol is claimed to
solve ``SC(k, t, C)`` where.  This module turns that lookup table into a
checked artifact: for one ``n`` it sweeps every claim over the full
``(k, t)`` grid and, point by point,

* **inside** the claimed region (``spec.solvable(n, k, t)``), runs the
  protocol through the exhaustive explorer over every input pattern and
  every enumerated crash plan; the point is ``CONFIRMED_SOLVABLE`` only
  when every exploration is exhaustive and violation-free;
* **outside** the region, where the solvability classifier says the
  point is ``IMPOSSIBLE``, hunts for a counterexample run; the first
  violating schedule is replayed on a fresh kernel through the full
  :mod:`repro.verify` oracle stack (:func:`confirm_exploration`) and
  optionally saved as a replayable witness file
  (``COUNTEREXAMPLE_CONFIRMED``);
* outside the region where the protocol's factory refuses to build at
  all, records ``REGION_GUARDED`` -- the implementation enforces its own
  precondition, which is itself evidence the claim's boundary is real;
* outside the region where the classifier says ``POSSIBLE`` or ``OPEN``
  the point is ``SKIPPED``: the claim says nothing there.

Lossy visited stores may *miss* violations (a hash collision can cut an
unexplored branch), so a lossy "no counterexample found" is never
trusted: the point is re-run on the exact store before any verdict is
downgraded to ``COUNTEREXAMPLE_MISSING`` (the re-run is flagged
``escalated``).  This is the invariant the bitstate property tests pin:
a false positive can cost re-verification work, never a wrong verdict.

Byzantine-model claims are certified under the crash-restricted
sub-adversary the explorer models; crash failures are a subset of
Byzantine behaviour, so counterexamples transfer soundly while
``CONFIRMED_SOLVABLE`` is, for those claims, confirmation under crash
failures only (recorded in the claim's ``note``).

The report serializes as ``repro-certification/1`` JSON for CI baseline
guards (``repro certify --check-baseline``).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.solvability import Solvability, classify
from repro.core.validity import by_code
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.exhaustive import (
    SpecFactory,
    VisitedSpec,
    crash_patterns,
    explore_mp,
    explore_sm,
)
from repro.paper import CLAIMED_REGIONS, ClaimedRegion
from repro.verify.witness import (
    confirm_exploration,
    exploration_witnesses,
    save_witness,
)

__all__ = [
    "CertificationReport",
    "ClaimResult",
    "PointResult",
    "REPORT_FORMAT",
    "certify_claims",
]

REPORT_FORMAT = "repro-certification/1"

#: Point verdicts, in severity order (worst first).
VERDICTS = (
    "REFUTED",                   # claimed solvable, violation found
    "COUNTEREXAMPLE_MISSING",    # claimed impossible, no violation found
    "INCONCLUSIVE",              # exploration hit its state budget
    "COUNTEREXAMPLE_CONFIRMED",  # impossibility witnessed + re-proven
    "CONFIRMED_SOLVABLE",        # clean exhaustive sweep inside region
    "REGION_GUARDED",            # factory refuses outside its region
    "SKIPPED",                   # claim says nothing at this point
)

_FAILING = frozenset({"REFUTED", "COUNTEREXAMPLE_MISSING"})


@dataclasses.dataclass
class PointResult:
    """Certification outcome of one ``(k, t)`` grid point."""

    k: int
    t: int
    inside: bool
    classification: str
    verdict: str
    states: int = 0
    explorations: int = 0
    #: Lossy store found nothing and the point was re-run exactly.
    escalated: bool = False
    witness_path: Optional[str] = None
    note: str = ""
    #: Why symmetry reduction was refused (empty when active or off);
    #: surfaces e.g. the sim-* simulation wrappers' refusal instead of
    #: silently exploring unreduced.
    symmetry_reason: str = ""
    #: Whether any exploration of this point used a cross-worker store.
    shared: bool = False
    #: Work-stealing duplicate-work counters, summed over explorations.
    stolen_subtrees: int = 0
    reexplored_states: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ClaimResult:
    """All grid points of one claimed region."""

    spec_name: str
    protocol: str
    model: str
    validity: str
    lemma: str
    points: List[PointResult] = dataclasses.field(default_factory=list)
    note: str = ""

    @property
    def ok(self) -> bool:
        return not any(p.verdict in _FAILING for p in self.points)

    @property
    def states(self) -> int:
        return sum(p.states for p in self.points)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec_name": self.spec_name,
            "protocol": self.protocol,
            "model": self.model,
            "validity": self.validity,
            "lemma": self.lemma,
            "ok": self.ok,
            "note": self.note,
            "points": [p.to_dict() for p in self.points],
        }


@dataclasses.dataclass
class CertificationReport:
    """One full certification sweep, serializable for CI guards."""

    n: int
    visited: str
    symmetry: bool
    shared: bool = False
    stop_on_violation: bool = False
    claims: List[ClaimResult] = dataclasses.field(default_factory=list)
    skipped_specs: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(claim.ok for claim in self.claims)

    @property
    def total_states(self) -> int:
        return sum(claim.states for claim in self.claims)

    def verdict_counts(self) -> Dict[str, int]:
        counts = {verdict: 0 for verdict in VERDICTS}
        for claim in self.claims:
            for point in claim.points:
                counts[point.verdict] += 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": REPORT_FORMAT,
            "n": self.n,
            "visited": self.visited,
            "symmetry": self.symmetry,
            "shared": self.shared,
            "stop_on_violation": self.stop_on_violation,
            "ok": self.ok,
            "total_states": self.total_states,
            "verdicts": self.verdict_counts(),
            "skipped_specs": list(self.skipped_specs),
            "claims": [claim.to_dict() for claim in self.claims],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: Union[str, pathlib.Path]) -> None:
        from repro.io import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")


# ---------------------------------------------------------------------------
# instance enumeration


def _input_patterns(n: int) -> List[Tuple[str, List[str]]]:
    """The input vectors each point is certified over.

    ``uniform`` probes the agreement-trivial corner, ``split`` the
    two-value validity conditions, ``distinct`` the k-agreement pigeon-
    hole (with n distinct inputs any decision spread beyond ``k`` values
    is observable).  Patterns are swept in this order; counterexample
    hunts therefore try the most discriminating vector first.
    """
    distinct = [f"v{i}" for i in range(n)]
    split = ["v" if i < (n + 1) // 2 else "w" for i in range(n)]
    uniform = ["v"] * n
    return [("distinct", distinct), ("split", split), ("uniform", uniform)]


def _sm_crash_plans(n: int, t: int) -> List[Optional[CrashPlan]]:
    """Crash plans for shared-memory points (step-indexed only).

    SM processes take no send actions, so only ``after_steps`` crash
    points are meaningful: the failure-free plan plus every single
    victim halting before op 0, 1, or 2 (before its write, mid-scan,
    and between scan cycles).
    """
    plans: List[Optional[CrashPlan]] = [None]
    if t < 1:
        return plans
    for victim in range(n):
        for ops in (0, 1, 2):
            plans.append(CrashPlan({victim: CrashPoint(after_steps=ops)}))
    return plans


def _explore_point(
    spec,
    inputs: Sequence[str],
    n: int,
    k: int,
    t: int,
    plan: Optional[CrashPlan],
    visited: Union[str, VisitedSpec],
    symmetry: bool,
    max_states: int,
    jobs: Optional[int],
    shared: bool = False,
    stop_on_violation: bool = False,
):
    factory = SpecFactory(spec.name, n, k, t)
    validity = by_code(spec.validity)
    if spec.is_shared_memory:
        return factory, explore_sm(
            factory, inputs, k, t, validity,
            crash_adversary=plan,
            max_states=max_states,
            jobs=jobs,
            visited=visited,
            symmetry=symmetry,
            shared=shared,
            stop_on_violation=stop_on_violation,
        )
    return factory, explore_mp(
        factory, inputs, k, t, validity,
        crash_adversary=plan,
        max_states=max_states,
        jobs=jobs,
        visited=visited,
        symmetry=symmetry,
        shared=shared,
        stop_on_violation=stop_on_violation,
    )


def _note_stats(point: PointResult, result) -> None:
    """Fold one exploration's observability stats into the point."""
    point.explorations += 1
    point.states += result.states
    point.shared = point.shared or result.stats.shared_store
    point.stolen_subtrees += result.stats.stolen_subtrees
    point.reexplored_states += result.stats.reexplored_states
    if not point.symmetry_reason and result.stats.symmetry_reason:
        point.symmetry_reason = result.stats.symmetry_reason


# ---------------------------------------------------------------------------
# per-point certification


def _certify_inside(
    spec, point: PointResult, n: int,
    instances: List[Tuple[str, List[str], Optional[CrashPlan]]],
    visited, symmetry, max_states, jobs,
    shared: bool = False, stop_on_violation: bool = False,
) -> None:
    """Inside the claimed region every instance must come back clean."""
    for label, inputs, plan in instances:
        try:
            _, result = _explore_point(
                spec, inputs, n, point.k, point.t, plan,
                visited, symmetry, max_states, jobs,
                shared, stop_on_violation,
            )
        except Exception as exc:  # pragma: no cover - claim must build
            point.verdict = "REFUTED"
            point.note = f"factory failed inside region ({label}): {exc}"
            return
        _note_stats(point, result)
        if result.violations:
            point.verdict = "REFUTED"
            point.note = (
                f"violation under inputs={label} plan={plan!r}: "
                f"{sorted(map(sorted, result.violation_kinds()))}"
            )
            return
        if not result.exhausted:
            point.verdict = "INCONCLUSIVE"
            point.note = f"state budget hit under inputs={label}"
            return
    point.verdict = "CONFIRMED_SOLVABLE"


def _certify_outside_impossible(
    spec, point: PointResult, n: int,
    instances: List[Tuple[str, List[str], Optional[CrashPlan]]],
    visited, symmetry, max_states, jobs,
    witness_dir: Optional[pathlib.Path],
    shared: bool = False, stop_on_violation: bool = False,
) -> None:
    """Outside + IMPOSSIBLE: find, re-prove, and save one counterexample."""
    # Shared-frontier runs are lossy as a *mode*, independent of the
    # store kind: cross-worker cuts are keyed on digests, so "no
    # violation found" must be escalated exactly like a lossy store's.
    store_is_lossy = shared or not (
        visited == "exact"
        or (isinstance(visited, VisitedSpec) and visited.kind == "exact")
    )
    for label, inputs, plan in instances:
        try:
            factory, result = _explore_point(
                spec, inputs, n, point.k, point.t, plan,
                visited, symmetry, max_states, jobs,
                shared, stop_on_violation,
            )
        except Exception as exc:
            point.verdict = "REGION_GUARDED"
            point.note = f"factory refuses outside region: {exc}"
            return
        _note_stats(point, result)
        if not result.violations and store_is_lossy:
            # A lossy store may have cut the violating branch on a hash
            # collision; only the exact store (private, deterministic
            # mode) may testify to absence.
            try:
                factory, result = _explore_point(
                    spec, inputs, n, point.k, point.t, plan,
                    "exact", symmetry, max_states, jobs,
                    shared=False, stop_on_violation=stop_on_violation,
                )
            except Exception as exc:  # pragma: no cover - built above
                point.verdict = "REGION_GUARDED"
                point.note = f"factory refuses outside region: {exc}"
                return
            point.escalated = True
            _note_stats(point, result)
        if result.violations:
            # Re-prove only the first violation: one independently
            # replayed counterexample certifies the impossibility, and
            # confirming thousands of equivalent ones would dominate
            # certification cost.
            result.violations = result.violations[:1]
            confirm_exploration(
                result, spec.name, inputs, point.k, point.t,
                crash_adversary=plan, validity=spec.validity,
            )
            if witness_dir is not None:
                witness = exploration_witnesses(
                    result, spec.name, inputs, point.k, point.t,
                    crash_adversary=plan, validity=spec.validity,
                )[0]
                path = witness_dir / (
                    f"{spec.name}-n{n}-k{point.k}-t{point.t}.json"
                )
                witness_dir.mkdir(parents=True, exist_ok=True)
                save_witness(witness, path)
                point.witness_path = str(path)
            point.verdict = "COUNTEREXAMPLE_CONFIRMED"
            point.note = f"inputs={label} plan={plan!r}"
            return
        if not result.exhausted:
            point.verdict = "INCONCLUSIVE"
            point.note = f"state budget hit under inputs={label}"
            return
    point.verdict = "COUNTEREXAMPLE_MISSING"
    point.note = (
        "no violating schedule within the enumerated instance family"
    )


# ---------------------------------------------------------------------------
# the sweep


def certify_claims(
    n: int = 4,
    specs: Optional[Sequence[str]] = None,
    ks: Optional[Sequence[int]] = None,
    ts: Optional[Sequence[int]] = None,
    visited: Union[str, VisitedSpec] = "exact",
    symmetry: bool = True,
    max_states: int = 500_000,
    jobs: Optional[int] = None,
    max_sends: int = 1,
    include_sim: bool = False,
    witness_dir: Optional[Union[str, pathlib.Path]] = None,
    progress=None,
    shared: bool = False,
    stop_on_violation: bool = False,
) -> CertificationReport:
    """Certify ``CLAIMED_REGIONS`` exhaustively at one ``n``.

    Args:
        n: system size; the grid is ``k in 1..n`` x ``t in 0..n-1``
            (restrictable via ``ks``/``ts``).
        specs: spec-name filter (default: every claim).
        visited: visited-store selection for the underlying explorer.
            Lossy stores escalate absent counterexamples to ``exact``.
        symmetry: enable process-permutation reduction (on by default;
            the explorer drops it automatically where unsound).
        max_states: per-exploration state budget; exceeding it makes a
            point ``INCONCLUSIVE``, never silently certified.
        max_sends: partial-broadcast crash depth for MP crash plans
            (see :func:`repro.harness.exhaustive.crash_patterns`).
        include_sim: also certify the ``sim-*`` simulation claims
            (skipped by default: each point multiplies the grid by the
            simulated protocol's own exploration).
        witness_dir: when set, counterexample witnesses are saved here.
        progress: optional callable invoked as ``progress(message)``
            after every finished point (the CLI prints these).
        shared: explore with the work-stealing shared-frontier engine
            (requires ``jobs``); "no violation" verdicts then escalate
            to a private exact re-run like any lossy store's.
        stop_on_violation: abandon each exploration at its first
            violation -- outside-region counterexample hunts return at
            the first hit instead of exploring to exhaustion.
    """
    if shared and jobs is None:
        raise ValueError("shared certification requires jobs")
    report = CertificationReport(
        n=n,
        visited=visited if isinstance(visited, str) else visited.kind,
        symmetry=symmetry,
        shared=shared,
        stop_on_violation=stop_on_violation,
    )
    directory = pathlib.Path(witness_dir) if witness_dir else None
    wanted = set(specs) if specs is not None else None
    k_values = list(ks) if ks is not None else list(range(1, n + 1))
    t_values = list(ts) if ts is not None else list(range(n))

    for claim in CLAIMED_REGIONS:
        if wanted is not None and claim.spec_name not in wanted:
            continue
        if claim.spec_name.startswith("sim-") and not include_sim:
            if wanted is None:
                report.skipped_specs.append(claim.spec_name)
                continue
        spec = _registry_spec(claim)
        result = ClaimResult(
            spec_name=claim.spec_name,
            protocol=claim.protocol,
            model=claim.model_attr,
            validity=claim.validity,
            lemma=claim.lemma,
        )
        if claim.model.is_byzantine:
            result.note = (
                "certified under the crash-restricted sub-adversary: "
                "crash failures are a subset of Byzantine behaviour, so "
                "counterexamples transfer; solvable confirmations cover "
                "crash failures only"
            )
        for k in k_values:
            for t in t_values:
                point = _certify_point(
                    claim, spec, n, k, t, visited, symmetry,
                    max_states, jobs, max_sends, directory,
                    shared, stop_on_violation,
                )
                result.points.append(point)
                if progress is not None:
                    progress(
                        f"{claim.spec_name} k={k} t={t}: {point.verdict}"
                        f" ({point.states} states)"
                    )
        report.claims.append(result)
    return report


def _registry_spec(claim: ClaimedRegion):
    import repro.protocols  # noqa: F401 -- populate the registry
    from repro.protocols.base import get_spec

    return get_spec(claim.spec_name)


def _certify_point(
    claim: ClaimedRegion, spec, n: int, k: int, t: int,
    visited, symmetry, max_states, jobs, max_sends,
    witness_dir: Optional[pathlib.Path],
    shared: bool = False, stop_on_violation: bool = False,
) -> PointResult:
    classification = classify(
        claim.model, by_code(claim.validity), n, k, t
    )
    inside = bool(spec.solvable(n, k, t))
    point = PointResult(
        k=k, t=t, inside=inside,
        classification=classification.status.value,
        verdict="SKIPPED",
    )
    if spec.is_shared_memory:
        plans = _sm_crash_plans(n, t)
    else:
        plans = crash_patterns(n, t, max_sends)
    instances = [
        (label, inputs, plan)
        for label, inputs in _input_patterns(n)
        for plan in plans
    ]
    if inside:
        _certify_inside(
            spec, point, n, instances, visited, symmetry, max_states, jobs,
            shared, stop_on_violation,
        )
    elif classification.status is Solvability.IMPOSSIBLE:
        _certify_outside_impossible(
            spec, point, n, instances, visited, symmetry, max_states,
            jobs, witness_dir, shared, stop_on_violation,
        )
    else:
        point.note = (
            f"outside claimed region, classifier says "
            f"{classification.status.value}: nothing to certify"
        )
    return point
