"""Delta-debugging counterexample shrinker over recorded schedules.

Both kernels are deterministic given the scheduler's choices, so a
violating run is fully described by its choice sequence (event seqs for
the MP kernel, pids for the SM kernel; see :mod:`repro.runtime.replay`).
The shrinker minimizes that sequence: drop chunks of choices, re-run
deterministically, and keep the shortest schedule that still violates.

Dropping an entry changes which downstream events exist, so a strict
:class:`~repro.runtime.replay.ReplayScheduler` would diverge.  Shrinking
therefore replays through :class:`SubsequenceScheduler`, which skips
entries that are not applicable in the current kernel state and stops
when the list is exhausted.  Tolerant replay is still deterministic --
the applied subsequence is a pure function of the choice list and the
initial state -- so a minimized witness replays bit-identically.

Truncated schedules end runs early; the kernel's
:class:`~repro.runtime.kernel.SchedulerStall` is caught and the partial
execution is judged by the *safety* oracles only
(:func:`repro.verify.oracles.safety_violations`) -- termination is
forfeited by truncation itself.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.problem import SCProblem
from repro.runtime.kernel import (
    ExecutionResult,
    KernelLimitError,
    MPKernel,
    SchedulerStall,
)
from repro.runtime.replay import Recording
from repro.runtime.traces import TraceMode
from repro.verify.oracles import Violation, safety_violations

__all__ = [
    "ShrinkResult",
    "SubsequenceScheduler",
    "kernel_factory_for_spec",
    "run_choices",
    "shrink_recording",
    "shrink_schedule",
]

#: Builds a fresh kernel wired to the given scheduler.
KernelFactory = Callable[[object], object]


class SubsequenceScheduler:
    """Tolerant replay: feed a choice list, skipping inapplicable entries.

    For ``kind="mp"`` a choice is applicable when its event seq is
    pending; for ``kind="sm"`` when the pid is runnable.  Returns
    ``None`` once the list is exhausted (the kernel then stops or
    stalls).  ``applied`` records the choices actually taken, which is
    the canonical (replayable) form of the schedule.
    """

    def __init__(self, choices: Sequence[int], kind: str) -> None:
        if kind not in ("mp", "sm"):
            raise ValueError(f"kind must be 'mp' or 'sm', got {kind!r}")
        self._choices = list(choices)
        self._kind = kind
        self._index = 0
        self.applied: List[int] = []

    def _applicable(self, kernel, choice: int) -> bool:
        if self._kind == "mp":
            return choice in kernel.pending
        return kernel.is_runnable(choice)

    def pick(self, kernel) -> Optional[int]:
        while self._index < len(self._choices):
            choice = self._choices[self._index]
            self._index += 1
            if self._applicable(kernel, choice):
                self.applied.append(choice)
                return choice
        return None


def run_choices(
    kernel_factory: KernelFactory,
    choices: Sequence[int],
    kind: str,
) -> Tuple[ExecutionResult, Tuple[int, ...]]:
    """Run a fresh kernel under a (possibly truncated) choice list.

    Returns ``(result, applied)`` where ``applied`` is the subsequence
    of choices actually taken.  A stalled or budget-capped run yields
    its partial execution state rather than raising, so safety oracles
    can judge what the prefix already committed to.
    """
    scheduler = SubsequenceScheduler(choices, kind)
    kernel = kernel_factory(scheduler)
    try:
        result = kernel.run()
    except (SchedulerStall, KernelLimitError):
        result = kernel._result()
    return result, tuple(scheduler.applied)


@dataclasses.dataclass
class ShrinkResult:
    """Outcome of one shrinking session."""

    kind: str
    original: Tuple[int, ...]
    minimized: Tuple[int, ...]
    executions: int
    result: ExecutionResult
    violations: List[Violation]

    @property
    def reduction(self) -> float:
        """Fraction of the original schedule removed (0 = none)."""
        if not self.original:
            return 0.0
        return 1.0 - len(self.minimized) / len(self.original)

    @property
    def recording(self) -> Recording:
        """The minimized schedule as a replayable recording."""
        return Recording(kind=self.kind, choices=self.minimized)

    def summary(self) -> str:
        return (
            f"shrunk {len(self.original)} -> {len(self.minimized)} choices "
            f"({self.reduction:.0%} removed, {self.executions} re-executions); "
            f"still violating: {', '.join(v.oracle for v in self.violations)}"
        )


def shrink_schedule(
    kernel_factory: KernelFactory,
    choices: Sequence[int],
    kind: str,
    violates: Optional[Callable[[ExecutionResult], bool]] = None,
    problem: Optional[SCProblem] = None,
    max_executions: int = 5_000,
) -> ShrinkResult:
    """Minimize a violating schedule by delta debugging (ddmin).

    Args:
        kernel_factory: builds a fresh kernel (fresh protocol state!)
            around the scheduler it is passed.
        choices: the recorded violating schedule.
        violates: predicate over a (possibly partial) execution; default
            is "any safety oracle fires for ``problem``".
        problem: required when ``violates`` is not given.
        max_executions: budget of deterministic re-runs.

    Raises:
        ValueError: when the original schedule does not violate (there
            is nothing to preserve while shrinking).
    """
    if violates is None:
        if problem is None:
            raise ValueError("provide either a violates predicate or a problem")
        violates = lambda result: bool(safety_violations(result, problem))

    executions = 0

    def attempt(candidate: Sequence[int]):
        nonlocal executions
        executions += 1
        return run_choices(kernel_factory, candidate, kind)

    result, applied = attempt(choices)
    if not violates(result):
        raise ValueError(
            "the original schedule does not violate; nothing to shrink"
        )
    # Canonical form: keep only the choices that were actually applied.
    current = list(applied)
    best_result = result

    granularity = 2
    while len(current) >= 2 and executions < max_executions:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current) and executions < max_executions:
            candidate = current[:start] + current[start + chunk:]
            result, applied = attempt(candidate)
            if violates(result):
                current = list(applied)
                best_result = result
                reduced = True
                # same start position now holds new content; retry there
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(current), granularity * 2)
        else:
            granularity = max(2, granularity - 1)

    final = safety_violations(best_result, problem) if problem else []
    return ShrinkResult(
        kind=kind,
        original=tuple(choices),
        minimized=tuple(current),
        executions=executions,
        result=best_result,
        violations=final,
    )


def shrink_recording(
    kernel_factory: KernelFactory,
    recording: Recording,
    problem: SCProblem,
    violates: Optional[Callable[[ExecutionResult], bool]] = None,
    max_executions: int = 5_000,
) -> ShrinkResult:
    """:func:`shrink_schedule` over a :class:`Recording` artifact."""
    return shrink_schedule(
        kernel_factory,
        recording.choices,
        recording.kind,
        violates=violates,
        problem=problem,
        max_executions=max_executions,
    )


def kernel_factory_for_spec(
    spec,
    n: int,
    k: int,
    t: int,
    inputs: Sequence,
    crash_adversary=None,
    byzantine_behaviours=None,
    stop_when_decided: bool = True,
    max_ticks: int = 1_000_000,
    trace_mode: TraceMode = TraceMode.FULL,
) -> Tuple[KernelFactory, str]:
    """Kernel factory for a registered protocol spec.

    Mirrors :func:`repro.harness.runner.run_spec`'s construction but
    returns a reusable factory (fresh protocol state per call) plus the
    recording kind, which is what the shrinker and witness replay need.
    """
    from repro.shm.kernel import SMKernel

    byz = dict(byzantine_behaviours or {})
    if spec.is_shared_memory:
        def build_sm(scheduler):
            base_program = spec.make(n, k, t)
            programs = [byz.get(pid, base_program) for pid in range(n)]
            return SMKernel(
                programs,
                list(inputs),
                t=t,
                scheduler=scheduler,
                crash_adversary=copy.deepcopy(crash_adversary),
                byzantine=sorted(byz),
                stop_when_decided=stop_when_decided,
                max_ticks=max_ticks,
                trace_mode=trace_mode,
            )

        return build_sm, "sm"

    def build_mp(scheduler):
        # Byzantine behaviours are stateful Process objects; fork them so
        # every build starts from fresh state.
        fresh_byz = copy.deepcopy(byz)
        processes = [
            fresh_byz.get(pid) or spec.make(n, k, t) for pid in range(n)
        ]
        return MPKernel(
            processes,
            list(inputs),
            t=t,
            scheduler=scheduler,
            crash_adversary=copy.deepcopy(crash_adversary),
            byzantine=sorted(byz),
            stop_when_decided=stop_when_decided,
            max_ticks=max_ticks,
            trace_mode=trace_mode,
        )

    return build_mp, "mp"
