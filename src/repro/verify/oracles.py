"""Composable execution oracles: machine-check one finished run.

The paper's claims are per-variant safety/liveness predicates -- at most
``k`` decisions, one of the six validity conditions SV1..WV2 evaluated
against the *actual* fault pattern of the run, irrevocability of
decisions, and termination of correct processes.  The condition
checkers in :mod:`repro.core.problem` judge an :class:`Outcome`; the
oracles here judge a full :class:`~repro.runtime.kernel.ExecutionResult`
(outcome *and* trace), return structured :class:`Violation` records
instead of booleans, and degrade gracefully across trace modes
(``FULL`` enables the trace-level checks, ``COUNTERS`` keeps the
counter-level ones, ``OFF`` keeps the outcome-level ones).

Single entry point::

    violations = check_execution(result, problem)
    assert not violations

Each oracle is independent and composable; harnesses opt in via the
``--verify`` flag (sweep, attack, exhaustive, run) or call
:func:`check_execution` directly.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.problem import Outcome, SCProblem
from repro.core.validity import (
    ALL_VALIDITY_CONDITIONS,
    ValidityCondition,
)
from repro.runtime.kernel import ExecutionResult
from repro.runtime.traces import TraceMode

__all__ = [
    "ExecutionOracle",
    "FaultBudgetOracle",
    "IrrevocabilityOracle",
    "KAgreementOracle",
    "TerminationOracle",
    "ValidityOracle",
    "Violation",
    "all_validity_oracles",
    "check_execution",
    "default_oracles",
    "safety_violations",
]


@dataclasses.dataclass(frozen=True)
class Violation:
    """One oracle finding about one execution.

    Attributes:
        oracle: name of the violated predicate, e.g. ``"agreement"``,
            ``"validity:SV2"``, ``"irrevocability"``.
        detail: human-readable description of the break.
        pid: the process the finding is about, if one is identifiable.
        value: the offending value, if one is identifiable.
        tick: kernel tick of the offending event, when the trace mode
            retains enough to know it.
    """

    oracle: str
    detail: str
    pid: Optional[int] = None
    value: Any = None
    tick: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.pid is not None:
            where.append(f"p{self.pid}")
        if self.tick is not None:
            where.append(f"tick {self.tick}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return f"{self.oracle}: {self.detail}{suffix}"


class ExecutionOracle:
    """One checkable predicate over a finished execution.

    Subclasses implement :meth:`check` and return a (possibly empty)
    list of :class:`Violation` records.  Oracles must not mutate the
    result and must tolerate every :class:`TraceMode`.
    """

    #: Identifier used in :class:`Violation.oracle` records.
    name = "oracle"

    #: Liveness oracles are excluded by :func:`safety_violations` --
    #: a truncated (shrunk) schedule trivially breaks termination.
    is_safety = True

    def check(
        self, result: ExecutionResult, problem: SCProblem
    ) -> List[Violation]:
        raise NotImplementedError


class FaultBudgetOracle(ExecutionOracle):
    """The execution stayed inside the adversary model: at most ``t``
    actual failures.  A run outside the budget proves nothing about the
    protocol, so every other oracle verdict is moot when this fires."""

    name = "fault-budget"

    def check(self, result, problem):
        outcome = result.outcome
        if outcome.failure_count > problem.t:
            return [Violation(
                self.name,
                f"{outcome.failure_count} failures exceed the budget "
                f"t={problem.t} (faulty: {sorted(outcome.faulty)})",
            )]
        return []


class KAgreementOracle(ExecutionOracle):
    """At most ``k`` distinct values decided by correct processes.

    With a ``FULL`` trace the violation pinpoints the decision event
    that first pushed the distinct count past ``k`` (the same scan as
    :func:`repro.analysis.forensics.first_violation`).
    """

    name = "agreement"

    def check(self, result, problem):
        outcome = result.outcome
        values = outcome.correct_decision_values()
        if len(values) <= problem.k:
            return []
        violation = Violation(
            self.name,
            f"{len(values)} distinct correct decisions, allowed k={problem.k}: "
            f"{sorted(map(repr, values))}",
        )
        if result.trace.mode is TraceMode.FULL:
            seen: set = set()
            for record in result.trace.of_kind("decide"):
                if record.pid in outcome.faulty:
                    continue
                seen.add(record.payload)
                if len(seen) > problem.k:
                    violation = dataclasses.replace(
                        violation,
                        pid=record.pid,
                        value=record.payload,
                        tick=record.tick,
                    )
                    break
        return [violation]


class ValidityOracle(ExecutionOracle):
    """One validity condition, evaluated against the actual fault
    pattern of the run (``outcome.faulty``, not the budget ``t``).

    Defaults to the problem's own condition; pass ``condition`` to pin
    one of the six (used by the lattice cross-checks and the edge-case
    tests).
    """

    def __init__(self, condition: Optional[ValidityCondition] = None) -> None:
        self._condition = condition

    @property
    def name(self) -> str:  # type: ignore[override]
        code = self._condition.code if self._condition else "problem"
        return f"validity:{code}"

    def check(self, result, problem):
        condition = self._condition or problem.validity
        verdict = condition.check(result.outcome)
        if verdict.holds:
            return []
        return [Violation(f"validity:{condition.code}", verdict.detail)]


class IrrevocabilityOracle(ExecutionOracle):
    """Decisions are decided once and never change.

    ``FULL`` trace: at most one ``decide`` record per process, and each
    recorded decision matches the final outcome.  ``COUNTERS`` trace:
    the total decide count cannot exceed the number of decided
    processes.  ``OFF``: nothing to check (vacuously passes).
    """

    name = "irrevocability"

    def check(self, result, problem):
        trace = result.trace
        outcome = result.outcome
        if trace.mode is TraceMode.OFF:
            return []
        if trace.mode is TraceMode.COUNTERS:
            count = trace.kind_count("decide")
            if count > len(outcome.decisions):
                return [Violation(
                    self.name,
                    f"{count} decide events for {len(outcome.decisions)} "
                    "decided processes (some process decided twice)",
                )]
            return []
        violations: List[Violation] = []
        decided: Dict[int, Any] = {}
        for record in trace.of_kind("decide"):
            if record.pid in decided:
                violations.append(Violation(
                    self.name,
                    f"p{record.pid} decided again ({record.payload!r} after "
                    f"{decided[record.pid]!r})",
                    pid=record.pid,
                    value=record.payload,
                    tick=record.tick,
                ))
                continue
            decided[record.pid] = record.payload
        for pid, value in decided.items():
            if pid not in outcome.decisions:
                violations.append(Violation(
                    self.name,
                    f"p{pid} decided {value!r} in the trace but the outcome "
                    "records no decision (decision revoked)",
                    pid=pid,
                    value=value,
                ))
            elif outcome.decisions[pid] != value:
                violations.append(Violation(
                    self.name,
                    f"p{pid} decided {value!r} in the trace but "
                    f"{outcome.decisions[pid]!r} in the outcome "
                    "(decision changed)",
                    pid=pid,
                    value=value,
                ))
        return violations


class TerminationOracle(ExecutionOracle):
    """Every correct process decided (liveness).

    Only meaningful on complete runs: a deliberately truncated schedule
    (mid-shrink) trivially fails it, which is why
    :func:`safety_violations` excludes liveness oracles.
    """

    name = "termination"
    is_safety = False

    def check(self, result, problem):
        outcome = result.outcome
        undecided = sorted(
            p for p in outcome.correct if p not in outcome.decisions
        )
        if not undecided:
            return []
        return [Violation(
            self.name,
            f"correct processes never decided: {undecided} "
            f"(after {result.ticks} ticks)",
        )]


def default_oracles() -> Tuple[ExecutionOracle, ...]:
    """The standard oracle stack applied by :func:`check_execution`."""
    return (
        FaultBudgetOracle(),
        KAgreementOracle(),
        ValidityOracle(),
        IrrevocabilityOracle(),
        TerminationOracle(),
    )


def all_validity_oracles() -> Tuple[ValidityOracle, ...]:
    """One :class:`ValidityOracle` per paper condition SV1..WV2."""
    return tuple(ValidityOracle(c) for c in ALL_VALIDITY_CONDITIONS)


def check_execution(
    result: ExecutionResult,
    problem: SCProblem,
    oracles: Optional[Sequence[ExecutionOracle]] = None,
) -> List[Violation]:
    """Run ``result`` through the oracle stack; empty list means clean.

    When the run exceeded the fault budget only the budget violation is
    reported -- such an execution is outside the problem's adversary
    model, so no conclusion about the protocol follows from the other
    predicates (same rule as :meth:`SCProblem.check`, reported as a
    record instead of raised).
    """
    stack = tuple(oracles) if oracles is not None else default_oracles()
    violations: List[Violation] = []
    for oracle in stack:
        found = oracle.check(result, problem)
        violations.extend(found)
        if found and isinstance(oracle, FaultBudgetOracle):
            return violations
    return violations


def safety_violations(
    result: ExecutionResult, problem: SCProblem
) -> List[Violation]:
    """Like :func:`check_execution` but safety predicates only.

    This is the shrinking predicate: dropping schedule entries must
    preserve a *safety* break, while termination is forfeited by
    truncation itself and would make every truncation "violating".
    """
    stack = tuple(o for o in default_oracles() if o.is_safety)
    return check_execution(result, problem, stack)


def outcome_result(outcome: Outcome) -> ExecutionResult:
    """Wrap a bare :class:`Outcome` for oracle checking.

    Trace-level oracles vacuously pass (the trace is ``OFF``); use this
    to run the outcome-level stack over externally produced outcomes,
    e.g. ``repro verify-run`` on an outcome-only witness.
    """
    from repro.runtime.traces import Trace

    return ExecutionResult(
        outcome=outcome,
        trace=Trace(TraceMode.OFF),
        ticks=0,
        quiescent=True,
    )


__all__.append("outcome_result")
