"""Conformance oracle layer: machine-check executions, shrink and
replay counterexamples, and differential-test the kernels.

Three pieces (see the submodule docstrings):

* :mod:`repro.verify.oracles` -- composable :class:`ExecutionOracle`
  checkers (k-agreement, the six validity conditions against the actual
  fault pattern, irrevocability, termination, fault budget) with the
  single entry point :func:`check_execution`;
* :mod:`repro.verify.shrink` -- delta-debugging minimizer over recorded
  schedules, producing minimal deterministic witnesses;
* :mod:`repro.verify.differential` -- cross-configuration diffing
  (MP vs SM kernel, FULL vs COUNTERS traces, serial vs ``--jobs N``,
  vectorized batch engine vs scalar replays);
* :mod:`repro.verify.witness` -- serializable replayable witness files
  (``repro verify-run witness.json``).

The harnesses expose all of this behind opt-in ``--verify`` flags.
"""

from repro.verify.differential import (
    DifferentialReport,
    HistogramDiff,
    ResumeDiff,
    diff_batch_scalar,
    diff_mp_sm,
    diff_resumed,
    diff_resumed_files,
    diff_serial_parallel,
    diff_trace_modes,
    differential_check,
    sm_counterpart,
)
from repro.verify.oracles import (
    ExecutionOracle,
    FaultBudgetOracle,
    IrrevocabilityOracle,
    KAgreementOracle,
    TerminationOracle,
    ValidityOracle,
    Violation,
    all_validity_oracles,
    check_execution,
    default_oracles,
    outcome_result,
    safety_violations,
)
from repro.verify.shrink import (
    ShrinkResult,
    SubsequenceScheduler,
    kernel_factory_for_spec,
    run_choices,
    shrink_recording,
    shrink_schedule,
)
from repro.verify.certify import (
    CertificationReport,
    ClaimResult,
    PointResult,
    certify_claims,
)
from repro.verify.witness import (
    Witness,
    WitnessReport,
    confirm_exploration,
    exploration_witnesses,
    load_witness,
    replay_witness,
    save_witness,
    verify_witness,
)

__all__ = [
    "CertificationReport",
    "ClaimResult",
    "DifferentialReport",
    "ExecutionOracle",
    "FaultBudgetOracle",
    "HistogramDiff",
    "IrrevocabilityOracle",
    "KAgreementOracle",
    "PointResult",
    "ResumeDiff",
    "ShrinkResult",
    "SubsequenceScheduler",
    "TerminationOracle",
    "ValidityOracle",
    "Violation",
    "Witness",
    "WitnessReport",
    "all_validity_oracles",
    "certify_claims",
    "check_execution",
    "confirm_exploration",
    "default_oracles",
    "diff_batch_scalar",
    "diff_mp_sm",
    "diff_resumed",
    "diff_resumed_files",
    "diff_serial_parallel",
    "diff_trace_modes",
    "differential_check",
    "exploration_witnesses",
    "kernel_factory_for_spec",
    "load_witness",
    "outcome_result",
    "replay_witness",
    "run_choices",
    "safety_violations",
    "save_witness",
    "shrink_recording",
    "shrink_schedule",
    "sm_counterpart",
    "verify_witness",
]
