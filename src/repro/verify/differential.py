"""Differential testing across kernels, trace modes, and parallelism.

Three cross-configuration invariants are checkable by running the same
seeded workload twice and diffing aggregate results:

* **serial vs ``--jobs N``** -- the parallel sweep engine derives every
  run from ``(seed, index)`` alone, so sharding must be bit-identical
  to the serial path (histogram *and* violation list);
* **FULL vs COUNTERS trace modes** -- trace retention is observational;
  changing it must never change any outcome;
* **MP kernel vs SM kernel** -- a protocol and its SIMULATION transform
  run over different substrates.  At ``t = 0`` the paper's quorum
  protocols are full-information (every process waits for all ``n``
  values), making the decision profile schedule-independent: the
  decision histograms must then be *equal* on a shared seed stream.
  At ``t > 0`` the kernels legitimately explore different schedules, so
  the diff is reported (and both sides must still be violation-free)
  but equality is not asserted unless ``strict=True``;
* **batch vs scalar engine** -- the vectorized :mod:`repro.batch`
  engine evaluates closed-form decision functions; replaying its exact
  plan through the scalar kernel must reproduce every run's decisions,
  crash set, and verdicts (histograms and violation counts identical,
  zero per-run mismatches);
* **resumed vs uninterrupted campaign** -- the crash-safe
  :mod:`repro.jobs` layer promises that a campaign killed mid-run and
  resumed yields the *bit-identical* aggregate of the same campaign
  run straight through; :func:`diff_resumed` checks record-for-record
  equality (supervision metadata is observational and excluded).

``differential_check`` bundles all applicable comparisons for one spec.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.harness.sweep import SweepConfig, SweepStats, sweep_spec
from repro.protocols.base import ProtocolSpec, get_spec
from repro.runtime.traces import TraceMode

__all__ = [
    "SM_COUNTERPARTS",
    "DifferentialReport",
    "HistogramDiff",
    "ResumeDiff",
    "diff_batch_scalar",
    "diff_mp_sm",
    "diff_resumed",
    "diff_resumed_files",
    "diff_serial_parallel",
    "diff_trace_modes",
    "differential_check",
    "sm_counterpart",
]

#: MP spec -> the registered SM spec running the same protocol (the
#: paper's SIMULATION transform, or the same trivial program).
SM_COUNTERPARTS: Dict[str, str] = {
    "chaudhuri@mp-cr": "sim-chaudhuri@sm-cr",
    "protocol-b@mp-cr": "sim-protocol-b@sm-cr",
    "protocol-c@mp-byz": "sim-protocol-c@sm-byz",
    "protocol-d@mp-byz": "sim-protocol-d@sm-byz",
    "trivial@mp-cr": "trivial@sm-cr",
    "trivial@mp-byz": "trivial@sm-byz",
}


def sm_counterpart(spec: ProtocolSpec) -> Optional[ProtocolSpec]:
    """The SM twin of an MP spec, when one is registered."""
    name = SM_COUNTERPARTS.get(spec.name)
    return get_spec(name) if name else None


@dataclasses.dataclass(frozen=True)
class HistogramDiff:
    """Decision histograms of two sweeps over the same seed stream."""

    label_a: str
    label_b: str
    histogram_a: Dict[int, int]
    histogram_b: Dict[int, int]
    violations_a: int
    violations_b: int
    required_equal: bool
    #: run-by-run discrepancies (currently reported only by the
    #: batch-vs-scalar diff); any nonzero count fails the diff.
    mismatched_runs: int = 0

    @property
    def identical(self) -> bool:
        return self.histogram_a == self.histogram_b

    @property
    def ok(self) -> bool:
        """No violations on either side, no per-run mismatches, and
        equality where required."""
        if self.mismatched_runs:
            return False
        if self.violations_a or self.violations_b:
            return False
        return self.identical or not self.required_equal

    def delta(self) -> Dict[int, int]:
        """Per-bucket count difference (a minus b); empty when identical."""
        keys = set(self.histogram_a) | set(self.histogram_b)
        return {
            key: self.histogram_a.get(key, 0) - self.histogram_b.get(key, 0)
            for key in sorted(keys)
            if self.histogram_a.get(key, 0) != self.histogram_b.get(key, 0)
        }

    def summary(self) -> str:
        if self.identical:
            shape = f"identical histograms {self.histogram_a}"
        else:
            shape = (
                f"histograms differ {self.delta()} "
                f"({'REQUIRED EQUAL' if self.required_equal else 'allowed'})"
            )
        tail = (
            f"; {self.mismatched_runs} run-by-run mismatches"
            if self.mismatched_runs
            else ""
        )
        return (
            f"{self.label_a} vs {self.label_b}: {shape}; "
            f"violations {self.violations_a}/{self.violations_b}{tail}"
        )


def _diff(
    stats_a: SweepStats,
    stats_b: SweepStats,
    label_a: str,
    label_b: str,
    required_equal: bool,
) -> HistogramDiff:
    return HistogramDiff(
        label_a=label_a,
        label_b=label_b,
        histogram_a=dict(stats_a.decisions_histogram),
        histogram_b=dict(stats_b.decisions_histogram),
        violations_a=len(stats_a.violations),
        violations_b=len(stats_b.violations),
        required_equal=required_equal,
    )


def diff_serial_parallel(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
    jobs: int = 2,
) -> HistogramDiff:
    """Serial sweep vs the sharded sweep engine; must be bit-identical."""
    config = config or SweepConfig()
    serial = sweep_spec(spec, n, k, t, config, jobs=1)
    parallel = sweep_spec(spec, n, k, t, config, jobs=jobs)
    diff = _diff(
        serial, parallel, f"{spec.name}[serial]", f"{spec.name}[jobs={jobs}]",
        required_equal=True,
    )
    # Violation lists must match record-for-record, not just in count.
    if serial.violations != parallel.violations:
        diff = dataclasses.replace(
            diff, violations_a=len(serial.violations) or 1,
            violations_b=len(parallel.violations) or 1,
        )
    return diff


def diff_trace_modes(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
) -> HistogramDiff:
    """FULL-trace sweep vs COUNTERS-trace sweep; must be bit-identical."""
    config = config or SweepConfig()
    full = sweep_spec(
        spec, n, k, t,
        dataclasses.replace(config, trace_mode=TraceMode.FULL),
    )
    counters = sweep_spec(
        spec, n, k, t,
        dataclasses.replace(config, trace_mode=TraceMode.COUNTERS),
    )
    return _diff(
        full, counters, f"{spec.name}[FULL]", f"{spec.name}[COUNTERS]",
        required_equal=True,
    )


def diff_mp_sm(
    mp_spec: ProtocolSpec,
    sm_spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
    strict: Optional[bool] = None,
) -> HistogramDiff:
    """MP kernel vs SM kernel on the same seed stream.

    ``strict`` defaults to ``t == 0``: failure-free runs of the paper's
    quorum protocols are full-information and schedule-independent, so
    the histograms must coincide exactly; with failures the kernels may
    legitimately diverge run-by-run and only cleanliness is required.
    """
    config = config or SweepConfig()
    if strict is None:
        strict = t == 0
    mp = sweep_spec(mp_spec, n, k, t, config)
    sm = sweep_spec(sm_spec, n, k, t, config)
    return _diff(mp, sm, mp_spec.name, sm_spec.name, required_equal=strict)


def diff_batch_scalar(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
) -> HistogramDiff:
    """Vectorized batch engine vs scalar replays of the same plan.

    The batch engine predicts each planned run's decisions in closed
    form; replaying the identical plan (inputs, crash points, message
    order) through the scalar kernel must agree run-by-run.  Histograms
    and violation counts are required equal, and any per-run mismatch
    (decisions, crash set, or verdicts) fails the diff even when the
    aggregates happen to collide.
    """
    # Function-level import: repro.batch needs numpy and imports
    # harness modules back.
    from repro.batch import batch_vs_replay

    config = config or SweepConfig()
    batch, scalar, mismatched, _details = batch_vs_replay(
        spec, n, k, t, config
    )
    diff = _diff(
        batch, scalar, f"{spec.name}[batch]", f"{spec.name}[scalar-replay]",
        required_equal=True,
    )
    return dataclasses.replace(diff, mismatched_runs=mismatched)


@dataclasses.dataclass(frozen=True)
class ResumeDiff:
    """Resumed-campaign aggregate vs the uninterrupted reference.

    ``ok`` demands bit-identical aggregates: same campaign identity,
    same number of records, and every :class:`PointRecord` equal
    field-for-field *in the same deterministic campaign order*.  The
    ``execution`` metadata (supervisor events, retry counts) is
    deliberately ignored -- a resumed run legitimately has a different
    supervision history, but never different results.
    """

    label_resumed: str
    label_reference: str
    identity_ok: bool
    records_resumed: int
    records_reference: int
    #: ``(index, resumed_record_json, reference_record_json)`` triples
    #: for every position where the two runs disagree (None marks a
    #: missing record on that side).
    mismatches: Tuple[Tuple[int, Optional[Dict], Optional[Dict]], ...]

    @property
    def ok(self) -> bool:
        return self.identity_ok and not self.mismatches and (
            self.records_resumed == self.records_reference
        )

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.label_resumed} vs {self.label_reference}: "
                f"bit-identical ({self.records_resumed} records)"
            )
        problems = []
        if not self.identity_ok:
            problems.append("campaign identity differs")
        if self.records_resumed != self.records_reference:
            problems.append(
                f"record counts differ "
                f"{self.records_resumed}/{self.records_reference}"
            )
        if self.mismatches:
            problems.append(f"{len(self.mismatches)} mismatched records")
        return (
            f"{self.label_resumed} vs {self.label_reference}: "
            f"{'; '.join(problems)}"
        )


def diff_resumed(resumed, reference, label_resumed: str = "resumed",
                 label_reference: str = "uninterrupted") -> ResumeDiff:
    """Diff two :class:`~repro.harness.campaign.CampaignResult` objects.

    The crash-safety acceptance check: ``resumed`` (a campaign that was
    interrupted -- chaos SIGKILL, Ctrl-C, supervisor crash -- and
    completed via resume) must aggregate bit-identically to
    ``reference`` (the same campaign run uninterrupted).
    """
    identity_ok = (
        resumed.campaign == reference.campaign
        and resumed.seed == reference.seed
    )
    a = [record.to_json() for record in resumed.records]
    b = [record.to_json() for record in reference.records]
    mismatches = []
    for index in range(max(len(a), len(b))):
        record_a = a[index] if index < len(a) else None
        record_b = b[index] if index < len(b) else None
        if record_a != record_b:
            mismatches.append((index, record_a, record_b))
    return ResumeDiff(
        label_resumed=label_resumed,
        label_reference=label_reference,
        identity_ok=identity_ok,
        records_resumed=len(a),
        records_reference=len(b),
        mismatches=tuple(mismatches),
    )


def diff_resumed_files(
    resumed_path: Union[str, pathlib.Path],
    reference_path: Union[str, pathlib.Path],
) -> ResumeDiff:
    """File-level :func:`diff_resumed` (what the CI chaos drill calls)."""
    from repro.harness.campaign import CampaignResult

    resumed = CampaignResult.load(pathlib.Path(resumed_path))
    reference = CampaignResult.load(pathlib.Path(reference_path))
    return diff_resumed(
        resumed, reference,
        label_resumed=str(resumed_path),
        label_reference=str(reference_path),
    )


@dataclasses.dataclass
class DifferentialReport:
    """All applicable differential comparisons for one spec/point."""

    spec_name: str
    n: int
    k: int
    t: int
    diffs: List[HistogramDiff]

    @property
    def ok(self) -> bool:
        return all(diff.ok for diff in self.diffs)

    def failing(self) -> List[HistogramDiff]:
        return [diff for diff in self.diffs if not diff.ok]

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failing())} FAILING"
        lines = [
            f"differential {self.spec_name} n={self.n} k={self.k} "
            f"t={self.t}: {status}"
        ]
        lines.extend(f"  {diff.summary()}" for diff in self.diffs)
        return "\n".join(lines)


def differential_check(
    spec: ProtocolSpec,
    n: int,
    k: int,
    t: int,
    config: Optional[SweepConfig] = None,
    jobs: int = 2,
) -> DifferentialReport:
    """Run every applicable differential comparison for one point.

    Always: serial-vs-parallel and FULL-vs-COUNTERS.  Additionally
    MP-vs-SM when the spec has a registered SM counterpart (strictness
    per :func:`diff_mp_sm`), and batch-vs-scalar when the vectorized
    engine models the spec at this point.
    """
    from repro.batch import supports_point

    config = config or SweepConfig()
    diffs = [
        diff_serial_parallel(spec, n, k, t, config, jobs=jobs),
        diff_trace_modes(spec, n, k, t, config),
    ]
    twin = sm_counterpart(spec)
    if twin is not None and twin.solvable(n, k, t):
        diffs.append(diff_mp_sm(spec, twin, n, k, t, config))
    if supports_point(spec, n, k, t):
        diffs.append(diff_batch_scalar(spec, n, k, t, config))
    return DifferentialReport(
        spec_name=spec.name, n=n, k=k, t=t, diffs=diffs
    )
