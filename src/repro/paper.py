"""Structured index of the paper, cross-referenced to code.

Maps every artifact of De Prisco, Malkhi, Reiter, *On k-Set Consensus
Problems in Asynchronous Systems* (PODC 1999 / TPDS 2001) to the module
that reproduces it.  Used by the ``paper`` CLI subcommand and by tests
that keep the cross-references valid.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Dict, Optional, Tuple

__all__ = [
    "CITATION",
    "CLAIMED_REGIONS",
    "FIGURES",
    "LEMMA_INDEX",
    "PROTOCOLS",
    "ClaimedRegion",
    "PaperArtifact",
    "artifact",
    "claimed_protocol_symbols",
    "claimed_region",
    "claimed_region_by_spec",
    "render_index",
]

CITATION = (
    "Roberto De Prisco, Dahlia Malkhi, Michael Reiter. "
    "On k-Set Consensus Problems in Asynchronous Systems. "
    "PODC 1999; IEEE TPDS 12(1), 2001."
)


@dataclasses.dataclass(frozen=True)
class PaperArtifact:
    """One table/figure/lemma/protocol of the paper, mapped to code."""

    identifier: str
    kind: str  # "figure" | "lemma" | "protocol" | "definition"
    summary: str
    module: str
    symbol: Optional[str] = None

    def resolve(self):
        """Import and return the implementing object (None for modules)."""
        mod = importlib.import_module(self.module)
        if self.symbol is None:
            return mod
        return getattr(mod, self.symbol)

    def __str__(self) -> str:
        target = f"{self.module}.{self.symbol}" if self.symbol else self.module
        return f"{self.identifier} [{self.kind}] -> {target}\n    {self.summary}"


_ARTIFACTS: Tuple[PaperArtifact, ...] = (
    # -- definitions --------------------------------------------------------
    PaperArtifact(
        "Section 2 (SC(k,t,C))", "definition",
        "The k-set consensus problem: termination, agreement, validity.",
        "repro.core.problem", "SCProblem",
    ),
    PaperArtifact(
        "Section 2 (validity)", "definition",
        "The six validity conditions SV1, SV2, RV1, RV2, WV1, WV2.",
        "repro.core.validity", "ALL_VALIDITY_CONDITIONS",
    ),
    PaperArtifact(
        "Section 2 (models)", "definition",
        "MP/CR, MP/Byz, SM/CR, SM/Byz.",
        "repro.models", "Model",
    ),
    PaperArtifact(
        "Section 4 (SWMR registers)", "definition",
        "Single-writer multi-reader atomic registers; Byzantine clients "
        "cannot write others' registers.",
        "repro.shm.registers", "RegisterFile",
    ),
    # -- figures -------------------------------------------------------------
    PaperArtifact(
        "Fig. 1", "figure",
        "The 'weaker than' lattice of validity conditions.",
        "repro.analysis.lattice", "render_lattice",
    ),
    PaperArtifact(
        "Fig. 2", "figure",
        "MP/CR solvability regions, n = 64 (six panels).",
        "repro.analysis.figures", "render_figure",
    ),
    PaperArtifact(
        "Fig. 3", "figure",
        "The partition run of Lemma 3.3's proof, executable.",
        "repro.adversary.constructions", "lemma_3_3_partition_run",
    ),
    PaperArtifact(
        "Fig. 4", "figure",
        "MP/Byz solvability regions, n = 64.",
        "repro.analysis.figures", "render_figure",
    ),
    PaperArtifact(
        "Fig. 5", "figure",
        "SM/CR solvability regions, n = 64.",
        "repro.analysis.figures", "render_figure",
    ),
    PaperArtifact(
        "Fig. 6", "figure",
        "SM/Byz solvability regions, n = 64.",
        "repro.analysis.figures", "render_figure",
    ),
    # -- protocols ------------------------------------------------------------
    PaperArtifact(
        "Chaudhuri [13]", "protocol",
        "Flood inputs; decide the minimum of n-t values (RV1, t < k).",
        "repro.protocols.chaudhuri", "ChaudhuriKSet",
    ),
    PaperArtifact(
        "PROTOCOL A", "protocol",
        "Decide the common value of the first n-t inputs, else default.",
        "repro.protocols.protocol_a", "ProtocolA",
    ),
    PaperArtifact(
        "PROTOCOL B", "protocol",
        "Decide own input on an n-2t quorum among n-t inputs, else default.",
        "repro.protocols.protocol_b", "ProtocolB",
    ),
    PaperArtifact(
        "l-echo broadcast", "protocol",
        "Generalized Bracha-Toueg echo: at most l accepted values per "
        "sender for t < ln/(2l+1).",
        "repro.protocols.echo", "LEchoEngine",
    ),
    PaperArtifact(
        "PROTOCOL C(l)", "protocol",
        "PROTOCOL B over l-echo broadcast (Byzantine SV2).",
        "repro.protocols.protocol_c", "ProtocolC",
    ),
    PaperArtifact(
        "PROTOCOL D", "protocol",
        "t+1 broadcasters decide their values; others adopt an n-t-echo "
        "value (Byzantine WV1, k >= Z(n,t)).",
        "repro.protocols.protocol_d", "ProtocolD",
    ),
    PaperArtifact(
        "PROTOCOL E", "protocol",
        "Write, one scan, decide the common value or default (wait-free).",
        "repro.protocols.protocol_e", "protocol_e",
    ),
    PaperArtifact(
        "PROTOCOL F", "protocol",
        "Scan until n-t registers written; quorum-check own input.",
        "repro.protocols.protocol_f", "protocol_f",
    ),
    PaperArtifact(
        "SIMULATION", "protocol",
        "Run any message-passing protocol over SWMR registers.",
        "repro.protocols.simulation", "simulate_mp_over_sm",
    ),
)

#: Lemma id -> (kind, one-line statement, module implementing/demonstrating).
LEMMA_INDEX: Dict[str, Tuple[str, str]] = {
    "Lemma 3.1": ("possibility", "repro.protocols.chaudhuri"),
    "Lemma 3.2": ("impossibility", "repro.adversary.constructions"),
    "Lemma 3.3": ("impossibility", "repro.adversary.constructions"),
    "Lemma 3.4": ("impossibility", "repro.core.lemmas"),
    "Lemma 3.5": ("impossibility", "repro.adversary.constructions"),
    "Lemma 3.6": ("impossibility", "repro.adversary.constructions"),
    "Lemma 3.7": ("possibility", "repro.protocols.protocol_a"),
    "Lemma 3.8": ("possibility", "repro.protocols.protocol_b"),
    "Lemma 3.9": ("impossibility", "repro.adversary.constructions"),
    "Lemma 3.10": ("impossibility", "repro.adversary.constructions"),
    "Lemma 3.11": ("impossibility", "repro.core.lemmas"),
    "Lemma 3.12": ("possibility", "repro.protocols.protocol_a"),
    "Lemma 3.13": ("possibility", "repro.protocols.protocol_a"),
    "Lemma 3.14": ("possibility", "repro.protocols.echo"),
    "Lemma 3.15": ("possibility", "repro.protocols.protocol_c"),
    "Lemma 3.16": ("possibility", "repro.protocols.protocol_d"),
    "Lemma 4.1": ("impossibility", "repro.core.lemmas"),
    "Lemma 4.2": ("impossibility", "repro.core.lemmas"),
    "Lemma 4.3": ("impossibility", "repro.adversary.constructions"),
    "Lemma 4.4": ("possibility", "repro.protocols.simulation"),
    "Lemma 4.5": ("possibility", "repro.protocols.protocol_e"),
    "Lemma 4.6": ("possibility", "repro.protocols.simulation"),
    "Lemma 4.7": ("possibility", "repro.protocols.protocol_f"),
    "Lemma 4.8": ("impossibility", "repro.adversary.constructions"),
    "Lemma 4.9": ("impossibility", "repro.adversary.constructions"),
    "Lemma 4.10": ("possibility", "repro.protocols.protocol_e"),
    "Lemma 4.11": ("possibility", "repro.protocols.simulation"),
    "Lemma 4.12": ("possibility", "repro.protocols.protocol_f"),
    "Lemma 4.13": ("possibility", "repro.protocols.simulation"),
}

FIGURES = tuple(a for a in _ARTIFACTS if a.kind == "figure")
PROTOCOLS = tuple(a for a in _ARTIFACTS if a.kind == "protocol")


@dataclasses.dataclass(frozen=True)
class ClaimedRegion:
    """One solvability claim: a protocol spec and its ``(k, t, C)`` region.

    The paper's possibility lemmas each claim that a protocol solves
    ``SC(k, t, C)`` in one model over some region of ``(n, k, t)``.
    This table is the single source of truth for those claims: the
    protocol registry (:mod:`repro.protocols.base`) is cross-checked
    against it by ``tests/test_paper_index.py`` at run time and by the
    ``PROTO002`` rule of :mod:`repro.staticcheck` at lint time.  The
    region predicate itself lives on the registered
    :class:`~repro.protocols.base.ProtocolSpec` (``spec.solvable``).

    Attributes:
        spec_name: registry key, e.g. ``"protocol-a@mp-cr"``.
        protocol: implementing symbol (class or program function).
        model_attr: :class:`~repro.models.Model` member name, e.g.
            ``"MP_CR"``.
        validity: claimed validity condition code.
        lemma: the lemma (or section) making the claim, exactly as the
            registry states it.
    """

    spec_name: str
    protocol: str
    model_attr: str
    validity: str
    lemma: str

    @property
    def model(self):
        from repro.models import Model

        return Model[self.model_attr]


CLAIMED_REGIONS: Tuple[ClaimedRegion, ...] = (
    ClaimedRegion("chaudhuri@mp-cr", "ChaudhuriKSet",
                  "MP_CR", "RV1", "Lemma 3.1"),
    ClaimedRegion("protocol-a@mp-cr", "ProtocolA",
                  "MP_CR", "RV2", "Lemma 3.7"),
    ClaimedRegion("protocol-a-wv2@mp-cr", "ProtocolA",
                  "MP_CR", "WV2", "Lemma 3.7 (WV2 weaker than RV2)"),
    ClaimedRegion("protocol-a@mp-byz", "ProtocolA",
                  "MP_BYZ", "WV2", "Lemmas 3.12 and 3.13"),
    ClaimedRegion("protocol-b@mp-cr", "ProtocolB",
                  "MP_CR", "SV2", "Lemma 3.8"),
    ClaimedRegion("protocol-c@mp-byz", "ProtocolC",
                  "MP_BYZ", "SV2", "Lemma 3.15"),
    ClaimedRegion("protocol-c-rv2@mp-byz", "ProtocolC",
                  "MP_BYZ", "RV2", "Lemma 3.15 (RV2 weaker than SV2)"),
    ClaimedRegion("protocol-d@mp-byz", "ProtocolD",
                  "MP_BYZ", "WV1", "Lemma 3.16"),
    ClaimedRegion("protocol-e@sm-cr", "protocol_e",
                  "SM_CR", "RV2", "Lemma 4.5"),
    ClaimedRegion("protocol-e@sm-byz", "protocol_e",
                  "SM_BYZ", "WV2", "Lemma 4.10"),
    ClaimedRegion("protocol-f@sm-cr", "protocol_f",
                  "SM_CR", "SV2", "Lemma 4.7"),
    ClaimedRegion("protocol-f@sm-byz", "protocol_f",
                  "SM_BYZ", "SV2", "Lemma 4.12"),
    ClaimedRegion("sim-chaudhuri@sm-cr", "simulate_mp_over_sm",
                  "SM_CR", "RV1", "Lemma 4.4"),
    ClaimedRegion("sim-protocol-b@sm-cr", "simulate_mp_over_sm",
                  "SM_CR", "SV2", "Lemma 4.6"),
    ClaimedRegion("sim-protocol-c@sm-byz", "simulate_mp_over_sm",
                  "SM_BYZ", "SV2", "Lemma 4.11"),
    ClaimedRegion("sim-protocol-d@sm-byz", "simulate_mp_over_sm",
                  "SM_BYZ", "WV1", "Lemma 4.13"),
    ClaimedRegion("trivial@mp-cr", "TrivialOwnValue",
                  "MP_CR", "SV1", "Section 2"),
    ClaimedRegion("trivial@mp-byz", "TrivialOwnValue",
                  "MP_BYZ", "SV1", "Section 2"),
    ClaimedRegion("trivial@sm-cr", "trivial_own_value_sm",
                  "SM_CR", "SV1", "Section 2"),
    ClaimedRegion("trivial@sm-byz", "trivial_own_value_sm",
                  "SM_BYZ", "SV1", "Section 2"),
)

_CLAIMS_BY_SPEC: Dict[str, ClaimedRegion] = {
    claim.spec_name: claim for claim in CLAIMED_REGIONS
}


def claimed_region_by_spec(spec_name: str) -> Optional[ClaimedRegion]:
    """The claim registered under one spec name, or ``None``."""
    return _CLAIMS_BY_SPEC.get(spec_name)


def claimed_region(protocol) -> Tuple[ClaimedRegion, ...]:
    """Every claimed region of one protocol.

    ``protocol`` may be a spec name (``"protocol-a@mp-cr"``), an
    implementing class or function, or its symbol name
    (``"ProtocolA"``).  Raises :class:`ValueError` when nothing in the
    table matches.
    """
    if isinstance(protocol, str):
        key = protocol
    else:
        key = getattr(protocol, "__name__", None)
        if key is None:
            raise ValueError(f"cannot resolve a symbol for {protocol!r}")
    if key in _CLAIMS_BY_SPEC:
        return (_CLAIMS_BY_SPEC[key],)
    claims = tuple(c for c in CLAIMED_REGIONS if c.protocol == key)
    if not claims:
        raise ValueError(
            f"no claimed region for {key!r}; known specs: "
            f"{sorted(_CLAIMS_BY_SPEC)}"
        )
    return claims


def claimed_protocol_symbols() -> frozenset:
    """Implementing symbols with at least one claimed region."""
    return frozenset(claim.protocol for claim in CLAIMED_REGIONS)


def artifact(identifier: str) -> PaperArtifact:
    """Look an artifact up by its paper identifier (case-insensitive)."""
    for entry in _ARTIFACTS:
        if entry.identifier.lower() == identifier.lower():
            return entry
    raise ValueError(
        f"unknown artifact {identifier!r}; known: "
        f"{[a.identifier for a in _ARTIFACTS]}"
    )


def render_index() -> str:
    """Human-readable map: paper artifact -> implementing code."""
    lines = [CITATION, ""]
    for kind in ("definition", "figure", "protocol"):
        lines.append(f"== {kind}s ==")
        for entry in _ARTIFACTS:
            if entry.kind == kind:
                lines.append(str(entry))
        lines.append("")
    lines.append("== lemmas ==")
    for lemma_id, (kind, module) in LEMMA_INDEX.items():
        lines.append(f"{lemma_id} [{kind}] -> {module}")
    return "\n".join(lines)
