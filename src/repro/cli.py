"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``classify``  -- classify one ``SC(k, t, C)`` instance in a model;
* ``panel``     -- render one figure panel (region map) as text or CSV;
* ``figure``    -- render a full six-panel paper figure;
* ``lattice``   -- print and verify the Fig. 1 validity lattice;
* ``run``       -- run a registered protocol once and report verdicts;
* ``sweep``     -- Monte-Carlo sweep of a protocol at one point;
* ``attack``    -- adversarial search for a protocol's worst run;
* ``construct`` -- execute the impossibility-proof counterexample runs;
* ``protocols`` -- list the protocol registry;
* ``paper``     -- the paper-artifact -> code index;
* ``summary``   -- the Section 2.1 summary of results;
* ``svg``       -- write a figure/panel as a paper-style SVG file;
* ``trace``     -- run a protocol or construction and print its
  space-time diagram;
* ``exhaustive``-- verify a protocol over ALL schedules of a tiny
  instance;
* ``campaign``  -- run a persisted validation campaign; with ``--store``
  it runs crash-safe on the :mod:`repro.jobs` layer (supervised
  workers, per-shard timeouts, retries with backoff, ``--resume``,
  deterministic chaos injection);
* ``diff-resumed`` -- assert a resumed campaign result is
  bit-identical to an uninterrupted reference result;
* ``verify-run``-- replay a witness file through the oracle stack;
* ``staticcheck`` -- AST lint for determinism & protocol conformance
  (DET/PROTO/SM/BATCH/ROB rule families, SARIF output, committed
  baseline).

``run``, ``sweep``, ``attack``, and ``exhaustive`` all accept
``--verify`` to additionally judge executions with the
:mod:`repro.verify.oracles` conformance stack.

Examples::

    python -m repro classify --model MP/Byz --validity WV1 --n 64 --k 22 --t 21
    python -m repro panel --model SM/CR --validity SV2 --n 32
    python -m repro run chaudhuri@mp-cr --n 7 --k 3 --t 2
    python -m repro sweep protocol-f@sm-byz --n 7 --k 5 --t 3 --runs 50
    python -m repro construct --lemma "Lemma 3.3"
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.adversary.constructions import all_constructions
from repro.analysis.figures import panel_csv, render_figure, render_panel
from repro.analysis.lattice import render_lattice, verify_lattice
from repro.core.regions import region_map
from repro.core.solvability import classify
from repro.core.validity import ALL_VALIDITY_CONDITIONS, by_code
from repro.harness.attack import search_worst_run
from repro.harness.runner import run_spec
from repro.harness.sweep import SweepConfig, sweep_spec
from repro.models import Model
from repro.protocols.base import all_specs, get_spec

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="k-set consensus reproduction (De Prisco-Malkhi-Reiter).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_args(p, with_validity=True):
        p.add_argument("--model", default="MP/CR", help="MP/CR MP/Byz SM/CR SM/Byz")
        if with_validity:
            p.add_argument("--validity", default="RV1",
                           help="SV1 SV2 RV1 RV2 WV1 WV2")
        p.add_argument("--n", type=int, default=64)

    p = sub.add_parser("classify", help="classify one SC(k, t, C) instance")
    add_instance_args(p)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--t", type=int, required=True)

    p = sub.add_parser("panel", help="render one region panel")
    add_instance_args(p)
    p.add_argument("--csv", action="store_true", help="frontier CSV output")

    p = sub.add_parser("figure", help="render a full six-panel figure")
    add_instance_args(p, with_validity=False)

    sub.add_parser("lattice", help="print and verify the Fig. 1 lattice")

    def add_verify_arg(p):
        p.add_argument(
            "--verify", action="store_true",
            help="also judge executions with the repro.verify oracle stack",
        )

    p = sub.add_parser("run", help="run a registered protocol once")
    p.add_argument("spec", help="protocol spec name (see `protocols`)")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--t", type=int, required=True)
    p.add_argument("--inputs", nargs="*", default=None,
                   help="input values (default: v0 v1 ...)")
    add_verify_arg(p)

    def add_jobs_arg(p):
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes (1 = serial, 0 = all cores); "
                 "results are identical for any value",
        )

    def add_engine_arg(p):
        p.add_argument(
            "--engine", choices=("scalar", "batch", "auto"),
            default="scalar",
            help="execution engine: scalar discrete-event kernel (default) "
                 "or vectorized numpy batch engine; batch/auto fall back "
                 "to scalar for specs the batch engine does not model",
        )

    p = sub.add_parser("sweep", help="Monte-Carlo sweep at one point")
    p.add_argument("spec")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--t", type=int, required=True)
    p.add_argument("--runs", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    add_jobs_arg(p)
    add_engine_arg(p)
    add_verify_arg(p)

    p = sub.add_parser("attack", help="adversarial search for the worst run")
    p.add_argument("spec")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--t", type=int, required=True)
    p.add_argument("--attempts", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    add_jobs_arg(p)
    add_verify_arg(p)
    p.add_argument(
        "--save-witness", default=None, metavar="PATH",
        help="record the winning attempt as a replayable witness file "
             "(crash-model specs only; the schedule is shrunk when it "
             "violates a safety oracle)",
    )

    p = sub.add_parser("construct", help="run impossibility constructions")
    p.add_argument("--lemma", default=None,
                   help='restrict to one lemma, e.g. "Lemma 3.3"')

    sub.add_parser("protocols", help="list the protocol registry")

    p = sub.add_parser("recommend",
                       help="which protocol solves an instance, and best")
    add_instance_args(p)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--t", type=int, required=True)

    p = sub.add_parser("solve",
                       help="pick the best protocol and run it once")
    add_instance_args(p)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--t", type=int, required=True)
    p.add_argument("--inputs", nargs="*", default=None)
    p.add_argument("--seed", type=int, default=0)

    sub.add_parser("paper", help="paper artifact -> code index")

    sub.add_parser("summary", help="Section 2.1 summary of results")

    p = sub.add_parser("svg", help="write a figure/panel as SVG")
    add_instance_args(p)
    p.add_argument("--out", required=True, help="output .svg path")
    p.add_argument("--full-figure", action="store_true",
                   help="all six panels instead of one")

    p = sub.add_parser("trace", help="space-time diagram of one run")
    p.add_argument("spec", nargs="?", default=None,
                   help="protocol spec name (omit with --lemma)")
    p.add_argument("--lemma", default=None,
                   help='trace a construction instead, e.g. "Lemma 3.3"')
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--t", type=int, default=1)
    p.add_argument("--rows", type=int, default=120)

    p = sub.add_parser("exhaustive",
                       help="verify a protocol over ALL schedules (tiny n)")
    p.add_argument("spec")
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--t", type=int, required=True)
    p.add_argument("--inputs", nargs="*", default=None)
    p.add_argument("--max-states", type=int, default=200_000)
    p.add_argument("--jobs", type=int, default=None,
                   help="split the root fan-out over N worker processes "
                        "(results are identical for every N)")
    p.add_argument("--shared", action="store_true",
                   help="work-stealing engine with one cross-worker "
                        "visited store (requires --jobs; verdict-"
                        "identical, not bit-identical)")
    p.add_argument("--stop-on-violation", action="store_true",
                   help="abandon the search at the first violation "
                        "(cross-worker cancellation in parallel modes)")
    p.add_argument("--full-dfs", action="store_true",
                   help="disable partial-order reduction (the unreduced "
                        "correctness reference)")
    p.add_argument("--engine", choices=["snapshot", "deepcopy"],
                   default="snapshot",
                   help="state-forking strategy; 'deepcopy' is the legacy "
                        "baseline (message-passing only)")
    p.add_argument("--visited",
                   choices=["exact", "compact", "bitstate", "disk"],
                   default="exact",
                   help="visited-state store: exact dict, hash-compacted, "
                        "fixed-memory bitstate (lossy), or sqlite-backed "
                        "disk table shared across workers")
    p.add_argument("--bitstate-bits", type=int, default=1 << 23,
                   help="bit-array width for --visited bitstate "
                        "(power of two)")
    p.add_argument("--disk-path", default=None,
                   help="sqlite file for --visited disk (default: a "
                        "temporary file deleted after the run)")
    p.add_argument("--symmetry", action="store_true",
                   help="canonicalize states modulo renaming of "
                        "interchangeable processes (auto-disabled where "
                        "unsound, with the reason reported)")
    add_verify_arg(p)

    p = sub.add_parser(
        "certify",
        help="machine-certify the paper's claimed regions at one n",
    )
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--specs", nargs="*", default=None,
                   help="spec-name filter (default: every claim; sim-* "
                        "claims are skipped unless named here)")
    p.add_argument("--ks", type=int, nargs="*", default=None,
                   help="restrict the k grid (default 1..n)")
    p.add_argument("--ts", type=int, nargs="*", default=None,
                   help="restrict the t grid (default 0..n-1)")
    p.add_argument("--visited",
                   choices=["exact", "compact", "bitstate", "disk"],
                   default="exact")
    p.add_argument("--disk-path", default=None,
                   help="sqlite file for --visited disk (default: a "
                        "temporary file deleted after the run)")
    p.add_argument("--shared", action="store_true",
                   help="work-stealing engine with one cross-worker "
                        "visited store (requires --jobs)")
    p.add_argument("--stop-on-violation", action="store_true",
                   help="stop each outside-region exploration at its "
                        "first violation (verdicts unchanged)")
    p.add_argument("--no-symmetry", action="store_true",
                   help="disable symmetry reduction (on by default here)")
    p.add_argument("--max-states", type=int, default=500_000,
                   help="per-exploration budget; exceeding it marks the "
                        "point INCONCLUSIVE")
    p.add_argument("--max-sends", type=int, default=1,
                   help="partial-broadcast crash depth for MP crash plans")
    p.add_argument("--jobs", type=int, default=None)
    p.add_argument("--out", default=None,
                   help="write the repro-certification/1 JSON report here")
    p.add_argument("--witness-dir", default=None,
                   help="save counterexample witness files here")
    p.add_argument("--check-baseline", default=None,
                   help="compare state counts against a committed baseline "
                        "(fail if symmetry reduction regressed)")
    p.add_argument("--write-baseline", default=None,
                   help="write the state-count baseline file and exit")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress lines")

    p = sub.add_parser(
        "verify-run",
        help="replay a witness file and run the oracle stack over it",
    )
    p.add_argument("witness", help="path to a repro-witness/1 JSON file")

    p = sub.add_parser(
        "staticcheck",
        help="AST lint: determinism & protocol-conformance rules",
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (sarif is SARIF 2.1.0)",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to a file instead of stdout",
    )
    p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline of accepted findings "
             "(default: staticcheck-baseline.json when present)",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the run (default: errors only)",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline file "
             "(existing justifications are preserved; rewrites the "
             "file in the v2 fingerprint format)",
    )
    flow_group = p.add_mutually_exclusive_group()
    flow_group.add_argument(
        "--flow", dest="flow", action="store_true", default=True,
        help="run the whole-program FLOW rules (interprocedural "
             "taint, cross-helper decide-once, jobs lease automaton); "
             "on by default",
    )
    flow_group.add_argument(
        "--no-flow", dest="flow", action="store_false",
        help="per-file rules only; skip the whole-program analysis",
    )
    p.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print what a rule id checks and how to suppress it, "
             "then exit",
    )

    p = sub.add_parser("campaign", help="run a persisted validation campaign")
    p.add_argument("--name", default="default")
    p.add_argument("--n", type=int, nargs="*", default=[6, 8])
    p.add_argument("--points", type=int, default=2)
    p.add_argument("--runs", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--specs", nargs="*", default=None, metavar="SPEC",
        help="restrict to these protocol specs (default: all registered)",
    )
    p.add_argument("--out", default=None, help="JSON result path (resumable)")
    add_jobs_arg(p)
    add_engine_arg(p)
    durable = p.add_argument_group(
        "durable execution (repro.jobs)",
        "crash-safe sqlite-backed job queue with supervised workers, "
        "per-shard timeouts, bounded retries with backoff, and resume",
    )
    durable.add_argument(
        "--store", default=None, metavar="DB",
        help="sqlite job-store path; enables durable execution",
    )
    durable.add_argument(
        "--run-id", default=None,
        help="run identifier inside the store (default: campaign name)",
    )
    durable.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume an interrupted run from the store (requires --store; "
             "the campaign definition is loaded from the run row)",
    )
    durable.add_argument(
        "--timeout", type=float, default=300.0,
        help="per-shard timeout in seconds (durable mode)",
    )
    durable.add_argument(
        "--retries", type=int, default=3,
        help="max attempts per shard before it is marked failed",
    )
    durable.add_argument(
        "--backoff", type=float, default=0.1,
        help="base retry backoff in seconds (exponential, jittered)",
    )
    durable.add_argument(
        "--max-shards", type=int, default=None,
        help="stop after settling N shards (interruption drills; the "
             "run stays resumable)",
    )
    chaos = p.add_argument_group(
        "chaos injection (repro.jobs.chaos)",
        "deterministically sabotage worker attempts to exercise the "
        "supervisor; rates are per shard attempt and must sum to <= 1",
    )
    chaos.add_argument("--chaos-kill", type=float, default=0.0,
                       metavar="RATE", help="SIGKILL the worker")
    chaos.add_argument("--chaos-hang", type=float, default=0.0,
                       metavar="RATE",
                       help="hang the worker past its timeout")
    chaos.add_argument("--chaos-error", type=float, default=0.0,
                       metavar="RATE", help="raise a transient exception")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the deterministic fault schedule")

    p = sub.add_parser(
        "diff-resumed",
        help="assert a resumed campaign result is bit-identical to an "
             "uninterrupted reference result",
    )
    p.add_argument("resumed", help="result JSON of the resumed run")
    p.add_argument("reference", help="result JSON of the uninterrupted run")

    return parser


def _cmd_classify(args) -> int:
    model = Model.from_shorthand(args.model)
    validity = by_code(args.validity)
    verdict = classify(model, validity, args.n, args.k, args.t)
    print(
        f"SC(k={args.k}, t={args.t}, {validity.code}) in {model} "
        f"(n={args.n}): {verdict}"
    )
    if verdict.note:
        print(f"  note: {verdict.note}")
    return 0


def _cmd_panel(args) -> int:
    model = Model.from_shorthand(args.model)
    region = region_map(model, by_code(args.validity), args.n)
    print(panel_csv(region) if args.csv else render_panel(region))
    return 0


def _cmd_figure(args) -> int:
    print(render_figure(Model.from_shorthand(args.model), n=args.n))
    return 0


def _cmd_lattice(args) -> int:
    print(render_lattice())
    check = verify_lattice()
    print(
        f"\nverified on {check.samples} random outcomes: "
        f"{'OK' if check.ok else 'FAILED'}"
    )
    return 0 if check.ok else 1


def _cmd_run(args) -> int:
    spec = get_spec(args.spec)
    inputs = args.inputs or [f"v{i}" for i in range(args.n)]
    report = run_spec(spec, args.n, args.k, args.t, inputs, verify=args.verify)
    print(f"protocol : {spec.title} ({spec.lemma})")
    print(f"decisions: {report.outcome.decisions}")
    print(f"verdicts : {report.summary()}")
    return 0 if report.ok else 1


def _cmd_sweep(args) -> int:
    spec = get_spec(args.spec)
    stats = sweep_spec(
        spec, args.n, args.k, args.t,
        SweepConfig(runs=args.runs, seed=args.seed, verify=args.verify),
        jobs=args.jobs,
        engine=args.engine,
    )
    print(stats.summary())
    if stats.execution:
        print(f"  engine {stats.engine}: {stats.execution}")
    if stats.fallback_reason:
        print(f"  fallback reason: {stats.fallback_reason}")
    for violation in stats.violations[:10]:
        print(f"  !! run {violation.run_index} [{violation.pattern}]: "
              f"{violation.detail}")
    return 0 if stats.clean else 1


def _cmd_attack(args) -> int:
    spec = get_spec(args.spec)
    result = search_worst_run(
        spec, args.n, args.k, args.t,
        attempts=args.attempts, seed=args.seed, jobs=args.jobs,
        verify=args.verify,
    )
    print(result.summary())
    if result.best_report is not None:
        print(f"  worst decisions: {result.best_report.outcome.decisions}")
    if args.save_witness:
        import pathlib

        from repro.harness.attack import record_best_witness
        from repro.verify.witness import save_witness

        try:
            witness = record_best_witness(result)
        except ValueError as reason:
            print(f"  cannot save witness: {reason}")
            return 2
        save_witness(witness, pathlib.Path(args.save_witness))
        print(f"  witness: {args.save_witness} "
              f"({len(witness.choices)} choices, kind={witness.kind})")
    return 0 if not result.violations_found else 1


def _cmd_construct(args) -> int:
    failures = 0
    for result in all_constructions():
        if args.lemma and result.lemma_id != args.lemma:
            continue
        status = "ok" if result.demonstrates_violation else "FAILED"
        print(f"[{status}] {result.summary()}")
        failures += not result.demonstrates_violation
    return 0 if not failures else 1


def _cmd_protocols(args) -> int:
    for spec in all_specs():
        print(
            f"{spec.name:28s} {spec.model.shorthand:7s} {spec.validity:4s} "
            f"{spec.lemma}"
        )
    return 0


def _cmd_recommend(args) -> int:
    from repro.protocols.select import NoProtocolAvailable, candidates

    model = Model.from_shorthand(args.model)
    validity = by_code(args.validity)
    options = candidates(model, validity, args.n, args.k, args.t)
    if not options:
        from repro.protocols.select import recommend

        try:
            recommend(model, validity, args.n, args.k, args.t)
        except NoProtocolAvailable as reason:
            print(reason)
            return 1
    print(
        f"protocols for SC(k={args.k}, t={args.t}, {validity.code}) in "
        f"{model} (n={args.n}), cheapest first:"
    )
    for spec in options:
        print(f"  {spec.name:28s} {spec.title} ({spec.lemma})")
    return 0


def _cmd_solve(args) -> int:
    from repro.protocols.select import NoProtocolAvailable, solve

    model = Model.from_shorthand(args.model)
    validity = by_code(args.validity)
    inputs = args.inputs or [f"v{i}" for i in range(args.n)]
    try:
        report = solve(model, validity, inputs, args.k, args.t, seed=args.seed)
    except NoProtocolAvailable as reason:
        print(reason)
        return 1
    print(f"decisions: {report.outcome.decisions}")
    print(f"verdicts : {report.summary()}")
    return 0 if report.ok else 1


def _cmd_paper(args) -> int:
    from repro.paper import render_index

    print(render_index())
    return 0


def _cmd_summary(args) -> int:
    from repro.analysis.summary import render_summary

    print(render_summary())
    return 0


def _cmd_svg(args) -> int:
    import pathlib

    from repro.analysis.svg import figure_svg, panel_svg

    model = Model.from_shorthand(args.model)
    if args.full_figure:
        content = figure_svg(model, n=args.n)
    else:
        region = region_map(model, by_code(args.validity), args.n)
        content = panel_svg(region)
    from repro.io import atomic_write_text

    path = pathlib.Path(args.out)
    atomic_write_text(path, content)
    print(f"wrote {path} ({len(content)} bytes)")
    return 0


def _cmd_trace(args) -> int:
    from repro.analysis.spacetime import render_spacetime

    if args.lemma:
        for result in all_constructions():
            if result.lemma_id == args.lemma:
                print(result.summary())
                print()
                print(render_spacetime(
                    result.report.result.trace,
                    result.report.outcome.n,
                    max_rows=args.rows,
                ))
                return 0
        print(f"no construction for {args.lemma!r}")
        return 1
    if not args.spec:
        print("provide a protocol spec name or --lemma")
        return 2
    spec = get_spec(args.spec)
    report = run_spec(
        spec, args.n, args.k, args.t,
        [f"v{i}" for i in range(args.n)],
    )
    print(report.summary())
    print()
    print(render_spacetime(report.result.trace, args.n, max_rows=args.rows))
    if not report.ok:
        from repro.analysis.forensics import first_violation

        located = first_violation(
            report.result.trace, report.outcome, args.k,
            by_code(spec.validity),
        )
        if located is not None:
            print(f"\nforensics: {located}")
    return 0 if report.ok else 1


def _cmd_exhaustive(args) -> int:
    from repro.harness.exhaustive import (
        SpecFactory,
        VisitedSpec,
        explore_mp,
        explore_sm,
    )

    spec = get_spec(args.spec)
    inputs = args.inputs or [f"v{i}" for i in range(args.n)]
    validity = by_code(spec.validity)
    # A SpecFactory (not a lambda) so worker processes can unpickle it.
    factory = SpecFactory(spec.name, args.n, args.k, args.t)
    visited = VisitedSpec(
        kind=args.visited,
        bitstate_bits=args.bitstate_bits,
        disk_path=args.disk_path,
    )
    if args.shared and args.jobs is None:
        print("--shared requires --jobs")
        return 2
    if spec.is_shared_memory:
        if args.engine == "deepcopy":
            print("the deepcopy engine applies to message-passing specs only")
            return 2
        result = explore_sm(
            factory, inputs, args.k, args.t, validity,
            max_states=args.max_states,
            verify=args.verify,
            jobs=args.jobs,
            visited=visited,
            symmetry=args.symmetry,
            shared=args.shared,
            stop_on_violation=args.stop_on_violation,
        )
    else:
        result = explore_mp(
            factory, inputs, args.k, args.t, validity,
            max_states=args.max_states,
            verify=args.verify,
            por=not args.full_dfs,
            engine=args.engine,
            jobs=args.jobs,
            visited=visited,
            symmetry=args.symmetry,
            shared=args.shared,
            stop_on_violation=args.stop_on_violation,
        )
    if result.exhausted:
        coverage = "exhaustive"
    elif args.stop_on_violation and result.violations:
        coverage = "stopped at first violation"
    else:
        coverage = "budget-capped"
    print(
        f"explored {result.states} states / {result.runs} complete runs "
        f"({coverage})"
    )
    stats = result.stats
    if stats.shared_store:
        print(
            f"shared frontier: {stats.stolen_subtrees} stolen subtrees, "
            f"{stats.shared_hits} shared-store hits, "
            f"{stats.reexplored_states} re-explored states, "
            f"{stats.worker_failures} worker failures"
        )
    if args.symmetry:
        if stats.symmetry:
            print(
                f"symmetry: group of {stats.group_size} permutations, "
                f"{stats.canonicalizations} canonicalizations, "
                f"{stats.orbit_hits} orbit hits"
            )
        else:
            print(f"symmetry: disabled ({stats.symmetry_reason})")
    if stats.visited_store != "exact":
        line = f"visited store: {stats.visited_store}"
        if stats.visited_store == "bitstate":
            line += (
                f" ({stats.bitstate_set_bits}/{stats.bitstate_bits} bits, "
                f"saturation {stats.bitstate_saturation:.2%}, "
                f"expected false hits {stats.bitstate_fp_budget:.3g})"
            )
        print(line)
    probes = result.cache_hits + result.cache_misses
    if probes:
        print(
            f"visited-state store: {result.cache_hits} hits / "
            f"{probes} probes ({result.cache_hit_rate:.1%})"
        )
    if result.sleep_pruned:
        print(
            f"partial-order reduction: {result.sleep_pruned} branches "
            f"slept, {result.reexpansions} partial re-expansions"
        )
    if result.replays:
        print(
            f"prefix sharing: {result.replays} replays / "
            f"{result.replayed_steps} replayed steps"
        )
    print(f"max distinct decisions: {result.max_distinct_decisions}")
    print(f"violations: {len(result.violations)}")
    for path, verdicts in result.violations[:5]:
        print(f"  !! schedule {path}: {verdicts}")
    return 0 if result.all_ok else 1


def _cmd_certify(args) -> int:
    import json
    import pathlib

    from repro.harness.exhaustive import VisitedSpec
    from repro.verify.certify import certify_claims

    progress = None if args.quiet else (lambda line: print(f"  {line}"))
    if args.shared and args.jobs is None:
        print("--shared requires --jobs")
        return 2
    visited: object = args.visited
    if args.visited == "disk" or args.disk_path:
        visited = VisitedSpec(kind=args.visited, disk_path=args.disk_path)
    report = certify_claims(
        n=args.n,
        specs=args.specs,
        ks=args.ks,
        ts=args.ts,
        visited=visited,
        symmetry=not args.no_symmetry,
        max_states=args.max_states,
        jobs=args.jobs,
        max_sends=args.max_sends,
        witness_dir=args.witness_dir,
        progress=progress,
        shared=args.shared,
        stop_on_violation=args.stop_on_violation,
    )
    counts = report.verdict_counts()
    summary = ", ".join(
        f"{count} {verdict}" for verdict, count in counts.items() if count
    )
    print(
        f"certified {len(report.claims)} claims at n={report.n} "
        f"({report.total_states} states): {summary}"
    )
    if report.shared:
        stolen = sum(p.stolen_subtrees for c in report.claims
                     for p in c.points)
        redone = sum(p.reexplored_states for c in report.claims
                     for p in c.points)
        print(
            f"shared frontier: {stolen} stolen subtrees, "
            f"{redone} re-explored states"
        )
    reasons = sorted({
        p.symmetry_reason for c in report.claims for p in c.points
        if p.symmetry_reason
    })
    for reason in reasons:
        print(f"symmetry disabled: {reason}")
    if report.skipped_specs:
        print(f"skipped sim claims: {', '.join(report.skipped_specs)}")
    if args.out:
        report.save(args.out)
        print(f"wrote {args.out}")
    if args.write_baseline:
        from repro.io import atomic_write_text

        atomic_write_text(
            args.write_baseline,
            json.dumps(_certify_baseline(report), indent=2, sort_keys=True)
            + "\n",
        )
        print(f"wrote baseline {args.write_baseline}")
        return 0
    ok = report.ok
    if args.check_baseline:
        baseline = json.loads(pathlib.Path(args.check_baseline).read_text())
        failures = _check_certify_baseline(report, baseline)
        for line in failures:
            print(f"BASELINE: {line}")
        ok = ok and not failures
        if not failures:
            print(f"baseline check passed ({args.check_baseline})")
    return 0 if ok else 1


def _certify_baseline(report) -> dict:
    """State-count baseline: the certified verdict and cost per point."""
    points = {}
    for claim in report.claims:
        for point in claim.points:
            key = f"{claim.spec_name}:k={point.k}:t={point.t}"
            points[key] = {"verdict": point.verdict, "states": point.states}
    return {
        "format": "repro-certify-baseline/1",
        "n": report.n,
        "visited": report.visited,
        "symmetry": report.symmetry,
        "points": points,
    }


def _check_certify_baseline(report, baseline: dict) -> List[str]:
    """Fail on changed verdicts or state counts above the baseline.

    Exploration is deterministic, so equal configurations must reproduce
    the baseline verdicts exactly; a state count *above* the recorded
    one means the symmetry/POR reduction regressed.
    """
    failures = []
    recorded = baseline.get("points", {})
    current = _certify_baseline(report)["points"]
    for key, expected in sorted(recorded.items()):
        actual = current.get(key)
        if actual is None:
            failures.append(f"{key}: missing from this run")
            continue
        if actual["verdict"] != expected["verdict"]:
            failures.append(
                f"{key}: verdict {actual['verdict']} != "
                f"baseline {expected['verdict']}"
            )
        if actual["states"] > expected["states"]:
            failures.append(
                f"{key}: {actual['states']} states > "
                f"baseline {expected['states']} (reduction regressed)"
            )
    return failures


def _cmd_campaign(args) -> int:
    import pathlib

    from repro.harness.campaign import (
        Campaign,
        run_campaign,
        run_campaign_durable,
    )

    result_path = pathlib.Path(args.out) if args.out else None
    if args.resume and not args.store:
        print("--resume requires --store", file=sys.stderr)
        return 2
    spec_names = tuple(args.specs) if args.specs else None
    if not args.store:
        campaign = Campaign(
            name=args.name,
            n_values=tuple(args.n),
            points_per_spec=args.points,
            runs_per_point=args.runs,
            seed=args.seed,
            spec_names=spec_names,
            engine=args.engine,
        )
        result = run_campaign(campaign, result_path=result_path,
                              jobs=args.jobs)
        print(result.summary())
        for record in result.violating()[:10]:
            print(f"  !! {record.key}: {record.violations} violations")
        return 0 if result.clean else 1

    from repro.jobs import ChaosPolicy, JobStore, RetryPolicy

    policy = RetryPolicy(
        max_attempts=args.retries,
        timeout=args.timeout,
        backoff_base=args.backoff,
    )
    chaos = None
    if args.chaos_kill or args.chaos_hang or args.chaos_error:
        chaos = ChaosPolicy(
            seed=args.chaos_seed,
            kill_rate=args.chaos_kill,
            hang_rate=args.chaos_hang,
            error_rate=args.chaos_error,
        )
    if args.resume:
        campaign, run_id = None, args.resume
    else:
        campaign = Campaign(
            name=args.name,
            n_values=tuple(args.n),
            points_per_spec=args.points,
            runs_per_point=args.runs,
            seed=args.seed,
            spec_names=spec_names,
            engine=args.engine,
        )
        run_id = args.run_id or campaign.name
    with JobStore(args.store) as store:
        try:
            result, report = run_campaign_durable(
                store,
                campaign=campaign,
                run_id=run_id,
                jobs=args.jobs,
                policy=policy,
                chaos=chaos,
                max_shards=args.max_shards,
                result_path=result_path,
            )
        except KeyError as err:
            print(f"cannot resume: {err.args[0]}", file=sys.stderr)
            return 2
    print(result.summary())
    print(f"  execution: {report.describe()}")
    remaining = report.remaining
    if report.stopped_early:
        print(
            f"  INCOMPLETE: {remaining.get('pending', 0)} pending / "
            f"{remaining.get('leased', 0)} leased / "
            f"{remaining.get('failed', 0)} failed shards remain; "
            f"resume with: repro campaign --store {args.store} "
            f"--resume {run_id}"
        )
    for record in result.violating()[:10]:
        print(f"  !! {record.key}: {record.violations} violations")
    if report.stopped_early:
        return 3
    return 0 if result.clean and not report.failed else 1


def _cmd_diff_resumed(args) -> int:
    from repro.verify.differential import diff_resumed_files

    diff = diff_resumed_files(args.resumed, args.reference)
    print(diff.summary())
    for index, got, want in diff.mismatches[:10]:
        print(f"  !! record {index}: resumed={got} reference={want}")
    return 0 if diff.ok else 1


def _cmd_verify_run(args) -> int:
    import pathlib

    from repro.verify.witness import load_witness, verify_witness

    path = pathlib.Path(args.witness)
    try:
        witness = load_witness(path)
    except (OSError, ValueError) as reason:
        print(f"cannot load witness: {reason}")
        return 2
    print(f"witness : {witness.describe()}")
    report = verify_witness(witness)
    print(f"replay  : {report.summary()}")
    for violation in report.violations:
        print(f"  !! {violation}")
    if not report.deterministic:
        return 2
    return 1 if report.violations else 0


def _cmd_staticcheck(args) -> int:
    from repro.staticcheck import (
        DEFAULT_BASELINE_NAME,
        UsageError,
        explain,
        render,
        run_check,
        write_baseline,
    )

    if args.explain is not None:
        try:
            print(explain(args.explain))
        except UsageError as reason:
            print(f"staticcheck: {reason}", file=sys.stderr)
            return 2
        return 0
    if args.no_baseline:
        baseline_path = None
        explicit = False
    elif args.baseline is not None:
        baseline_path = args.baseline
        explicit = True
    else:
        baseline_path = DEFAULT_BASELINE_NAME
        explicit = False
    try:
        report = run_check(
            args.paths,
            baseline_path=baseline_path,
            explicit_baseline=explicit,
            strict=args.strict,
            flow=args.flow,
        )
        if args.write_baseline:
            target = baseline_path or DEFAULT_BASELINE_NAME
            baseline = write_baseline(report, target)
            print(f"wrote {target} ({len(baseline.entries)} entries)")
            return 0
        output = render(report, args.format)
    except UsageError as reason:
        print(f"staticcheck: {reason}", file=sys.stderr)
        return 2
    if args.out:
        from repro.io import atomic_write_text

        atomic_write_text(args.out, output + "\n")
        print(f"wrote {args.out}")
    else:
        print(output)
    return report.exit_code


_DISPATCH = {
    "classify": _cmd_classify,
    "panel": _cmd_panel,
    "figure": _cmd_figure,
    "lattice": _cmd_lattice,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "attack": _cmd_attack,
    "construct": _cmd_construct,
    "protocols": _cmd_protocols,
    "recommend": _cmd_recommend,
    "solve": _cmd_solve,
    "paper": _cmd_paper,
    "summary": _cmd_summary,
    "svg": _cmd_svg,
    "trace": _cmd_trace,
    "exhaustive": _cmd_exhaustive,
    "certify": _cmd_certify,
    "campaign": _cmd_campaign,
    "diff-resumed": _cmd_diff_resumed,
    "verify-run": _cmd_verify_run,
    "staticcheck": _cmd_staticcheck,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _DISPATCH[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
