"""Throughput of the exhaustive schedule explorer.

The explorer's practical reach is bounded by state-expansion rate and
dedup effectiveness; this bench pins both so regressions in the kernel
fork path (``deepcopy`` cost) or the fingerprint function show up.
"""

from repro.core.validity import RV2
from repro.harness.exhaustive import explore_mp, explore_sm
from repro.protocols.protocol_a import ProtocolA
from repro.protocols.protocol_e import protocol_e


def test_mp_exploration_throughput(benchmark):
    def explore():
        return explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "w"], k=2, t=1, validity=RV2,
        )

    result = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert result.exhausted and result.all_ok
    # dedup keeps the state count far below the raw interleaving count
    assert result.states < 10_000
    print(f"\n  MP n=3: {result.states} states, {result.runs} complete runs")


def test_sm_exploration_throughput(benchmark):
    def explore():
        return explore_sm(
            lambda: [protocol_e] * 2, ["a", "b"], k=2, t=2, validity=RV2,
        )

    result = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert result.exhausted and result.all_ok
    print(f"\n  SM n=2: {result.states} prefixes, {result.runs} complete runs")


def test_dedup_effectiveness(benchmark):
    def compare():
        with_dedup = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "v"], k=2, t=1, validity=RV2, dedup=True,
        )
        without = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "v"], k=2, t=1, validity=RV2,
            dedup=False, max_states=100_000,
        )
        return with_dedup, without

    with_dedup, without = benchmark.pedantic(compare, rounds=1, iterations=1)
    ratio = without.states / with_dedup.states
    print(f"\n  dedup shrinks the state space {ratio:.1f}x "
          f"({without.states} -> {with_dedup.states})")
    assert ratio > 2.0
