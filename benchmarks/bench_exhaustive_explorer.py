"""Exhaustive explorer throughput: snapshot/restore vs deepcopy forking.

Measures the three mechanisms of the fast-fork explorer against the
legacy ``copy.deepcopy``-per-edge baseline (kept as
``engine="deepcopy"``), all on the same instances in the same run:

* **states/sec** -- snapshot+POR (the default engine) against the
  deepcopy full-DFS baseline, both expanding the same budget of
  distinct states on the n=4 PROTOCOL A grid;
* **POR reduction** -- states/runs/probes of sleep-set exploration
  against the unreduced full DFS on exhaustible n=3 points, asserting
  both see identical decision sets and violation kinds;
* **visited-store effectiveness** -- cache hit rate over probes;
* **symmetry reduction** -- POR-only against POR+process-permutation
  symmetry on instances with interchangeable processes, asserting equal
  findings and strictly fewer states (the n=4 chaudhuri uniform point
  is the headline: POR alone exhausts its 400k budget, the quotient
  finishes in ~24k states);
* **event allocation** -- ``__slots__``-backed frozen events against a
  ``__dict__``-backed clone (the pre-slots layout);
* **shared frontier** -- the work-stealing engine with one cross-worker
  visited store against the private-store frontier at the same worker
  count, rated in *useful* states/sec (the serial reference state count
  over wall time, so duplicate work shows up as lost rate, not gained);
* **early exit** -- ``stop_on_violation`` wall time against the full
  sweep on outside-region (violating) points, serial and shared.

Run as a script to (re)generate ``BENCH_exhaustive.json`` at the
repository root::

    python benchmarks/bench_exhaustive_explorer.py            # full
    python benchmarks/bench_exhaustive_explorer.py --smoke    # quick CI run
    python benchmarks/bench_exhaustive_explorer.py --check-baseline

``--check-baseline`` re-explores the pinned POR grid and fails (exit 1)
if any point now expands *more* states than the committed artifact
records -- the partial-order-reduction regression guard.  It never
rewrites the artifact.

Under ``pytest benchmarks/ --benchmark-only`` a smoke-sized measurement
runs without touching the JSON artifact.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

from repro.core.validity import RV1, RV2, SV2
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.exhaustive import SpecFactory, explore_mp
from repro.io import atomic_write_json
from repro.protocols.ablations import ProtocolBStrictQuorum
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_a import ProtocolA
from repro.runtime.events import Delivery

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_exhaustive.json"

#: Throughput instance: the n=4 PROTOCOL A grid point of the issue
#: target.  Both engines expand the same number of distinct states
#: (the budget cap), so rates are directly comparable.
THROUGHPUT_N = 4
THROUGHPUT_INPUTS = ("v", "v", "w", "w")
THROUGHPUT_K = 2
THROUGHPUT_T = 1
FULL_CAP = 10_000
SMOKE_CAP = 1_500

ALLOC_COUNT_FULL = 200_000
ALLOC_COUNT_SMOKE = 20_000

#: Pinned exhaustible points for the POR reduction ratio and the
#: ``--check-baseline`` regression guard.  Every point fully exhausts,
#: so state counts are properties of the algorithm, not of a budget.
POR_GRID = (
    {
        "name": "protocol-a n=3 failure-free",
        "protocol": "a",
        "inputs": ("v", "v", "w"),
        "k": 2, "t": 1,
        "crash": None,
    },
    {
        "name": "protocol-a n=3 crash p0@1send",
        "protocol": "a",
        "inputs": ("v", "v", "w"),
        "k": 2, "t": 1,
        "crash": ("sends", 0, 1),
    },
    {
        "name": "strict-quorum ablation n=3 (violating)",
        "protocol": "b-strict",
        "inputs": ("w", "v", "v"),
        "k": 2, "t": 1,
        "crash": ("steps", 0, 1),
    },
)

#: Symmetry-reduction series: POR-only vs POR+symmetry.  ``smoke``
#: marks the points cheap enough for CI; ``guard`` marks the ones the
#: ``--check-baseline`` regression guard re-measures.  ``cap`` bounds
#: the POR-only side where it cannot exhaust (the symmetry side must
#: always exhaust -- that asymmetry *is* the result).
SYM_GRID = (
    {
        "name": "protocol-a n=3 (v,v,w)",
        "protocol": "a",
        "inputs": ("v", "v", "w"),
        "k": 2, "t": 1,
        "crash": None,
        "smoke": True, "guard": True, "cap": 200_000,
    },
    {
        "name": "protocol-a n=4 (v,v,v,w)",
        "protocol": "a",
        "inputs": ("v", "v", "v", "w"),
        "k": 2, "t": 1,
        "crash": None,
        "smoke": False, "guard": False, "cap": 400_000,
    },
    {
        "name": "chaudhuri n=4 uniform",
        "protocol": "chaudhuri",
        "inputs": ("v", "v", "v", "v"),
        "k": 3, "t": 2,
        "crash": None,
        "smoke": False, "guard": False, "cap": 400_000,
    },
)


#: Shared-frontier series: private-store frontier vs the work-stealing
#: shared-store engine at the same worker count.  Both are rated in
#: useful states/sec = serial reference states / wall seconds, so the
#: private engine's duplicate re-exploration shows up as lost rate.
SHARED_GRID = (
    {
        "name": "protocol-a n=3 (v,v,w) jobs=2",
        "protocol": "a",
        "inputs": ("v", "v", "w"),
        "k": 2, "t": 1,
        "crash": None,
        "jobs": 2, "visited": "compact", "cap": 200_000,
        "smoke": True,
    },
    {
        "name": "chaudhuri n=4 uniform jobs=4",
        "protocol": "chaudhuri",
        "inputs": ("v", "v", "v", "v"),
        "k": 3, "t": 0,
        "crash": None,
        "jobs": 4, "visited": "compact", "cap": 400_000,
        "smoke": False, "repeats": 2,
    },
)

#: Early-exit series: outside-region points where the full sweep keeps
#: exploring long after the first counterexample.  ``guard`` points pin
#: the *serial* early-exit state count (deterministic) in the artifact;
#: exceeding it later means the search order now reaches the first
#: violation more slowly.
EARLY_EXIT_GRID = (
    {
        "name": "protocol-a n=3 k=1 (outside)",
        "protocol": "a",
        "inputs": ("v", "v", "w"),
        "k": 1, "t": 1,
        "crash": None,
        "jobs": 2, "visited": "compact", "cap": 200_000,
        "smoke": True, "guard": True,
    },
    {
        "name": "chaudhuri n=4 k=2 t=2 (outside)",
        "protocol": "chaudhuri",
        "inputs": ("v", "w", "x", "y"),
        "k": 2, "t": 2,
        "crash": None,
        "jobs": 2, "visited": "compact", "cap": 150_000,
        "smoke": False, "guard": False,
    },
)


def _grid_factory(point: Dict[str, Any]):
    n = len(point["inputs"])
    if point["protocol"] == "a":
        return lambda: [ProtocolA() for _ in range(n)]
    if point["protocol"] == "chaudhuri":
        return lambda: [ChaudhuriKSet() for _ in range(n)]
    return lambda: [ProtocolBStrictQuorum() for _ in range(n)]


def _grid_adversary(point: Dict[str, Any]) -> Optional[CrashPlan]:
    crash = point["crash"]
    if crash is None:
        return None
    kind, victim, count = crash
    crash_point = (
        CrashPoint(after_sends=count)
        if kind == "sends" else CrashPoint(after_steps=count)
    )
    return CrashPlan({victim: crash_point})


def _grid_validity(point: Dict[str, Any]):
    if point["protocol"] == "b-strict":
        return SV2
    if point["protocol"] == "chaudhuri":
        return RV1
    return RV2


def _measure_engine(engine: str, por: bool, cap: int) -> Dict[str, Any]:
    """One throughput point: states/sec at a fixed expansion budget."""
    started = time.perf_counter()
    result = explore_mp(
        lambda: [ProtocolA() for _ in range(THROUGHPUT_N)],
        list(THROUGHPUT_INPUTS),
        k=THROUGHPUT_K, t=THROUGHPUT_T, validity=RV2,
        max_states=cap, engine=engine, por=por,
    )
    elapsed = time.perf_counter() - started
    assert result.all_ok, result.violations[:2]
    return {
        "engine": engine,
        "por": por,
        "states": result.states,
        "runs": result.runs,
        "seconds": round(elapsed, 4),
        "states_per_sec": (
            round(result.states / elapsed, 1) if elapsed > 0 else None
        ),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "cache_hit_rate": round(result.cache_hit_rate, 4),
        "sleep_pruned": result.sleep_pruned,
        "reexpansions": result.reexpansions,
    }


def _measure_por_point(point: Dict[str, Any]) -> Dict[str, Any]:
    """Full DFS vs POR on one exhaustible point; asserts equivalence."""
    kwargs = dict(
        inputs=list(point["inputs"]),
        k=point["k"], t=point["t"],
        validity=_grid_validity(point),
        crash_adversary=_grid_adversary(point),
    )
    full = explore_mp(_grid_factory(point), por=False, **kwargs)
    por = explore_mp(_grid_factory(point), por=True, **kwargs)
    assert full.exhausted and por.exhausted, point["name"]
    assert full.decision_sets == por.decision_sets, point["name"]
    assert full.violation_kinds() == por.violation_kinds(), point["name"]
    assert por.states <= full.states, (
        f"{point['name']}: POR expanded more states "
        f"({por.states} > {full.states})"
    )
    return {
        "point": point["name"],
        "full_states": full.states,
        "por_states": por.states,
        "full_runs": full.runs,
        "por_runs": por.runs,
        "full_probes": full.cache_hits + full.cache_misses,
        "por_probes": por.cache_hits + por.cache_misses,
        "states_reduction": round(por.states / full.states, 4),
        "runs_reduction": round(por.runs / full.runs, 4),
        "violations": len(por.violations),
    }


def _measure_sym_point(point: Dict[str, Any]) -> Dict[str, Any]:
    """POR-only vs POR+symmetry on one instance; asserts equivalence.

    The symmetry side must exhaust; the POR-only side may hit ``cap``
    (recorded in ``por_exhausted``), in which case only the violation
    verdicts are comparable -- when both exhaust, decision sets must
    match exactly.
    """
    kwargs = dict(
        inputs=list(point["inputs"]),
        k=point["k"], t=point["t"],
        validity=_grid_validity(point),
        crash_adversary=_grid_adversary(point),
        max_states=point["cap"],
    )
    por = explore_mp(_grid_factory(point), **kwargs)
    sym = explore_mp(_grid_factory(point), symmetry=True, **kwargs)
    assert sym.exhausted, f"{point['name']}: symmetry side must exhaust"
    assert sym.stats.symmetry, f"{point['name']}: symmetry was disabled"
    assert sym.violation_kinds() == por.violation_kinds(), point["name"]
    if por.exhausted:
        assert sym.decision_sets == por.decision_sets, point["name"]
    assert sym.states < por.states, (
        f"{point['name']}: symmetry explored {sym.states} >= "
        f"POR-only {por.states}"
    )
    return {
        "point": point["name"],
        "por_states": por.states,
        "por_exhausted": por.exhausted,
        "sym_states": sym.states,
        "group_size": sym.stats.group_size,
        "canonicalizations": sym.stats.canonicalizations,
        "orbit_hits": sym.stats.orbit_hits,
        "states_reduction": round(sym.states / por.states, 4),
        "violations": len(sym.violations),
    }


def _grid_kwargs(point: Dict[str, Any]) -> Dict[str, Any]:
    return dict(
        inputs=list(point["inputs"]),
        k=point["k"], t=point["t"],
        validity=_grid_validity(point),
        crash_adversary=_grid_adversary(point),
        max_states=point["cap"],
    )


#: Registered spec names for the grid protocols that run under worker
#: processes (the factory must be picklable there; lambdas are not).
_SPEC_NAMES = {"a": "protocol-a@mp-cr", "chaudhuri": "chaudhuri@mp-cr"}


def _timed_explore(point: Dict[str, Any], **overrides):
    kwargs = _grid_kwargs(point)
    kwargs.update(overrides)
    factory = SpecFactory(
        _SPEC_NAMES[point["protocol"]],
        len(point["inputs"]), point["k"], point["t"],
    )
    started = time.perf_counter()
    result = explore_mp(factory, **kwargs)
    return result, time.perf_counter() - started


def _assert_verdict_equal(name: str, reference, candidate) -> None:
    assert candidate.violation_kinds() == reference.violation_kinds(), name
    assert candidate.decision_sets == reference.decision_sets, name
    assert candidate.all_ok == reference.all_ok, name


def _measure_shared_point(point: Dict[str, Any]) -> Dict[str, Any]:
    """Private frontier vs shared work-stealing at equal worker count.

    All runs must exhaust and agree on findings; the comparison metric
    is useful states/sec = serial states / wall seconds, which charges
    both parallel modes for their duplicate work.  ``repeats`` rounds
    are interleaved (serial, private, shared, serial, ...) and each
    leg keeps its best wall time: single-core VM throughput drifts on
    a scale of minutes, so back-to-back interleaving keeps the ratio
    from comparing legs measured under different machine conditions.
    """
    jobs = point["jobs"]
    serial = private = shared = None
    serial_s = private_s = shared_s = math.inf
    for _ in range(point.get("repeats", 1)):
        serial, seconds = _timed_explore(point)
        serial_s = min(serial_s, seconds)
        private, seconds = _timed_explore(point, jobs=jobs)
        private_s = min(private_s, seconds)
        shared, seconds = _timed_explore(
            point, jobs=jobs, shared=True, visited=point["visited"],
        )
        shared_s = min(shared_s, seconds)
        for name, result in (
            ("serial", serial), ("private", private), ("shared", shared)
        ):
            assert result.exhausted, f"{point['name']}: {name} hit the cap"
        _assert_verdict_equal(point["name"], serial, private)
        _assert_verdict_equal(point["name"], serial, shared)
    useful = serial.states

    def rate(seconds: float) -> Optional[float]:
        return round(useful / seconds, 1) if seconds > 0 else None

    return {
        "point": point["name"],
        "jobs": jobs,
        "visited": point["visited"],
        "serial_states": useful,
        "serial_seconds": round(serial_s, 4),
        "private_states": private.states,
        "private_seconds": round(private_s, 4),
        "shared_states": shared.states,
        "shared_seconds": round(shared_s, 4),
        "serial_useful_states_per_sec": rate(serial_s),
        "private_useful_states_per_sec": rate(private_s),
        "shared_useful_states_per_sec": rate(shared_s),
        "shared_speedup_vs_private": (
            round(private_s / shared_s, 2) if shared_s > 0 else None
        ),
        "duplicate_work_ratio_private": round(private.states / useful, 3),
        "duplicate_work_ratio_shared": round(shared.states / useful, 3),
        "stolen_subtrees": shared.stats.stolen_subtrees,
        "shared_hits": shared.stats.shared_hits,
        "reexplored_states": shared.stats.reexplored_states,
    }


def _measure_early_exit_point(point: Dict[str, Any]) -> Dict[str, Any]:
    """Full sweep vs ``stop_on_violation`` on an outside-region point."""
    full, full_s = _timed_explore(point)
    early, early_s = _timed_explore(point, stop_on_violation=True)
    shared_early, shared_early_s = _timed_explore(
        point, stop_on_violation=True, shared=True,
        jobs=point["jobs"], visited=point["visited"],
    )
    assert full.violations, f"{point['name']}: not an outside point"
    for name, result in (("serial", early), ("shared", shared_early)):
        assert result.violations, f"{point['name']}: {name} early exit"
        assert not result.all_ok, point["name"]
        assert result.violation_kinds() <= full.violation_kinds(), (
            point["name"]
        )
    assert early.states < full.states, point["name"]
    return {
        "point": point["name"],
        "jobs": point["jobs"],
        "visited": point["visited"],
        "full_states": full.states,
        "full_exhausted": full.exhausted,
        "full_seconds": round(full_s, 4),
        "full_violations": len(full.violations),
        "early_exit_states": early.states,
        "early_exit_seconds": round(early_s, 4),
        "shared_early_exit_states": shared_early.states,
        "shared_early_exit_seconds": round(shared_early_s, 4),
        "early_exit_speedup": (
            round(full_s / early_s, 2) if early_s > 0 else None
        ),
        "shared_early_exit_speedup": (
            round(full_s / shared_early_s, 2) if shared_early_s > 0 else None
        ),
    }


def _measure_event_allocation(count: int) -> Dict[str, Any]:
    """``__slots__`` events against the pre-slots ``__dict__`` layout."""

    @dataclasses.dataclass(frozen=True)
    class DictDelivery:  # the layout events.py had before slots=True
        seq: int
        sender: int
        receiver: int
        payload: Any

    def alloc(cls) -> float:
        started = time.perf_counter()
        for i in range(count):
            cls(i, 0, 1, ("VAL", i))
        return time.perf_counter() - started

    alloc(Delivery)  # warm-up
    slots_seconds = alloc(Delivery)
    dict_seconds = alloc(DictDelivery)
    slotted = Delivery(0, 0, 1, ("VAL", 0))
    boxed = DictDelivery(0, 0, 1, ("VAL", 0))
    return {
        "count": count,
        "slots_seconds": round(slots_seconds, 4),
        "dict_seconds": round(dict_seconds, 4),
        "slots_allocs_per_sec": round(count / slots_seconds, 1),
        "dict_allocs_per_sec": round(count / dict_seconds, 1),
        "alloc_speedup": round(dict_seconds / slots_seconds, 3),
        "slots_bytes": sys.getsizeof(slotted),
        "dict_bytes": sys.getsizeof(boxed) + sys.getsizeof(boxed.__dict__),
    }


def run_suite(smoke: bool = False) -> Dict[str, Any]:
    """Measure everything; returns the JSON-ready payload."""
    cap = SMOKE_CAP if smoke else FULL_CAP

    throughput = {
        "cap": cap,
        "deepcopy_full_dfs": _measure_engine("deepcopy", False, cap),
        "snapshot_full_dfs": _measure_engine("snapshot", False, cap),
        "snapshot_por": _measure_engine("snapshot", True, cap),
    }
    base = throughput["deepcopy_full_dfs"]["states_per_sec"]
    fast = throughput["snapshot_por"]["states_per_sec"]
    mech = throughput["snapshot_full_dfs"]["states_per_sec"]
    throughput["speedup_snapshot_por_vs_deepcopy"] = round(fast / base, 2)
    throughput["speedup_snapshot_vs_deepcopy_full_dfs"] = round(mech / base, 2)

    por_points = [_measure_por_point(point) for point in POR_GRID]
    sym_points = [
        _measure_sym_point(point)
        for point in SYM_GRID
        if point["smoke"] or not smoke
    ]
    shared_points = [
        _measure_shared_point(point)
        for point in SHARED_GRID
        if point["smoke"] or not smoke
    ]
    early_points = [
        _measure_early_exit_point(point)
        for point in EARLY_EXIT_GRID
        if point["smoke"] or not smoke
    ]

    return {
        "benchmark": "exhaustive_explorer",
        "smoke": smoke,
        "instance": {
            "protocol": "protocol-a",
            "n": THROUGHPUT_N,
            "inputs": list(THROUGHPUT_INPUTS),
            "k": THROUGHPUT_K,
            "t": THROUGHPUT_T,
        },
        "throughput": throughput,
        "por_reduction": por_points,
        "por_states_baseline": {
            point["point"]: point["por_states"] for point in por_points
        },
        "symmetry_reduction": sym_points,
        "symmetry_states_baseline": {
            point["point"]: point["sym_states"] for point in sym_points
        },
        "shared_frontier": shared_points,
        "early_exit": early_points,
        "early_exit_states_baseline": {
            point["point"]: point["early_exit_states"]
            for point in early_points
        },
        "event_allocation": _measure_event_allocation(
            ALLOC_COUNT_SMOKE if smoke else ALLOC_COUNT_FULL
        ),
    }


def check_baseline(artifact_path: pathlib.Path) -> List[str]:
    """POR regression guard: re-run the pinned grid, compare states.

    Returns human-readable failures (empty = guard passed).  A point
    may explore *fewer* states than recorded (an improvement); more is
    a regression in the reduction.
    """
    recorded = json.loads(artifact_path.read_text())["por_states_baseline"]
    failures = []
    for point in POR_GRID:
        name = point["name"]
        if name not in recorded:
            failures.append(f"{name}: missing from {artifact_path.name}")
            continue
        measured = _measure_por_point(point)
        if measured["por_states"] > recorded[name]:
            failures.append(
                f"{name}: POR now expands {measured['por_states']} states "
                f"(baseline {recorded[name]})"
            )
    recorded_sym = json.loads(artifact_path.read_text()).get(
        "symmetry_states_baseline", {}
    )
    for point in SYM_GRID:
        if not point["guard"]:
            continue  # the expensive n=4 points are artifact-only
        name = point["name"]
        if name not in recorded_sym:
            failures.append(f"{name}: missing from {artifact_path.name}")
            continue
        measured = _measure_sym_point(point)
        if measured["sym_states"] > recorded_sym[name]:
            failures.append(
                f"{name}: symmetry now expands {measured['sym_states']} "
                f"states (baseline {recorded_sym[name]})"
            )
    recorded_early = json.loads(artifact_path.read_text()).get(
        "early_exit_states_baseline", {}
    )
    for point in EARLY_EXIT_GRID:
        if not point["guard"]:
            continue
        name = point["name"]
        if name not in recorded_early:
            failures.append(f"{name}: missing from {artifact_path.name}")
            continue
        early, _ = _timed_explore(point, stop_on_violation=True)
        if early.states > recorded_early[name]:
            failures.append(
                f"{name}: early exit now takes {early.states} states to "
                f"the first violation (baseline {recorded_early[name]})"
            )
    return failures


def test_exhaustive_throughput_smoke(benchmark):
    """Benchmark-suite entry: smoke-sized, no artifact written."""
    payload = benchmark.pedantic(
        run_suite, kwargs={"smoke": True}, rounds=1, iterations=1
    )
    throughput = payload["throughput"]
    assert throughput["speedup_snapshot_por_vs_deepcopy"] > 1.0
    assert payload["por_reduction"], "no POR points measured"
    assert payload["symmetry_reduction"], "no symmetry points measured"
    for point in payload["symmetry_reduction"]:
        assert point["sym_states"] < point["por_states"], point
    assert payload["shared_frontier"], "no shared-frontier points measured"
    assert payload["early_exit"], "no early-exit points measured"
    for point in payload["early_exit"]:
        assert point["early_exit_states"] < point["full_states"], point
    print(json.dumps(throughput, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small budget for CI (still writes the artifact)")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="output JSON path")
    parser.add_argument("--check-baseline", action="store_true",
                        help="POR regression guard against the committed "
                             "artifact; writes nothing")
    args = parser.parse_args(argv)

    if args.check_baseline:
        failures = check_baseline(pathlib.Path(args.out))
        for failure in failures:
            print(f"POR REGRESSION: {failure}")
        if not failures:
            print("POR baseline guard passed")
        return 1 if failures else 0

    payload = run_suite(smoke=args.smoke)
    out = pathlib.Path(args.out)
    atomic_write_json(out, payload)
    throughput = payload["throughput"]
    print(
        f"n={THROUGHPUT_N} cap={throughput['cap']}: "
        f"deepcopy {throughput['deepcopy_full_dfs']['states_per_sec']}/s, "
        f"snapshot full-DFS "
        f"{throughput['snapshot_full_dfs']['states_per_sec']}/s, "
        f"snapshot+POR {throughput['snapshot_por']['states_per_sec']}/s "
        f"(x{throughput['speedup_snapshot_por_vs_deepcopy']} vs deepcopy)"
    )
    for point in payload["por_reduction"]:
        print(
            f"POR {point['point']}: {point['full_states']} -> "
            f"{point['por_states']} states, {point['full_runs']} -> "
            f"{point['por_runs']} runs"
        )
    for point in payload["symmetry_reduction"]:
        capped = "" if point["por_exhausted"] else " (POR capped)"
        print(
            f"SYM {point['point']}: {point['por_states']} -> "
            f"{point['sym_states']} states, group {point['group_size']}, "
            f"{point['orbit_hits']} orbit hits{capped}"
        )
    for point in payload["shared_frontier"]:
        print(
            f"SHARED {point['point']}: useful/s serial "
            f"{point['serial_useful_states_per_sec']}, private "
            f"{point['private_useful_states_per_sec']}, shared "
            f"{point['shared_useful_states_per_sec']} "
            f"(x{point['shared_speedup_vs_private']} vs private, "
            f"{point['stolen_subtrees']} stolen subtrees)"
        )
    for point in payload["early_exit"]:
        print(
            f"EARLY-EXIT {point['point']}: {point['full_states']} -> "
            f"{point['early_exit_states']} states, "
            f"x{point['early_exit_speedup']} wall time "
            f"(shared x{point['shared_early_exit_speedup']})"
        )
    alloc = payload["event_allocation"]
    print(
        f"events: slots {alloc['slots_bytes']}B vs dict "
        f"{alloc['dict_bytes']}B per Delivery, alloc "
        f"x{alloc['alloc_speedup']} faster"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
