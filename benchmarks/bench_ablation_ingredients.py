"""Ablation: removing one ingredient from each protocol.

For each design choice DESIGN.md calls out, run the ablated variant and
the original under the same adversary and report the contrast:

* PROTOCOL B's ``n − 2t`` quorum margin  -> removing it breaks SV2;
* PROTOCOL C's ℓ-echo layer              -> removing it breaks agreement;
* payload validation                     -> removing it is a crash vector;
* PROTOCOL F's re-scan loop              -> removal produced NO violation
  under our adversaries (honest-negative observation: the loop backs the
  proof's accounting, not an observed failure mode).
"""

import dataclasses

import pytest

from figure_common import OUT_DIR
from repro.harness.attack import search_worst_run
from repro.protocols.ablations import protocol_f_single_scan
from repro.protocols.base import get_spec

from repro.protocols.ablations import (
    ProtocolBStrictQuorum,
    ProtocolCPlainBroadcast,
    divergent_crash_run as divergent_crash_setup,
    plain_broadcast_attack_run as _plain_broadcast_attack,
)
from repro.protocols.protocol_b import ProtocolB
from repro.protocols.protocol_c import ProtocolC


def test_ablation_quorum_margin(benchmark):
    def contrast():
        ablated = divergent_crash_setup(ProtocolBStrictQuorum)
        original = divergent_crash_setup(ProtocolB)
        return ablated, original

    ablated, original = benchmark.pedantic(contrast, rounds=1, iterations=1)
    assert not ablated.verdicts["validity"]
    assert original.ok
    print(f"\n  strict quorum : {ablated.summary()}")
    print(f"  PROTOCOL B    : {original.summary()}")


def test_ablation_echo_layer(benchmark):
    def contrast():
        ablated = _plain_broadcast_attack(ProtocolCPlainBroadcast)
        original = _plain_broadcast_attack(lambda: ProtocolC(1))
        return ablated, original

    ablated, original = benchmark.pedantic(contrast, rounds=1, iterations=1)
    assert not ablated.verdicts["agreement"]
    assert original.verdicts["agreement"]
    print(f"\n  plain broadcast: {ablated.summary()}")
    print(f"  PROTOCOL C(1)  : {original.summary()}")


def test_ablation_single_scan_observation(benchmark):
    base = get_spec("protocol-f@sm-cr")
    variant = dataclasses.replace(
        base,
        name="protocol-f-single-scan-probe",
        make=lambda n, k, t: protocol_f_single_scan,
    )

    def probe():
        return (
            search_worst_run(variant, 6, 4, 2, attempts=80, seed=3),
            search_worst_run(base, 6, 4, 2, attempts=80, seed=3),
        )

    ablated, original = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert original.violations_found == 0
    line = (
        f"single-scan F: {ablated.summary()} | original F: "
        f"{original.summary()}"
    )
    print("\n  " + line)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ablation_ingredients.txt").write_text(line + "\n")
