"""Fig. 4 -- MP/Byz: the six region panels at n = 64, plus validation.

Paper shape being reproduced (n = 64):

* SV1 and RV1: impossible everywhere (Lemmas 3.5 carried, 3.10);
* SV2/RV2: PROTOCOL C(l)'s region below roughly n/2 shrinking with the
  l trade-off; impossibility from kn/(2k+1) resp. kn/(2(k+1))
  (Lemmas 3.15, 3.6 carried, 3.11);
* WV1: PROTOCOL D's k >= Z(n, t) region against the t >= k
  impossibility, with a substantial open gap (Lemmas 3.16, 3.4 carried);
* WV2: PROTOCOL A's two-branch region (Lemmas 3.12/3.13) against
  Lemma 3.9 / Lemma 3.3-carried impossibility.
"""

from figure_common import (
    assert_frontier_monotone,
    frontier_series,
    print_figure_summary,
    run_empirical_validation,
    write_figure_artifacts,
)
from repro.core.lemmas import z_function
from repro.core.regions import region_map
from repro.core.solvability import Solvability
from repro.core.validity import RV1, RV2, SV1, SV2, WV1, WV2
from repro.models import Model

MODEL = Model.MP_BYZ
N = 64


def test_fig4_analytic_regions(benchmark):
    path = benchmark.pedantic(
        write_figure_artifacts, args=(MODEL, N), rounds=1, iterations=1
    )
    assert path.exists()
    assert_frontier_monotone(MODEL, N)
    print_figure_summary(MODEL, N)

    # SV1 and RV1: nothing solvable.
    for validity in (SV1, RV1):
        region = region_map(MODEL, validity, N)
        assert region.count(Solvability.POSSIBLE) == 0

    # WV1: solvable iff k >= Z(n, t) on the possibility side; the
    # impossibility side is exactly t >= k; open in between.
    series = frontier_series(MODEL, WV1, N)
    for k in (22, 32, 63):
        max_t = max(
            (t for t in range(1, N + 1) if z_function(N, t) <= k),
            default=0,
        )
        assert series[k]["max_possible_t"] == max_t
        assert series[k]["min_impossible_t"] == k
    # substantial gap: e.g. k = 40 has many open points
    assert series[40]["open_count"] > 5

    # WV2 crossover at t = n/2: above it the requirement is k >= t + 1.
    region = region_map(MODEL, WV2, N)
    assert region.status(33, 32) is Solvability.POSSIBLE   # k = t+1 at n/2
    assert region.status(32, 32) is Solvability.IMPOSSIBLE  # k = t fails
    assert region.status(40, 39) is Solvability.POSSIBLE

    # RV2's impossibility is strictly stricter than SV2's possibility gap:
    # Lemma 3.11's kn/(2(k+1)) lies below Lemma 3.6's kn/(2k+1).
    rv2 = frontier_series(MODEL, RV2, N)
    sv2 = frontier_series(MODEL, SV2, N)
    for k in (2, 4, 8):
        assert rv2[k]["min_impossible_t"] <= sv2[k]["min_impossible_t"]
        # both retain PROTOCOL C's possibility frontier
        assert rv2[k]["max_possible_t"] == sv2[k]["max_possible_t"]


def test_fig4_empirical_validation(benchmark):
    validation = benchmark.pedantic(
        run_empirical_validation, args=(MODEL,), rounds=1, iterations=1
    )
    print(f"\nFig. 4 possible-side sweeps ({len(validation.sweeps)} points):")
    for stats in validation.sweeps:
        print(f"  {stats.summary()}")
    print("Fig. 4 impossible-side constructions:")
    for result in validation.constructions:
        print(f"  {result.summary()}")
