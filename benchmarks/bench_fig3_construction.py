"""Fig. 3 -- the partition run from the proof of Lemma 3.3, executed.

The paper's Fig. 3 diagrams the run used to prove that SC(k, t, WV2) is
unsolvable in MP/CR for t >= ((k-1)n + 1)/k: k groups, intra-group
traffic only, forcing k + 1 decisions.  Here that run actually executes
against PROTOCOL A and must produce exactly k + 1 distinct correct
decisions.
"""

import pytest

from repro.adversary.constructions import lemma_3_3_partition_run


@pytest.mark.parametrize("n,k", [(9, 2), (16, 3), (25, 4)])
def test_fig3_partition_run(benchmark, n, k):
    result = benchmark.pedantic(
        lemma_3_3_partition_run, args=(n, k), rounds=1, iterations=1
    )
    assert result.demonstrates_violation
    assert "agreement" in result.violated
    distinct = result.report.outcome.correct_decision_values()
    assert len(distinct) == k + 1
    print(f"\n{result.summary()}")


def test_fig3_run_is_failure_free(benchmark):
    """The Lemma 3.3 run needs no failures at all -- only asynchrony."""
    result = benchmark.pedantic(
        lemma_3_3_partition_run, rounds=1, iterations=1
    )
    assert result.report.outcome.failure_free
    assert "agreement" in result.violated
