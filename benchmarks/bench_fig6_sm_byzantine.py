"""Fig. 6 -- SM/Byz: the six region panels at n = 64, plus validation.

Paper shape being reproduced (n = 64):

* WV2: solvable everywhere -- PROTOCOL E survives Byzantine writers
  (Lemma 4.10);
* SV2/RV2: PROTOCOL F's k > t + 1 region plus the simulated
  PROTOCOL C(l) band; impossible for t >= n/2, t >= k (Lemmas 4.12,
  4.11, 4.3 carried / 4.9);
* WV1: SIMULATION of PROTOCOL D, k >= Z(n, t) (Lemma 4.13) against the
  k <= t impossibility (Lemma 4.1), substantial gap;
* RV1 and SV1: impossible everywhere (Lemmas 4.8, 4.2).
"""

from figure_common import (
    assert_frontier_monotone,
    frontier_series,
    print_figure_summary,
    run_empirical_validation,
    write_figure_artifacts,
)
from repro.core.lemmas import z_function
from repro.core.regions import region_map
from repro.core.solvability import Solvability
from repro.core.validity import RV1, RV2, SV1, SV2, WV1, WV2
from repro.models import Model

MODEL = Model.SM_BYZ
N = 64


def test_fig6_analytic_regions(benchmark):
    path = benchmark.pedantic(
        write_figure_artifacts, args=(MODEL, N), rounds=1, iterations=1
    )
    assert path.exists()
    assert_frontier_monotone(MODEL, N)
    print_figure_summary(MODEL, N)

    # WV2 solvable everywhere, even t = n with Byzantine writers.
    region = region_map(MODEL, WV2, N)
    assert region.count(Solvability.POSSIBLE) == len(region.grid)

    # RV1 / SV1 barren.
    for validity in (RV1, SV1):
        region = region_map(MODEL, validity, N)
        assert region.count(Solvability.POSSIBLE) == 0

    # SV2 / RV2: k > t + 1 via PROTOCOL F; impossibility at t >= n/2, t >= k.
    for validity in (SV2, RV2):
        region = region_map(MODEL, validity, N)
        assert region.status(34, 32) is Solvability.POSSIBLE
        assert region.status(30, 32) is Solvability.IMPOSSIBLE
        # small gap on the k <= t + 1 side below n/2
        assert region.status(2, 20) is Solvability.OPEN

    # WV1: Z(n, t) frontier, same as the message-passing Byzantine model
    # (SIMULATION carries PROTOCOL D across).
    series = frontier_series(MODEL, WV1, N)
    mp_series = frontier_series(Model.MP_BYZ, WV1, N)
    for k in (22, 40, 63):
        assert series[k] == mp_series[k]
    for t in (5, 15, 21):
        region = region_map(MODEL, WV1, N, k_values=[z_function(N, t)], t_values=[t])
        assert region.status(z_function(N, t), t) is Solvability.POSSIBLE


def test_fig6_empirical_validation(benchmark):
    validation = benchmark.pedantic(
        run_empirical_validation, args=(MODEL,), rounds=1, iterations=1
    )
    print(f"\nFig. 6 possible-side sweeps ({len(validation.sweeps)} points):")
    for stats in validation.sweeps:
        print(f"  {stats.summary()}")
    print("Fig. 6 impossible-side constructions:")
    for result in validation.constructions:
        print(f"  {result.summary()}")
