"""Deterministic kernel vs. asyncio backend.

The reproduction band for this paper notes "asyncio works but slower";
this bench quantifies it: the same protocol objects and inputs run on
the deterministic discrete-event kernel and on the asyncio task runtime,
both checked against the same SC instance.  The deterministic kernel is
the reference (reproducible, adversary-controlled); the asyncio backend
exists to demonstrate the protocols on genuine concurrency.
"""

from repro.core.problem import SCProblem
from repro.core.validity import RV1
from repro.harness.runner import run_mp
from repro.net.schedulers import FifoScheduler
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.runtime.asyncio_runtime import run_async

N, K, T = 8, 3, 2
INPUTS = [f"v{i}" for i in range(N)]


def test_deterministic_kernel(benchmark):
    def runner():
        return run_mp(
            [ChaudhuriKSet() for _ in range(N)],
            INPUTS, K, T, RV1,
            scheduler=FifoScheduler(),
        )

    report = benchmark(runner)
    assert report.ok


def test_asyncio_backend(benchmark):
    problem = SCProblem(n=N, k=K, t=T, validity=RV1)

    def runner():
        return run_async(
            [ChaudhuriKSet() for _ in range(N)],
            INPUTS, t=T, seed=1, timeout=30,
        )

    result = benchmark.pedantic(runner, rounds=3, iterations=1)
    assert problem.satisfied_by(result.outcome)


def test_asyncio_zero_jitter(benchmark):
    """Upper-bound throughput of the asyncio backend (no sleep calls)."""
    from repro.runtime.asyncio_runtime import AsyncMPRuntime
    import asyncio

    problem = SCProblem(n=N, k=K, t=T, validity=RV1)

    def runner():
        runtime = AsyncMPRuntime(
            [ChaudhuriKSet() for _ in range(N)],
            INPUTS, t=T, seed=1, max_jitter=0.0, timeout=30,
        )
        return asyncio.run(runtime.run_async())

    result = benchmark.pedantic(runner, rounds=3, iterations=1)
    assert problem.satisfied_by(result.outcome)
