"""Protocol performance microbenchmarks.

The paper reports no wall-clock numbers (its substrate is the abstract
asynchronous model), but a reproduction should characterize the cost of
each protocol on the simulator: wall time per run and messages /
register operations per decision, as n grows.  These benches also guard
against complexity regressions (e.g. the echo protocols are Theta(n^2)
messages per broadcast and must stay that way).
"""

import pytest

from repro.core.lemmas import z_function
from repro.core.validity import RV1, RV2, SV2, WV1, by_code
from repro.harness.runner import run_mp, run_sm
from repro.net.schedulers import FifoScheduler
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_a import ProtocolA
from repro.protocols.protocol_b import ProtocolB
from repro.protocols.protocol_c import ProtocolC, best_ell
from repro.protocols.protocol_d import ProtocolD
from repro.protocols.protocol_e import protocol_e
from repro.protocols.protocol_f import protocol_f
from repro.shm.schedulers import RoundRobinScheduler

N = 16
T = 3


def _mp_run(factory, k, t, validity):
    def runner():
        return run_mp(
            [factory() for _ in range(N)],
            [f"v{i}" for i in range(N)],
            k, t, validity,
            scheduler=FifoScheduler(),
        )

    return runner


class TestMessagePassingProtocols:
    def test_chaudhuri_flood_min(self, benchmark):
        report = benchmark(_mp_run(ChaudhuriKSet, T + 1, T, RV1))
        assert report.ok
        # one broadcast per process: exactly n^2 point-to-point sends
        assert report.result.message_count == N * N

    def test_protocol_a(self, benchmark):
        report = benchmark(_mp_run(ProtocolA, 2, T, RV2))
        assert report.ok
        assert report.result.message_count == N * N

    def test_protocol_b(self, benchmark):
        report = benchmark(_mp_run(ProtocolB, 4, T, SV2))
        assert report.ok
        assert report.result.message_count == N * N

    def test_protocol_c_echo_cost(self, benchmark):
        k = 6
        ell = best_ell(N, k, T)
        assert ell is not None
        report = benchmark(
            _mp_run(lambda: ProtocolC(ell), k, T, SV2)
        )
        assert report.ok
        # init broadcast (n^2) + one echo broadcast per (process, sender)
        # pair: Theta(n^3) total sends; check the order of growth bound.
        assert N * N < report.result.message_count <= N * N * (N + 1)

    def test_protocol_d(self, benchmark):
        k = z_function(N, T)
        report = benchmark(_mp_run(ProtocolD, k, T, WV1))
        assert report.ok
        # t+1 value broadcasts + at most (t+1) echo broadcasts per process
        assert report.result.message_count <= (T + 1) * N + N * (T + 1) * N


class TestSharedMemoryProtocols:
    def test_protocol_e(self, benchmark):
        def runner():
            return run_sm(
                [protocol_e] * N,
                [f"v{i}" for i in range(N)],
                2, N, RV2,
                scheduler=RoundRobinScheduler(),
            )

        report = benchmark(runner)
        assert report.ok
        # wait-free: exactly one write + n reads + 1 decide per process
        assert report.result.ticks <= N * (N + 2)

    def test_protocol_f(self, benchmark):
        def runner():
            return run_sm(
                [protocol_f] * N,
                [f"v{i}" for i in range(N)],
                T + 2, T, SV2,
                scheduler=RoundRobinScheduler(),
            )

        report = benchmark(runner)
        assert report.ok


class TestSimulationOverhead:
    """SIMULATION's register-polling cost vs. the native message kernel."""

    def test_simulated_chaudhuri(self, benchmark):
        from repro.protocols.simulation import simulate_mp_over_sm

        n, k, t = 8, 3, 2

        def runner():
            return run_sm(
                [simulate_mp_over_sm(ChaudhuriKSet)] * n,
                [f"v{i}" for i in range(n)],
                k, t, RV1,
                scheduler=RoundRobinScheduler(),
            )

        report = benchmark(runner)
        assert report.ok

    def test_native_chaudhuri_same_size(self, benchmark):
        n, k, t = 8, 3, 2

        def runner():
            return run_mp(
                [ChaudhuriKSet() for _ in range(n)],
                [f"v{i}" for i in range(n)],
                k, t, RV1,
                scheduler=FifoScheduler(),
            )

        report = benchmark(runner)
        assert report.ok
