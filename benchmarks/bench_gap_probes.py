"""Probing the paper's OPEN gaps with adversarial search.

Several panels leave gaps between the possibility and impossibility
frontiers (the paper's Section 5 lists them as open problems).  A
randomized adversarial search at points inside those gaps cannot settle
anything, but it produces *evidence*: how many distinct decisions each
concrete protocol can be driven to there, and whether the protocol's own
guarantee survives just past its proven frontier.

Assertions are deliberately one-sided: the points probed must really be
OPEN per the classifier, the searches must complete, and protocols run
*inside* their regions during the same probe must stay clean.
"""

from figure_common import OUT_DIR
from repro.core.solvability import Solvability, classify
from repro.core.validity import by_code
from repro.harness.attack import search_worst_run
from repro.models import Model
from repro.protocols.base import get_spec

#: (spec name, model, validity, n, k, t) -- each (k, t) lies in an OPEN
#: region of the corresponding panel at that n.
GAP_POINTS = [
    # MP/CR SV2 gap between (k-1)n/2k and kn/(2k+1): n=16, k=2 -> open t in {4..5}
    ("protocol-b@mp-cr", Model.MP_CR, "SV2", 16, 2, 5),
    # MP/Byz WV1 gap between t >= k and k >= Z(n,t): n=12, t=5: Z=9; k=7
    ("protocol-d@mp-byz", Model.MP_BYZ, "WV1", 12, 7, 5),
    # SM/CR SV2 gap (k <= t+1, below n/2): n=12, k=2, t=4
    ("protocol-f@sm-cr", Model.SM_CR, "SV2", 12, 2, 4),
]


def test_gap_points_are_open(benchmark):
    def check():
        statuses = []
        for (_, model, validity, n, k, t) in GAP_POINTS:
            statuses.append(classify(model, by_code(validity), n, k, t).status)
        return statuses

    statuses = benchmark(check)
    assert all(s is Solvability.OPEN for s in statuses), statuses


def test_gap_probe_search(benchmark):
    def probe():
        results = []
        for (spec_name, _, _, n, k, t) in GAP_POINTS:
            spec = get_spec(spec_name)
            results.append(
                search_worst_run(spec, n, k, t, attempts=60, seed=11)
            )
        return results

    results = benchmark.pedantic(probe, rounds=1, iterations=1)
    OUT_DIR.mkdir(exist_ok=True)
    lines = ["Adversarial probes at OPEN points (evidence, not proof):"]
    for result in results:
        lines.append("  " + result.summary())
        print("\n" + result.summary())
    (OUT_DIR / "gap_probes.txt").write_text("\n".join(lines) + "\n")
    # the searches completed over the full budget
    assert all(r.attempts == 60 for r in results)


def test_protocols_clean_just_inside_frontier(benchmark):
    """One step inside each proven region, the search must find nothing."""
    inside = [
        ("protocol-b@mp-cr", 16, 2, 3),    # region t < 4
        ("protocol-f@sm-cr", 12, 6, 4),    # region k > t+1
        ("protocol-a@mp-cr", 16, 2, 7),    # region t < 8
    ]

    def probe():
        results = []
        for (spec_name, n, k, t) in inside:
            spec = get_spec(spec_name)
            assert spec.solvable(n, k, t), (spec_name, n, k, t)
            results.append(
                search_worst_run(spec, n, k, t, attempts=50, seed=5)
            )
        return results

    results = benchmark.pedantic(probe, rounds=1, iterations=1)
    for result in results:
        assert result.violations_found == 0, result.summary()
