"""Message / register-operation complexity across n, per protocol.

Regenerates the cost table of ``repro.analysis.complexity`` and checks
the asymptotic orders: the one-broadcast protocols (flood-min, A, B) are
Theta(n^2) messages, the echo-based protocols (C(l), D) pick up an extra
factor of n from the per-sender echo broadcasts, and the shared-memory
protocols stay at Theta(n) register operations per process.
"""

from figure_common import OUT_DIR
from repro.analysis.complexity import growth_exponent, standard_suite

NS = (6, 9, 12, 16, 20)


def test_complexity_suite(benchmark):
    suite = benchmark.pedantic(standard_suite, args=(NS,), rounds=1, iterations=1)

    OUT_DIR.mkdir(exist_ok=True)
    lines = []
    for key in sorted(suite):
        series = suite[key]
        lines.append(series.table())
        print("\n" + series.table())
    (OUT_DIR / "complexity.txt").write_text("\n\n".join(lines) + "\n")

    exponents = {key: growth_exponent(series) for key, series in suite.items()}

    # one-broadcast message-passing protocols: Theta(n^2) exactly
    for key in ("chaudhuri", "protocol-a", "protocol-b"):
        assert 1.9 <= exponents[key] <= 2.1, (key, exponents[key])
        series = suite[key]
        for point in series.points:
            assert point.cost == point.n * point.n

    # echo-based protocols: strictly superquadratic, at most cubic-ish
    for key in ("protocol-c", "protocol-d"):
        assert 2.3 <= exponents[key] <= 3.2, (key, exponents[key])

    # shared-memory protocols: linear ops per process (quadratic total)
    for key in ("protocol-e", "protocol-f"):
        assert 1.7 <= exponents[key] <= 2.2, (key, exponents[key])
        series = suite[key]
        for point in series.points:
            # E under contention-free round robin: n+1 ops per process
            assert point.cost <= point.n * (point.n + 4)

    # echo cost dominates flood cost at every measured n
    for c_point, a_point in zip(suite["protocol-c"].points, suite["protocol-a"].points):
        assert c_point.cost > a_point.cost
