"""Ablation: the l parameter of PROTOCOL C(l) and the Z(n, t) landscape.

DESIGN.md calls out two tunables worth ablating:

* **l in PROTOCOL C(l)** -- larger l strengthens the echo filter
  (t < ln/(2l+1) grows toward n/2) but weakens the agreement bound
  (t < (k-1)n/(2k+l-1) shrinks).  The bench regenerates, for n = 64 and
  a range of k, the best achievable t per l and checks the interior
  optimum the paper's Lemma 3.15 trade-off implies.
* **Z(n, t) of PROTOCOL D** -- the agreement bound's growth as t crosses
  n/3 and n/2.
"""

from fractions import Fraction

import pytest

from repro.core.lemmas import v_function, z_function
from repro.protocols.protocol_c import best_ell, lemma_3_15_region

N = 64


def max_solvable_t(n: int, k: int, ell: int) -> int:
    """Largest t solvable by PROTOCOL C(l) at fixed l (0 if none)."""
    best = 0
    for t in range(1, n):
        if lemma_3_15_region(n, k, t, ell):
            best = t
    return best


def test_ablation_ell_tradeoff(benchmark):
    def sweep():
        return {
            k: [max_solvable_t(N, k, ell) for ell in range(1, 13)]
            for k in (2, 4, 8, 16, 32)
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nPROTOCOL C(l): max solvable t by l (n = 64)")
    print("k \\ l: " + " ".join(f"{ell:3d}" for ell in range(1, 13)))
    for k, row in table.items():
        print(f"k={k:3d}: " + " ".join(f"{t:3d}" for t in row))

    for k, row in table.items():
        peak = max(row)
        # the optimum l is interior for large k (l ~ sqrt(k)), so the
        # curve must rise then fall rather than be monotone
        if k >= 8:
            assert row.index(peak) > 0, (k, row)
            assert row[-1] < peak, (k, row)
        # and best_ell must achieve the peak
        best = best_ell(N, k, peak)
        assert best is not None
        assert max_solvable_t(N, k, best) == peak


def test_ablation_ell_never_beats_analytic_bound(benchmark):
    def check():
        violations = []
        for k in range(2, N):
            for ell in range(1, 10):
                t = max_solvable_t(N, k, ell)
                if t and not (
                    Fraction(t) < Fraction((k - 1) * N, 2 * k + ell - 1)
                    and Fraction(t) < Fraction(ell * N, 2 * ell + 1)
                ):
                    violations.append((k, ell, t))
        return violations

    violations = benchmark.pedantic(check, rounds=1, iterations=1)
    assert not violations


def test_ablation_z_landscape(benchmark):
    def landscape():
        return [z_function(N, t) for t in range(1, N + 1)]

    zs = benchmark(landscape)
    print("\nZ(64, t) for t = 1..64:")
    print(" ".join(str(z) for z in zs))

    # below n/3: exactly t + 1
    for t in range(1, N // 3):
        assert zs[t - 1] == t + 1
    # monotone non-decreasing overall
    assert all(b >= a for a, b in zip(zs, zs[1:]))
    # once t >= n - 1 the bound saturates near n
    assert zs[-1] <= N
    # the V function's two branches agree at the boundary region
    for t in (20, 30, 40):
        for f in range(t + 1):
            assert v_function(N, t, f) >= 1
