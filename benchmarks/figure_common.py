"""Shared helpers for the figure benchmarks.

Each figure benchmark regenerates one of the paper's figures (2, 4, 5, 6):

* the *analytic* side -- the six (k, t) region panels at the paper's
  n = 64, written to ``benchmarks/out/`` as text maps and frontier CSVs;
* the *possible* side -- Monte-Carlo sweeps of every registered protocol
  for that model at sampled points inside its solvable region (smaller n
  for runtime), which must be violation-free;
* the *impossible* side -- the executed proof constructions for that
  model, which must each demonstrate a violation.

``pytest benchmarks/ --benchmark-only`` runs everything; the analytic
artifacts land in ``benchmarks/out/`` for inspection.
"""

from __future__ import annotations

import os
import pathlib
from typing import Tuple

from repro.analysis.figures import FIGURE_BY_MODEL, panel_csv, render_figure
from repro.analysis.report import constructions_for_model, validate_figure
from repro.core.regions import frontier, region_map
from repro.core.solvability import Solvability
from repro.core.validity import ALL_VALIDITY_CONDITIONS
from repro.models import Model

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Empirical sweep parameters (kept small so the full bench suite stays
#: in the tens of seconds).
EMPIRICAL_N = 9
POINTS_PER_SPEC = 2
RUNS_PER_POINT = 12

#: Worker processes for the empirical sweeps (1 = serial, 0 = all
#: cores).  Results are bit-identical for any value, so CI can crank
#: this without changing what is asserted.
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

#: Sweep engine for the empirical sweeps.  ``auto`` uses the vectorized
#: batch kernels where a spec supports them and falls back to the scalar
#: engine (recording why); ``scalar`` forces the reference engine.  The
#: engine actually chosen per point lands in the ``*_engines.json``
#: artifact next to the figure outputs.
ENGINE = os.environ.get("REPRO_ENGINE", "auto")


def write_figure_artifacts(model: Model, n: int = 64) -> pathlib.Path:
    """Render the full figure and per-panel CSVs into ``benchmarks/out``."""
    OUT_DIR.mkdir(exist_ok=True)
    number = FIGURE_BY_MODEL[model]
    slug = model.shorthand.replace("/", "-").lower()
    figure_path = OUT_DIR / f"fig{number}_{slug}.txt"
    figure_path.write_text(render_figure(model, n=n))
    for validity in ALL_VALIDITY_CONDITIONS:
        region = region_map(model, validity, n)
        csv_path = OUT_DIR / f"fig{number}_{slug}_{validity.code.lower()}.csv"
        csv_path.write_text(panel_csv(region))
    return figure_path


def frontier_series(model: Model, validity, n: int = 64):
    return frontier(region_map(model, validity, n))


def assert_frontier_monotone(model: Model, n: int = 64) -> None:
    """Weakening the problem (larger k) never shrinks the solvable range."""
    for validity in ALL_VALIDITY_CONDITIONS:
        series = frontier_series(model, validity, n)
        last = None
        for k in sorted(series):
            current = series[k]["max_possible_t"] or 0
            if last is not None:
                assert current >= last, (model, validity.code, k)
            last = current


def run_empirical_validation(model: Model, seed: int = 0):
    """Both empirical sides of a figure; asserts the expected outcome."""
    validation = validate_figure(
        model,
        n_empirical=EMPIRICAL_N,
        points_per_spec=POINTS_PER_SPEC,
        runs_per_point=RUNS_PER_POINT,
        seed=seed,
        jobs=JOBS,
        engine=ENGINE,
    )
    write_engine_artifact(model, validation)
    assert validation.possible_side_clean, [
        s.summary() for s in validation.sweeps if not s.clean
    ]
    assert validation.impossible_side_demonstrated, [
        c.summary() for c in validation.constructions
    ]
    return validation


def write_engine_artifact(model: Model, validation) -> pathlib.Path:
    """Record which sweep engine each empirical point actually used."""
    from repro.io import atomic_write_json

    OUT_DIR.mkdir(exist_ok=True)
    number = FIGURE_BY_MODEL[model]
    slug = model.shorthand.replace("/", "-").lower()
    path = OUT_DIR / f"fig{number}_{slug}_engines.json"
    atomic_write_json(path, {
        "format": "repro-figure-engines/1",
        "model": model.shorthand,
        "requested_engine": ENGINE,
        "points": [
            {
                "spec": s.spec_name,
                "n": s.n,
                "k": s.k,
                "t": s.t,
                "runs": s.runs,
                "engine": s.engine,
                "execution": s.execution,
                "fallback_reason": s.fallback_reason,
            }
            for s in validation.sweeps
        ],
    })
    return path


def print_figure_summary(model: Model, n: int = 64) -> None:
    number = FIGURE_BY_MODEL[model]
    print(f"\nFig. {number} ({model}, n={n}) region sizes:")
    for validity in ALL_VALIDITY_CONDITIONS:
        region = region_map(model, validity, n)
        print(
            f"  {validity.code}: possible={region.count(Solvability.POSSIBLE):5d}"
            f" impossible={region.count(Solvability.IMPOSSIBLE):5d}"
            f" open={region.count(Solvability.OPEN):4d}"
        )
