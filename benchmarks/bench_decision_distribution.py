"""Distribution of distinct decision counts across randomized runs.

The paper's agreement condition bounds the *maximum* number of distinct
decisions; this bench measures the whole distribution each protocol
actually exhibits under randomized schedules and failures -- where the
mass sits, and that the support never exceeds the bound.  For flood-min
the support is further bounded by ``t + 1`` (the protocol's own
accounting), tighter than the problem's ``k`` when ``t + 1 < k``.
"""

from figure_common import OUT_DIR
from repro.harness.sweep import SweepConfig, sweep_spec
from repro.protocols.base import get_spec

CASES = [
    # (spec, n, k, t, support bound)
    ("chaudhuri@mp-cr", 9, 5, 3, 4),        # flood-min: <= t + 1
    ("protocol-a@mp-cr", 9, 3, 5, 2),       # A: one value or default
    ("protocol-b@mp-cr", 9, 4, 3, 4),       # B: <= k
    ("protocol-d@mp-byz", 8, 3, 2, 3),      # D: <= Z(n, t) = t + 1
    ("protocol-e@sm-cr", 8, 2, 8, 2),       # E: <= 2
    ("protocol-f@sm-cr", 8, 5, 3, 5),       # F: <= t + 2
]


def test_decision_distributions(benchmark):
    def measure():
        histograms = {}
        for (name, n, k, t, _bound) in CASES:
            spec = get_spec(name)
            stats = sweep_spec(
                spec, n, k, t, SweepConfig(runs=60, seed=13)
            )
            assert stats.clean, stats.violations[:2]
            histograms[name] = (stats, dict(sorted(
                stats.decisions_histogram.items()
            )))
        return histograms

    histograms = benchmark.pedantic(measure, rounds=1, iterations=1)

    OUT_DIR.mkdir(exist_ok=True)
    lines = ["Distinct-decision distribution over 60 randomized runs:"]
    print()
    for (name, n, k, t, bound) in CASES:
        stats, histogram = histograms[name]
        line = (
            f"  {name:22s} n={n} k={k} t={t}: {histogram} "
            f"(support bound {bound})"
        )
        lines.append(line)
        print(line)
        assert stats.max_distinct_decisions <= bound, line
        # unanimity runs exist in the mix, so 1 is always in the support
        assert 1 in histogram
    (OUT_DIR / "decision_distribution.txt").write_text("\n".join(lines) + "\n")
