"""Fig. 1 -- the validity-condition lattice.

Regenerates the "weaker than" relation of Fig. 1 and validates it
empirically: the seven declared implications must hold on thousands of
random outcomes, and every non-implication must be separated by a
witness outcome.
"""

from repro.analysis.lattice import render_lattice, verify_lattice
from repro.core.validity import ALL_VALIDITY_CONDITIONS, implication_pairs


def test_fig1_lattice_verification(benchmark):
    check = benchmark(verify_lattice, 2000, 0)
    assert check.ok
    assert not check.implication_violations
    assert not check.missing_witnesses
    print("\n" + render_lattice())


def test_fig1_closure_shape(benchmark):
    pairs = benchmark(implication_pairs)
    # 7 direct edges close to 12 strict implications among 6 conditions
    assert len(pairs) == 12
    codes = {c.code for c in ALL_VALIDITY_CONDITIONS}
    for stronger, weaker in pairs:
        assert stronger in codes and weaker in codes
    # SV1 implies everything; WV2 implies nothing (strictly)
    assert sum(1 for s, _ in pairs if s == "SV1") == 5
    assert not any(s == "WV2" for s, _ in pairs)
