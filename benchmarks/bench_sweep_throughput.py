"""Sweep throughput benchmark: serial vs parallel vs batch, FULL vs COUNTERS.

Measures Monte-Carlo sweep throughput (runs/second) along the three
axes the harness optimizes:

* **trace mode** -- ``FULL`` (every ``TraceRecord`` allocated, the
  replay/forensics default) against ``COUNTERS`` (integer counters
  only, the sweep fast path);
* **execution** -- serial against ``--jobs``-parallel worker processes;
* **engine** -- the scalar discrete-event kernel against the
  vectorized ``repro.batch`` engine (``--engine batch``), at the
  sweep's own batch size and again at a 32x bulk batch where the
  vectorization has room to amortize.

For every measured point the benchmark also *verifies* that the
verdicts and decision histograms are identical across all four scalar
configurations -- throughput must never change results -- and
cross-checks every batch-supported spec with
``repro.verify.diff_batch_scalar``: the vectorized engine's decisions,
crash sets, and verdicts must match run-by-run scalar replays of the
identical plan.

Run as a script to (re)generate ``BENCH_sweep_throughput.json`` at the
repository root::

    python benchmarks/bench_sweep_throughput.py            # full grid
    python benchmarks/bench_sweep_throughput.py --smoke    # quick CI run

Under ``pytest benchmarks/ --benchmark-only`` a smoke-sized measurement
runs without touching the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional

from repro.harness.parallel import available_jobs, derive_seed
from repro.io import atomic_write_json
from repro.harness.sweep import SweepConfig, sweep_spec
from repro.protocols.base import get_spec
from repro.runtime.traces import TraceMode

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sweep_throughput.json"

#: A cheap, always-solvable MP crash-model protocol: the sweep cost is
#: dominated by kernel events, which is exactly what we want to measure.
SPEC_NAME = "protocol-a@mp-cr"
BASE_SEED = 20260805

FULL_N_VALUES = (8, 16, 24)
FULL_RUNS = 48
SMOKE_N_VALUES = (8,)
SMOKE_RUNS = 12

#: Bulk multiplier for the large-batch measurement: one vectorized
#: evaluation over ``runs * BULK_FACTOR`` runs.
BULK_FACTOR = 32

#: Per-spec differential sample size (batch vs scalar replays).
DIFFERENTIAL_RUNS = 12


def _point_for(n: int) -> Dict[str, int]:
    """A (k, t) point inside the spec's solvable region at ``n``."""
    spec = get_spec(SPEC_NAME)
    k = max(2, n // 2)
    for t in range(n, 0, -1):
        if spec.solvable(n, k, t):
            return {"n": n, "k": k, "t": t}
    raise RuntimeError(f"no solvable t for {SPEC_NAME} at n={n}, k={k}")


def _measure(
    n: int, k: int, t: int, runs: int, jobs: int, trace_mode: TraceMode
) -> Dict:
    spec = get_spec(SPEC_NAME)
    config = SweepConfig(
        runs=runs,
        seed=derive_seed(BASE_SEED, SPEC_NAME, n, k, t),
        trace_mode=trace_mode,
    )
    started = time.perf_counter()
    stats = sweep_spec(spec, n, k, t, config, jobs=jobs)
    elapsed = time.perf_counter() - started
    return {
        "jobs": jobs,
        "trace_mode": str(trace_mode),
        "seconds": round(elapsed, 4),
        "runs_per_sec": round(runs / elapsed, 2) if elapsed > 0 else None,
        "violations": len(stats.violations),
        "decisions_histogram": {
            str(key): value
            for key, value in sorted(stats.decisions_histogram.items())
        },
    }


def _measure_batch(n: int, k: int, t: int, runs: int) -> Dict:
    """One vectorized sweep through the ``repro.batch`` engine."""
    spec = get_spec(SPEC_NAME)
    config = SweepConfig(
        runs=runs,
        seed=derive_seed(BASE_SEED, SPEC_NAME, n, k, t),
        trace_mode=TraceMode.COUNTERS,
    )
    started = time.perf_counter()
    stats = sweep_spec(spec, n, k, t, config, engine="batch")
    elapsed = time.perf_counter() - started
    assert stats.engine == "batch", (
        f"batch engine fell back to scalar at n={n}: {stats.execution}"
    )
    return {
        "runs": runs,
        "engine": stats.engine,
        "seconds": round(elapsed, 4),
        "runs_per_sec": round(runs / elapsed, 2) if elapsed > 0 else None,
        "violations": len(stats.violations),
        "decisions_histogram": {
            str(key): value
            for key, value in sorted(stats.decisions_histogram.items())
        },
    }


def _differential_suite(runs: int) -> List[Dict]:
    """Batch-vs-scalar cross-check over every batch-supported spec.

    Replays each vectorized plan run-by-run through the scalar kernel
    and asserts identical histograms, violation counts, and zero
    per-run mismatches (decisions, crash sets, verdicts).
    """
    from repro.batch import BATCH_FAMILIES, supports_point
    from repro.verify.differential import diff_batch_scalar

    checks: List[Dict] = []
    for spec_name in sorted(BATCH_FAMILIES):
        spec = get_spec(spec_name)
        point = None
        # The last two points cover the trivial specs (solvable only at
        # k = n).
        for n, k, t in (
            (6, 3, 2), (6, 2, 1), (5, 2, 1), (4, 2, 0), (6, 6, 2), (4, 4, 3)
        ):
            if spec.solvable(n, k, t) and supports_point(spec, n, k, t):
                point = (n, k, t)
                break
        if point is None:
            continue
        n, k, t = point
        config = SweepConfig(
            runs=runs, seed=derive_seed(BASE_SEED, "diff", spec_name)
        )
        diff = diff_batch_scalar(spec, n, k, t, config)
        assert diff.ok, (
            f"batch/scalar differential failed for {spec_name} at "
            f"n={n} k={k} t={t}: {diff.summary()}"
        )
        checks.append(
            {
                "spec": spec_name,
                "n": n,
                "k": k,
                "t": t,
                "runs": runs,
                "mismatched_runs": diff.mismatched_runs,
                "ok": diff.ok,
            }
        )
    return checks


def run_suite(smoke: bool = False, jobs: Optional[int] = None) -> Dict:
    """Measure the full grid; returns the JSON-ready payload.

    Asserts that every configuration of one point produced identical
    verdicts and decision histograms (the determinism contract).
    """
    n_values = SMOKE_N_VALUES if smoke else FULL_N_VALUES
    runs = SMOKE_RUNS if smoke else FULL_RUNS
    parallel_jobs = jobs if jobs else available_jobs()

    # Warm up the batch engine (numpy import, kernel compilation of
    # nothing -- just module load) so the measured series reflects
    # steady-state throughput, not one-off import cost.
    _measure_batch(**_point_for(4), runs=4)

    points: List[Dict] = []
    for n in n_values:
        point = _point_for(n)
        k, t = point["k"], point["t"]
        configs = {
            "serial_full": (1, TraceMode.FULL),
            "serial_counters": (1, TraceMode.COUNTERS),
            "parallel_full": (parallel_jobs, TraceMode.FULL),
            "parallel_counters": (parallel_jobs, TraceMode.COUNTERS),
        }
        measured = {
            label: _measure(n, k, t, runs, j, mode)
            for label, (j, mode) in configs.items()
        }
        measured["batch"] = _measure_batch(n, k, t, runs)
        measured["batch_bulk"] = _measure_batch(n, k, t, runs * BULK_FACTOR)
        # The four scalar configurations share one run stream and must
        # be bit-identical.  The batch engine draws its plan from its
        # own seeded streams (different sampling path, same
        # distribution), so its correctness is checked run-by-run
        # against scalar *replays of that plan* in the differential
        # section below, not against the scalar sweep's histogram.
        histograms = {
            label: m["decisions_histogram"]
            for label, m in measured.items()
            if not label.startswith("batch")
        }
        reference = histograms["serial_full"]
        for label, histogram in histograms.items():
            assert histogram == reference, (
                f"determinism broken at n={n}: {label} histogram "
                f"{histogram} != serial_full {reference}"
            )
        serial = measured["serial_counters"]["runs_per_sec"]
        parallel = measured["parallel_counters"]["runs_per_sec"]
        full = measured["serial_full"]["runs_per_sec"]
        batch = measured["batch"]["runs_per_sec"]
        batch_bulk = measured["batch_bulk"]["runs_per_sec"]
        points.append(
            {
                **point,
                "runs": runs,
                **measured,
                "speedup_parallel_vs_serial": (
                    round(parallel / serial, 3) if serial and parallel else None
                ),
                "speedup_counters_vs_full": (
                    round(serial / full, 3) if serial and full else None
                ),
                "speedup_batch_vs_serial": (
                    round(batch / serial, 3) if serial and batch else None
                ),
                "speedup_batch_bulk_vs_serial": (
                    round(batch_bulk / serial, 3)
                    if serial and batch_bulk else None
                ),
            }
        )
    return {
        "benchmark": "sweep_throughput",
        "spec": SPEC_NAME,
        "base_seed": BASE_SEED,
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "parallel_jobs": parallel_jobs,
        "bulk_factor": BULK_FACTOR,
        "points": points,
        "differential": _differential_suite(DIFFERENTIAL_RUNS),
    }


def test_sweep_throughput_smoke(benchmark):
    """Benchmark-suite entry: smoke-sized, no artifact written."""
    payload = benchmark.pedantic(
        run_suite, kwargs={"smoke": True}, rounds=1, iterations=1
    )
    assert payload["points"], "no points measured"
    print(json.dumps(payload["points"][0], indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small grid for CI (still writes the artifact)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel worker count (0 = all cores)")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="output JSON path")
    args = parser.parse_args(argv)

    payload = run_suite(smoke=args.smoke, jobs=args.jobs or None)
    out = pathlib.Path(args.out)
    atomic_write_json(out, payload)
    for point in payload["points"]:
        print(
            f"n={point['n']} k={point['k']} t={point['t']} "
            f"({point['runs']} runs): "
            f"serial FULL {point['serial_full']['runs_per_sec']}/s, "
            f"serial COUNTERS {point['serial_counters']['runs_per_sec']}/s, "
            f"parallel COUNTERS {point['parallel_counters']['runs_per_sec']}/s "
            f"(x{point['speedup_parallel_vs_serial']} vs serial, "
            f"counters x{point['speedup_counters_vs_full']} vs full), "
            f"batch {point['batch']['runs_per_sec']}/s "
            f"(x{point['speedup_batch_vs_serial']}), "
            f"batch x{BULK_FACTOR} bulk "
            f"{point['batch_bulk']['runs_per_sec']}/s "
            f"(x{point['speedup_batch_bulk_vs_serial']})"
        )
    checked = [c["spec"] for c in payload["differential"]]
    print(f"differential batch-vs-scalar OK for {len(checked)} specs: "
          + ", ".join(checked))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
